//! Critical-path profiling over flight-recorder events.
//!
//! For each iteration (dataset version) the profiler reconstructs the
//! transfer DAG rooted at consumer gets, picks the *critical get* — the
//! one finishing last — and attributes its wall time to four categories:
//!
//! * **schedule** — schedule computation plus DHT lookups;
//! * **shm** / **rdma** — time covered by pull transfer intervals,
//!   split by link class via an interval sweep (where shm and RDMA
//!   transfers overlap, the instant is charged to RDMA, since the
//!   slower network branch is the one on the critical path);
//! * **wait** — everything else inside the get window: queueing delay
//!   before pieces were staged, plus assembly gaps.
//!
//! Because wait is the residual, the four categories sum to the
//! measured end-to-end get time by construction — the property the
//! acceptance gate checks on both executors. On top of the per-
//! iteration breakdown the profiler reports exact p50/p95/p99
//! percentiles of queueing delay and transfer size per link class, and
//! tallies chaos-injected fault events.

use std::collections::BTreeMap;

use insitu_fabric::ClientId;
use insitu_telemetry::Json;

use crate::event::{Event, EventKind, LinkClass};

/// Per-category time attribution for one critical path.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CategoryBreakdown {
    /// Schedule computation + DHT lookup time (µs).
    pub schedule_us: f64,
    /// Time covered by shared-memory transfers (µs).
    pub shm_us: f64,
    /// Time covered by RDMA (inter-node) transfers (µs).
    pub rdma_us: f64,
    /// Residual: queueing delay and assembly gaps (µs).
    pub wait_us: f64,
}

impl CategoryBreakdown {
    /// Sum of all categories.
    pub fn total_us(&self) -> f64 {
        self.schedule_us + self.shm_us + self.rdma_us + self.wait_us
    }
}

/// Critical path of one iteration.
#[derive(Clone, Debug)]
pub struct IterationProfile {
    /// Dataset version (iteration index).
    pub version: u64,
    /// Wall time of the critical (latest-finishing) get, µs.
    pub end_to_end_us: f64,
    /// Category attribution; sums to `end_to_end_us` up to clamping.
    pub breakdown: CategoryBreakdown,
    /// Consumer app owning the critical get.
    pub app: u32,
    /// Consumer client owning the critical get.
    pub dst: Option<ClientId>,
    /// Pulls on the critical get.
    pub pulls: usize,
}

impl IterationProfile {
    /// `breakdown.total / end_to_end` — 1.0 means perfect attribution.
    pub fn coverage(&self) -> f64 {
        if self.end_to_end_us <= 0.0 {
            1.0
        } else {
            self.breakdown.total_us() / self.end_to_end_us
        }
    }
}

/// Queueing-delay and transfer-size percentiles for one link class.
#[derive(Clone, Debug, Default)]
pub struct LinkClassStats {
    /// Number of pulls over this class.
    pub pulls: u64,
    /// Total bytes moved.
    pub bytes_total: u64,
    /// Queueing-delay percentiles (µs).
    pub wait_p50_us: u64,
    /// 95th percentile queueing delay (µs).
    pub wait_p95_us: u64,
    /// 99th percentile queueing delay (µs).
    pub wait_p99_us: u64,
    /// Transfer-size percentiles (bytes).
    pub bytes_p50: u64,
    /// 95th percentile transfer size (bytes).
    pub bytes_p95: u64,
    /// 99th percentile transfer size (bytes).
    pub bytes_p99: u64,
}

/// Full profiler output.
#[derive(Clone, Debug, Default)]
pub struct ProfileReport {
    /// One critical path per iteration, in version order.
    pub iterations: Vec<IterationProfile>,
    /// Per-link-class pull statistics (over *all* pulls, not only the
    /// critical path).
    pub links: BTreeMap<LinkClass, LinkClassStats>,
    /// Chaos fault events tallied by kind slug.
    pub faults: BTreeMap<String, u64>,
    /// Events analyzed.
    pub events: usize,
    /// Events the recorder discarded (log full).
    pub dropped: u64,
}

/// Exact percentile of a sorted sample vector (nearest-rank).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// A transfer interval on the critical get's timeline.
struct TransferInterval {
    start_us: u64,
    end_us: u64,
    link: LinkClass,
}

/// Sweep the transfer intervals and attribute covered time per class;
/// instants covered by both classes are charged to RDMA (the network
/// branch dominates the critical path when both overlap).
fn attribute_transfers(intervals: &[TransferInterval]) -> (f64, f64) {
    let mut bounds: Vec<u64> = intervals
        .iter()
        .flat_map(|iv| [iv.start_us, iv.end_us])
        .collect();
    bounds.sort_unstable();
    bounds.dedup();
    let (mut shm, mut rdma) = (0u64, 0u64);
    for pair in bounds.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let covers = |class: LinkClass| {
            intervals
                .iter()
                .any(|iv| iv.link == class && iv.start_us <= a && iv.end_us >= b)
        };
        if covers(LinkClass::Rdma) {
            rdma += b - a;
        } else if covers(LinkClass::Shm) {
            shm += b - a;
        }
    }
    (shm as f64, rdma as f64)
}

impl ProfileReport {
    /// Reconstruct per-iteration critical paths from a snapshot of
    /// flight events (any order; sorted internally by `seq`).
    pub fn analyze(events: &[Event], dropped: u64) -> ProfileReport {
        // Children indexed by causal parent.
        let mut children: BTreeMap<u64, Vec<&Event>> = BTreeMap::new();
        for e in events {
            if let Some(p) = e.parent {
                children.entry(p).or_default().push(e);
            }
        }

        // Critical get per version: latest end, ties broken by seq so
        // the choice is deterministic.
        let mut critical: BTreeMap<u64, &Event> = BTreeMap::new();
        for e in events {
            if matches!(e.kind, EventKind::Get { .. }) {
                critical
                    .entry(e.version)
                    .and_modify(|cur| {
                        if (e.end_us(), e.seq) > (cur.end_us(), cur.seq) {
                            *cur = e;
                        }
                    })
                    .or_insert(e);
            }
        }

        let mut iterations = Vec::new();
        for (&version, get) in &critical {
            let empty = Vec::new();
            let kids = children.get(&get.seq).unwrap_or(&empty);
            let mut schedule = 0.0;
            let mut intervals = Vec::new();
            let mut pull_count = 0usize;
            for k in kids {
                match k.kind {
                    EventKind::Schedule { .. } | EventKind::DhtLookup { .. } => {
                        schedule += k.duration_us as f64;
                    }
                    EventKind::Pull { wait_us } => {
                        pull_count += 1;
                        let wait = wait_us.min(k.duration_us);
                        intervals.push(TransferInterval {
                            start_us: k.start_us + wait,
                            end_us: k.end_us(),
                            link: k.link.unwrap_or(LinkClass::Shm),
                        });
                    }
                    _ => {}
                }
            }
            let (shm, rdma) = attribute_transfers(&intervals);
            let end_to_end = get.duration_us as f64;
            let wait = (end_to_end - schedule - shm - rdma).max(0.0);
            iterations.push(IterationProfile {
                version,
                end_to_end_us: end_to_end,
                breakdown: CategoryBreakdown {
                    schedule_us: schedule,
                    shm_us: shm,
                    rdma_us: rdma,
                    wait_us: wait,
                },
                app: get.app,
                dst: get.dst,
                pulls: pull_count,
            });
        }

        // Link-class percentiles over every pull.
        let mut waits: BTreeMap<LinkClass, Vec<u64>> = BTreeMap::new();
        let mut sizes: BTreeMap<LinkClass, Vec<u64>> = BTreeMap::new();
        let mut faults: BTreeMap<String, u64> = BTreeMap::new();
        for e in events {
            match e.kind {
                EventKind::Pull { wait_us } => {
                    let class = e.link.unwrap_or(LinkClass::Shm);
                    waits.entry(class).or_default().push(wait_us);
                    sizes.entry(class).or_default().push(e.bytes);
                }
                EventKind::Fault { kind } => {
                    *faults.entry(kind.to_string()).or_insert(0) += 1;
                }
                _ => {}
            }
        }
        let mut links = BTreeMap::new();
        for class in LinkClass::ALL {
            let Some(ws) = waits.get_mut(&class) else {
                continue;
            };
            let ss = sizes.get_mut(&class).unwrap();
            ws.sort_unstable();
            ss.sort_unstable();
            links.insert(
                class,
                LinkClassStats {
                    pulls: ws.len() as u64,
                    bytes_total: ss.iter().sum(),
                    wait_p50_us: percentile(ws, 0.50),
                    wait_p95_us: percentile(ws, 0.95),
                    wait_p99_us: percentile(ws, 0.99),
                    bytes_p50: percentile(ss, 0.50),
                    bytes_p95: percentile(ss, 0.95),
                    bytes_p99: percentile(ss, 0.99),
                },
            );
        }

        ProfileReport {
            iterations,
            links,
            faults,
            events: events.len(),
            dropped,
        }
    }

    /// Category totals across all iterations.
    pub fn totals(&self) -> CategoryBreakdown {
        let mut t = CategoryBreakdown::default();
        for it in &self.iterations {
            t.schedule_us += it.breakdown.schedule_us;
            t.shm_us += it.breakdown.shm_us;
            t.rdma_us += it.breakdown.rdma_us;
            t.wait_us += it.breakdown.wait_us;
        }
        t
    }

    /// Sum of per-iteration end-to-end times.
    pub fn end_to_end_total_us(&self) -> f64 {
        self.iterations.iter().map(|i| i.end_to_end_us).sum()
    }

    /// Plain-text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "flight recorder: {} events ({} dropped)\n\n",
            self.events, self.dropped
        ));
        out.push_str("critical path per iteration (all times in us)\n");
        out.push_str(&format!(
            "{:>8} {:>12} {:>10} {:>10} {:>10} {:>10} {:>6} {:>5} {:>5} {:>6}\n",
            "version",
            "end_to_end",
            "schedule",
            "shm",
            "rdma",
            "wait",
            "cover",
            "app",
            "dst",
            "pulls"
        ));
        for it in &self.iterations {
            out.push_str(&format!(
                "{:>8} {:>12.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0} {:>5.0}% {:>5} {:>5} {:>6}\n",
                it.version,
                it.end_to_end_us,
                it.breakdown.schedule_us,
                it.breakdown.shm_us,
                it.breakdown.rdma_us,
                it.breakdown.wait_us,
                it.coverage() * 100.0,
                it.app,
                it.dst.map_or("-".to_string(), |d| d.to_string()),
                it.pulls,
            ));
        }
        let t = self.totals();
        out.push_str(&format!(
            "{:>8} {:>12.0} {:>10.0} {:>10.0} {:>10.0} {:>10.0}\n\n",
            "total",
            self.end_to_end_total_us(),
            t.schedule_us,
            t.shm_us,
            t.rdma_us,
            t.wait_us,
        ));
        out.push_str("per link class (pulls; queueing delay us / transfer bytes)\n");
        out.push_str(&format!(
            "{:>6} {:>8} {:>12} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10}\n",
            "link",
            "pulls",
            "bytes",
            "wait_p50",
            "wait_p95",
            "wait_p99",
            "sz_p50",
            "sz_p95",
            "sz_p99"
        ));
        for (class, s) in &self.links {
            out.push_str(&format!(
                "{:>6} {:>8} {:>12} {:>9} {:>9} {:>9} {:>10} {:>10} {:>10}\n",
                class.slug(),
                s.pulls,
                s.bytes_total,
                s.wait_p50_us,
                s.wait_p95_us,
                s.wait_p99_us,
                s.bytes_p50,
                s.bytes_p95,
                s.bytes_p99,
            ));
        }
        if !self.faults.is_empty() {
            out.push_str("\ninjected faults observed\n");
            for (kind, n) in &self.faults {
                out.push_str(&format!("{kind:>16} {n:>8}\n"));
            }
        }
        out
    }

    /// JSON rendering of the full report.
    pub fn to_json(&self) -> Json {
        let iterations: Vec<Json> = self
            .iterations
            .iter()
            .map(|it| {
                Json::obj()
                    .field("version", it.version)
                    .field("end_to_end_us", it.end_to_end_us)
                    .field("schedule_us", it.breakdown.schedule_us)
                    .field("shm_us", it.breakdown.shm_us)
                    .field("rdma_us", it.breakdown.rdma_us)
                    .field("wait_us", it.breakdown.wait_us)
                    .field("coverage", it.coverage())
                    .field("app", it.app)
                    .field("dst", it.dst.map_or(Json::Null, |d| Json::U64(d as u64)))
                    .field("pulls", it.pulls)
            })
            .collect();
        let mut links = Json::obj();
        for (class, s) in &self.links {
            links = links.field(
                class.slug(),
                Json::obj()
                    .field("pulls", s.pulls)
                    .field("bytes_total", s.bytes_total)
                    .field("wait_p50_us", s.wait_p50_us)
                    .field("wait_p95_us", s.wait_p95_us)
                    .field("wait_p99_us", s.wait_p99_us)
                    .field("bytes_p50", s.bytes_p50)
                    .field("bytes_p95", s.bytes_p95)
                    .field("bytes_p99", s.bytes_p99),
            );
        }
        let mut faults = Json::obj();
        for (kind, n) in &self.faults {
            faults = faults.field(kind, *n);
        }
        let t = self.totals();
        Json::obj()
            .field("events", self.events)
            .field("dropped", self.dropped)
            .field("iterations", iterations)
            .field(
                "totals",
                Json::obj()
                    .field("end_to_end_us", self.end_to_end_total_us())
                    .field("schedule_us", t.schedule_us)
                    .field("shm_us", t.shm_us)
                    .field("rdma_us", t.rdma_us)
                    .field("wait_us", t.wait_us),
            )
            .field("links", links)
            .field("faults", faults)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    /// One iteration: get with schedule + two pulls (shm then rdma) and
    /// gaps that must land in wait.
    fn synthetic_iteration(version: u64, base: u64, seq0: u64) -> Vec<Event> {
        let g = seq0;
        vec![
            Event::new(g, EventKind::Get { cont: true })
                .app(2)
                .var(1)
                .version(version)
                .dst(4)
                .window(base, 1000),
            Event::new(seq0 + 1, EventKind::Schedule { hit: false })
                .parent(g)
                .version(version)
                .window(base, 100),
            // Pull 1: 50us wait then 250us shm copy.
            Event::new(seq0 + 2, EventKind::Pull { wait_us: 50 })
                .parent(g)
                .var(1)
                .version(version)
                .src(0)
                .dst(4)
                .link(LinkClass::Shm)
                .bytes(4096)
                .window(base + 100, 300),
            // Pull 2: no wait, 400us rdma, overlapping nothing.
            Event::new(seq0 + 3, EventKind::Pull { wait_us: 0 })
                .parent(g)
                .var(1)
                .version(version)
                .src(1)
                .dst(4)
                .link(LinkClass::Rdma)
                .bytes(8192)
                .window(base + 400, 400),
        ]
    }

    #[test]
    fn categories_sum_to_end_to_end() {
        let mut events = synthetic_iteration(0, 0, 1);
        events.extend(synthetic_iteration(1, 2000, 10));
        let report = ProfileReport::analyze(&events, 0);
        assert_eq!(report.iterations.len(), 2);
        for it in &report.iterations {
            assert!((it.breakdown.total_us() - it.end_to_end_us).abs() < 1e-9);
            assert_eq!(it.breakdown.schedule_us, 100.0);
            assert_eq!(it.breakdown.shm_us, 250.0);
            assert_eq!(it.breakdown.rdma_us, 400.0);
            assert_eq!(it.breakdown.wait_us, 250.0); // 50 queue + 200 gaps
            assert_eq!(it.pulls, 2);
            assert_eq!(it.app, 2);
        }
    }

    #[test]
    fn overlapping_transfers_charge_rdma() {
        let g = 1;
        let events = vec![
            Event::new(g, EventKind::Get { cont: true })
                .version(0)
                .dst(0)
                .window(0, 100),
            Event::new(2, EventKind::Pull { wait_us: 0 })
                .parent(g)
                .src(1)
                .dst(0)
                .link(LinkClass::Shm)
                .window(0, 100),
            Event::new(3, EventKind::Pull { wait_us: 0 })
                .parent(g)
                .src(2)
                .dst(0)
                .link(LinkClass::Rdma)
                .window(50, 50),
        ];
        let report = ProfileReport::analyze(&events, 0);
        let b = report.iterations[0].breakdown;
        assert_eq!(b.shm_us, 50.0);
        assert_eq!(b.rdma_us, 50.0);
        assert_eq!(b.wait_us, 0.0);
    }

    #[test]
    fn critical_get_is_latest_finishing() {
        let events = vec![
            Event::new(1, EventKind::Get { cont: false })
                .app(2)
                .version(0)
                .dst(3)
                .window(0, 100),
            Event::new(2, EventKind::Get { cont: false })
                .app(2)
                .version(0)
                .dst(4)
                .window(50, 300),
        ];
        let report = ProfileReport::analyze(&events, 0);
        assert_eq!(report.iterations.len(), 1);
        assert_eq!(report.iterations[0].dst, Some(4));
        assert_eq!(report.iterations[0].end_to_end_us, 300.0);
    }

    #[test]
    fn link_percentiles_are_exact() {
        let g = 1;
        let mut events = vec![Event::new(g, EventKind::Get { cont: true })
            .version(0)
            .dst(0)
            .window(0, 10_000)];
        for (i, wait) in (1u64..=100).enumerate() {
            events.push(
                Event::new(2 + i as u64, EventKind::Pull { wait_us: wait })
                    .parent(g)
                    .src(1)
                    .dst(0)
                    .link(LinkClass::Rdma)
                    .bytes(wait * 10)
                    .window(i as u64 * 10, 5),
            );
        }
        let report = ProfileReport::analyze(&events, 0);
        let s = &report.links[&LinkClass::Rdma];
        assert_eq!(s.pulls, 100);
        assert_eq!(s.wait_p50_us, 50);
        assert_eq!(s.wait_p95_us, 95);
        assert_eq!(s.wait_p99_us, 99);
        assert_eq!(s.bytes_p50, 500);
        assert_eq!(s.bytes_p99, 990);
    }

    #[test]
    fn faults_are_tallied_and_rendered() {
        let events = vec![
            Event::new(1, EventKind::Fault { kind: "drop-pull" }).window(0, 0),
            Event::new(2, EventKind::Fault { kind: "drop-pull" }).window(1, 0),
            Event::new(3, EventKind::Fault { kind: "stage-full" }).window(2, 0),
        ];
        let report = ProfileReport::analyze(&events, 5);
        assert_eq!(report.faults["drop-pull"], 2);
        assert_eq!(report.faults["stage-full"], 1);
        assert_eq!(report.dropped, 5);
        let text = report.render();
        assert!(text.contains("drop-pull"));
        assert!(text.contains("5 dropped"));
        let json = report.to_json().render();
        assert!(json.contains("\"drop-pull\":2"));
    }
}
