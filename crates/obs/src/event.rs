//! The flight-recorder event schema.
//!
//! Every event carries the full coupling tag `(app, var, version, bbox,
//! src, dst, link_class)` plus a window on the run's timeline and an
//! optional causal parent (the `seq` of the enclosing event). Producer
//! puts are joined to consumer pulls by the *piece key*
//! `(var, version, owner, piece)` — the same key the staging registry
//! and DHT use — so causal chains survive even when the two ends were
//! recorded by different threads.

use insitu_domain::BoundingBox;
use insitu_fabric::{ClientId, Locality};

/// Which side of the fabric a transfer used, in the sense of the paper's
/// breakdown: intra-node shared memory vs inter-node RDMA.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkClass {
    /// Intra-node transfer via shared memory.
    Shm,
    /// Inter-node transfer across the torus (modeled as RDMA).
    Rdma,
}

impl LinkClass {
    /// Both classes, in stable order.
    pub const ALL: [LinkClass; 2] = [LinkClass::Shm, LinkClass::Rdma];

    /// Stable lowercase name for reports and metric keys.
    pub fn slug(self) -> &'static str {
        match self {
            LinkClass::Shm => "shm",
            LinkClass::Rdma => "rdma",
        }
    }

    /// Map the ledger's [`Locality`] onto a link class.
    pub fn from_locality(loc: Locality) -> LinkClass {
        match loc {
            Locality::SharedMemory => LinkClass::Shm,
            Locality::Network => LinkClass::Rdma,
        }
    }
}

/// What an [`Event`] records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A producer staged one piece (`put_cont` / `put_seq`).
    Put {
        /// True for `put_seq` (piece also indexed in the DHT).
        indexed: bool,
    },
    /// A consumer-side retrieve (`get_cont` / `get_seq`); the causal
    /// root of schedule, DHT and pull children.
    Get {
        /// True for `get_cont` (schedule derived from the decomposition
        /// instead of a DHT query).
        cont: bool,
    },
    /// Schedule computation for a get.
    Schedule {
        /// True when served from the schedule cache.
        hit: bool,
    },
    /// A DHT lookup performed for a `get_seq` schedule miss.
    DhtLookup {
        /// Number of DHT cores queried.
        cores: u32,
    },
    /// One pull of a staged piece into the consumer's buffer. The
    /// window covers wait + copy; `wait_us` is the queueing delay until
    /// the piece was available, the remainder is the copy/transfer.
    Pull {
        /// Queueing delay in microseconds.
        wait_us: u64,
    },
    /// A chaos-injected fault observed at an instrumented site (slug
    /// from the chaos fault plan, e.g. `"drop-pull"`).
    Fault {
        /// Fault-kind slug.
        kind: &'static str,
    },
    /// A `PullData` payload left this process on the wire. The window
    /// covers serialization + enqueue on the sender; `src` is the owner
    /// client, `dst` the requesting client. Matched against the
    /// receiving process's [`EventKind::NetRecv`] by
    /// `(src, dst, var, version, piece)` when traces are merged.
    NetSend,
    /// A `PullData` payload arrived from the wire. After cross-process
    /// merge its `parent` points at the matching [`EventKind::NetSend`]
    /// on the sending process — the stitched edge that lets causal
    /// chains span process boundaries.
    NetRecv,
    /// A standing-query push fragment left the producer's put path
    /// toward a subscriber (`src` = producing client, `dst` =
    /// subscribing client, `piece` = subscription id). Parented to the
    /// originating [`EventKind::Put`], so put→push→deliver chains
    /// render as one causal tree.
    SubPush,
    /// A subscriber's sink completed assembly of one pushed version
    /// (`dst` = subscribing client, `piece` = subscription id).
    SubDeliver,
}

impl EventKind {
    /// Stable event name, used as the chrome slice name.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Put { indexed: false } => "obs.put_cont",
            EventKind::Put { indexed: true } => "obs.put_seq",
            EventKind::Get { cont: true } => "obs.get_cont",
            EventKind::Get { cont: false } => "obs.get_seq",
            EventKind::Schedule { hit: true } => "obs.schedule_hit",
            EventKind::Schedule { hit: false } => "obs.schedule_miss",
            EventKind::DhtLookup { .. } => "obs.dht_lookup",
            EventKind::Pull { .. } => "obs.pull",
            EventKind::Fault { .. } => "obs.fault",
            EventKind::NetSend => "obs.net_send",
            EventKind::NetRecv => "obs.net_recv",
            EventKind::SubPush => "obs.sub_push",
            EventKind::SubDeliver => "obs.sub_deliver",
        }
    }
}

/// One structured flight-recorder event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Monotone sequence number (unique per recorder; 1-based).
    pub seq: u64,
    /// Causal parent (`seq` of the enclosing event), if any.
    pub parent: Option<u64>,
    /// What happened.
    pub kind: EventKind,
    /// Application id.
    pub app: u32,
    /// Variable id the operation concerns.
    pub var: u64,
    /// Dataset version (iteration).
    pub version: u64,
    /// Geometric region, when the operation has one.
    pub bbox: Option<BoundingBox>,
    /// Source client (producer / owner of the pulled piece).
    pub src: Option<ClientId>,
    /// Destination client (consumer).
    pub dst: Option<ClientId>,
    /// Link classification, when the operation moved bytes.
    pub link: Option<LinkClass>,
    /// Piece id within `(var, version, owner)`.
    pub piece: u64,
    /// Originating process lane in a merged multi-process trace:
    /// `node + 1` for a joiner, `0` for a single-process run (assigned
    /// by the merge; recorders always emit `0`).
    pub pid: u32,
    /// Payload bytes moved (or staged).
    pub bytes: u64,
    /// Window start, microseconds from the recorder epoch.
    pub start_us: u64,
    /// Window length in microseconds.
    pub duration_us: u64,
}

impl Event {
    /// A new event with every tag empty.
    pub fn new(seq: u64, kind: EventKind) -> Event {
        Event {
            seq,
            parent: None,
            kind,
            app: 0,
            var: 0,
            version: 0,
            bbox: None,
            src: None,
            dst: None,
            link: None,
            piece: 0,
            pid: 0,
            bytes: 0,
            start_us: 0,
            duration_us: 0,
        }
    }

    /// Set the causal parent.
    pub fn parent(mut self, seq: u64) -> Event {
        self.parent = Some(seq);
        self
    }

    /// Set the application id.
    pub fn app(mut self, app: u32) -> Event {
        self.app = app;
        self
    }

    /// Set the variable id.
    pub fn var(mut self, var: u64) -> Event {
        self.var = var;
        self
    }

    /// Set the dataset version.
    pub fn version(mut self, version: u64) -> Event {
        self.version = version;
        self
    }

    /// Set the geometric region.
    pub fn bbox(mut self, bbox: BoundingBox) -> Event {
        self.bbox = Some(bbox);
        self
    }

    /// Set the source client.
    pub fn src(mut self, src: ClientId) -> Event {
        self.src = Some(src);
        self
    }

    /// Set the destination client.
    pub fn dst(mut self, dst: ClientId) -> Event {
        self.dst = Some(dst);
        self
    }

    /// Set the link class.
    pub fn link(mut self, link: LinkClass) -> Event {
        self.link = Some(link);
        self
    }

    /// Set the piece id.
    pub fn piece(mut self, piece: u64) -> Event {
        self.piece = piece;
        self
    }

    /// Set the process lane for merged traces.
    pub fn pid(mut self, pid: u32) -> Event {
        self.pid = pid;
        self
    }

    /// Set the payload size.
    pub fn bytes(mut self, bytes: u64) -> Event {
        self.bytes = bytes;
        self
    }

    /// Set the timeline window.
    pub fn window(mut self, start_us: u64, duration_us: u64) -> Event {
        self.start_us = start_us;
        self.duration_us = duration_us;
        self
    }

    /// End of the event's window.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.duration_us
    }

    /// The piece key joining producer puts to consumer pulls:
    /// `(var, version, owner, piece)`. `Some` only for puts (owner =
    /// `src`) and pulls (owner = `src`, the client the piece was pulled
    /// from).
    pub fn piece_key(&self) -> Option<(u64, u64, ClientId, u64)> {
        match self.kind {
            EventKind::Put { .. } | EventKind::Pull { .. } => self
                .src
                .map(|owner| (self.var, self.version, owner, self.piece)),
            _ => None,
        }
    }

    /// The chrome track this event renders on: the consumer for
    /// gets/pulls, the producer for puts, 0 otherwise.
    pub fn track(&self) -> u64 {
        match self.kind {
            EventKind::Put { .. } | EventKind::NetSend | EventKind::SubPush => {
                self.src.unwrap_or(0) as u64
            }
            _ => self.dst.or(self.src).unwrap_or(0) as u64,
        }
    }

    /// The cross-process stitch key for `PullData` wire hops:
    /// `(src, dst, var, version, piece)`. `Some` only for
    /// [`EventKind::NetSend`] / [`EventKind::NetRecv`] events with both
    /// endpoints tagged.
    pub fn wire_key(&self) -> Option<(ClientId, ClientId, u64, u64, u64)> {
        match self.kind {
            EventKind::NetSend | EventKind::NetRecv => match (self.src, self.dst) {
                (Some(src), Some(dst)) => Some((src, dst, self.var, self.version, self.piece)),
                _ => None,
            },
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_class_mapping() {
        assert_eq!(
            LinkClass::from_locality(Locality::SharedMemory),
            LinkClass::Shm
        );
        assert_eq!(LinkClass::from_locality(Locality::Network), LinkClass::Rdma);
        assert_eq!(LinkClass::Shm.slug(), "shm");
        assert_eq!(LinkClass::Rdma.slug(), "rdma");
    }

    #[test]
    fn piece_key_joins_put_and_pull() {
        let put = Event::new(1, EventKind::Put { indexed: false })
            .var(7)
            .version(3)
            .src(2)
            .piece(5);
        let pull = Event::new(9, EventKind::Pull { wait_us: 10 })
            .var(7)
            .version(3)
            .src(2)
            .dst(6)
            .piece(5);
        assert_eq!(put.piece_key(), pull.piece_key());
        assert_eq!(put.piece_key(), Some((7, 3, 2, 5)));
        let get = Event::new(2, EventKind::Get { cont: true }).var(7);
        assert_eq!(get.piece_key(), None);
    }

    #[test]
    fn tracks_follow_data_direction() {
        let put = Event::new(1, EventKind::Put { indexed: true }).src(3);
        assert_eq!(put.track(), 3);
        let pull = Event::new(2, EventKind::Pull { wait_us: 0 }).src(3).dst(8);
        assert_eq!(pull.track(), 8);
        let send = Event::new(3, EventKind::NetSend).src(3).dst(8);
        assert_eq!(send.track(), 3);
        let recv = Event::new(4, EventKind::NetRecv).src(3).dst(8);
        assert_eq!(recv.track(), 8);
    }

    #[test]
    fn wire_key_joins_send_and_recv() {
        let send = Event::new(1, EventKind::NetSend)
            .src(2)
            .dst(6)
            .var(7)
            .version(3)
            .piece(5);
        let recv = Event::new(9, EventKind::NetRecv)
            .src(2)
            .dst(6)
            .var(7)
            .version(3)
            .piece(5);
        assert_eq!(send.wire_key(), recv.wire_key());
        assert_eq!(send.wire_key(), Some((2, 6, 7, 3, 5)));
        // Non-wire events and untagged wire events have no stitch key.
        assert_eq!(
            Event::new(2, EventKind::Pull { wait_us: 0 })
                .src(2)
                .dst(6)
                .wire_key(),
            None
        );
        assert_eq!(Event::new(3, EventKind::NetSend).src(2).wire_key(), None);
    }
}
