//! Cross-process trace merge: stitch per-process flight recordings
//! into one causal trace.
//!
//! Every process in a distributed run records events against its own
//! recorder — its own `Instant` epoch and its own 1-based sequence
//! numbers. The merge turns a set of such [`ProcessTrace`]s into a
//! single trace three steps at a time:
//!
//! 1. **Renumber**: each process's sequence numbers (and the `parent`
//!    references into them) are shifted by a per-process base so they
//!    stay unique and causal links stay intact; each event is tagged
//!    with its process lane (`pid = node + 1`).
//! 2. **Align**: per-process clocks are reconciled with a
//!    happens-before relaxation over matched `NetSend`/`NetRecv`
//!    pairs. A receive cannot start before its send finished, so each
//!    matched pair contributes the constraint
//!    `offset[recv] >= offset[send] + send.end - recv.start`; offsets
//!    start at zero and are relaxed for `P` rounds (Bellman-Ford over
//!    at most `P`-hop constraint chains). Offsets only grow, so no
//!    event moves before its own process's epoch.
//! 3. **Stitch**: the k-th send and k-th recv sharing a wire key
//!    `(src, dst, var, version, piece)` (each ordered by start time)
//!    are joined by setting `recv.parent = send.seq` — the
//!    cross-process edge that lets put → schedule → pull → get chains
//!    span process boundaries. Unmatched halves are counted, never
//!    invented.
//!
//! The merged event list feeds the existing single-process consumers
//! unchanged: [`crate::ProfileReport::analyze`] for the merged
//! critical-path profile and [`crate::chrome_flow_events`] for the
//! merged chrome trace with per-process lanes.

use std::collections::BTreeMap;

use crate::event::{Event, EventKind};

/// One process's contribution to a merged trace.
#[derive(Clone, Debug)]
pub struct ProcessTrace {
    /// Node id of the process (joiner index).
    pub node: u32,
    /// The process's flight-recorder snapshot (local seqs and clock).
    pub events: Vec<Event>,
    /// Flight events the process dropped at its bounded log.
    pub dropped: u64,
    /// Telemetry trace spans the process dropped (`trace.dropped_spans`).
    pub dropped_spans: u64,
    /// The process's metrics counters at snapshot time.
    pub counters: BTreeMap<String, u64>,
    /// False when telemetry shipping was cut short (frames lost,
    /// timeout): the trace may be partial and the merge says so.
    pub complete: bool,
}

/// The stitched, clock-aligned union of several [`ProcessTrace`]s.
#[derive(Clone, Debug, Default)]
pub struct MergeReport {
    /// All events, renumbered, aligned and sorted by `(start_us, seq)`.
    pub events: Vec<Event>,
    /// Number of processes merged.
    pub processes: u32,
    /// Sum of per-process dropped flight events.
    pub dropped: u64,
    /// Sum of per-process dropped trace spans.
    pub dropped_spans: u64,
    /// Counters summed across processes by name.
    pub counters: BTreeMap<String, u64>,
    /// Nodes whose telemetry arrived incomplete (or not at all).
    pub incomplete: Vec<u32>,
    /// `NetSend` events on hops where *no* recv ever appeared (the
    /// other half of the wire hop is truly missing).
    pub unmatched_sends: u64,
    /// `NetRecv` events on hops where *no* send ever appeared.
    pub unmatched_recvs: u64,
    /// Surplus send/recv events on hops that did stitch: wire retries
    /// under load (a re-requested pull re-sends `PullData`; the late
    /// duplicate is discarded without a recv). Benign — the hop's
    /// causal edge exists — so these never warn.
    pub retried: u64,
    /// Cross-process edges created (recv.parent -> send.seq).
    pub stitched: u64,
    /// Per-process clock offsets applied, in input order (µs).
    pub offsets_us: Vec<u64>,
}

impl MergeReport {
    /// True when every wire hop found both halves and every process
    /// shipped a complete trace.
    pub fn fully_stitched(&self) -> bool {
        self.unmatched_sends == 0 && self.unmatched_recvs == 0 && self.incomplete.is_empty()
    }

    /// Human-readable degradation warnings (empty when the merge is
    /// complete and fully stitched).
    pub fn warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        if !self.incomplete.is_empty() {
            let nodes: Vec<String> = self.incomplete.iter().map(u32::to_string).collect();
            out.push(format!(
                "telemetry from node(s) {} is incomplete; the merged trace degrades to the \
                 processes that reported",
                nodes.join(", ")
            ));
        }
        if self.unmatched_sends > 0 || self.unmatched_recvs > 0 {
            out.push(format!(
                "{} wire send(s) and {} wire recv(s) found no cross-process match; their \
                 causal chains stay process-local",
                self.unmatched_sends, self.unmatched_recvs
            ));
        }
        if self.dropped > 0 {
            out.push(format!(
                "{} flight event(s) dropped across processes; the merged profile is partial",
                self.dropped
            ));
        }
        if self.dropped_spans > 0 {
            out.push(format!(
                "{} trace span(s) dropped across processes (trace.dropped_spans)",
                self.dropped_spans
            ));
        }
        out
    }
}

/// Merge per-process traces into one causal trace (see module docs for
/// the renumber / align / stitch pipeline). Input order does not matter
/// — traces are sorted by node id first, so the merge is deterministic.
pub fn merge_traces(mut traces: Vec<ProcessTrace>) -> MergeReport {
    traces.sort_by_key(|t| t.node);

    let mut report = MergeReport {
        processes: traces.len() as u32,
        ..MergeReport::default()
    };

    // Step 1: renumber seqs/parents into one space, tag process lanes.
    let mut base = 0u64;
    let mut per_proc: Vec<Vec<Event>> = Vec::with_capacity(traces.len());
    for trace in &traces {
        let max_seq = trace.events.iter().map(|e| e.seq).max().unwrap_or(0);
        let pid = trace.node + 1;
        per_proc.push(
            trace
                .events
                .iter()
                .map(|e| {
                    let mut e = e.clone();
                    e.seq += base;
                    e.parent = e.parent.map(|p| p + base);
                    e.pid = pid;
                    e
                })
                .collect(),
        );
        base += max_seq;
        report.dropped += trace.dropped;
        report.dropped_spans += trace.dropped_spans;
        for (name, value) in &trace.counters {
            *report.counters.entry(name.clone()).or_insert(0) += value;
        }
        if !trace.complete {
            report.incomplete.push(trace.node);
        }
    }

    // Pair wire hops by key: k-th send to k-th recv, ordered by local
    // start time. All sends for a key come from one process (the
    // owner), all recvs from another, so local ordering is sound even
    // before clocks are aligned.
    #[derive(Default)]
    struct Hop {
        /// (process index, position in per_proc[idx])
        sends: Vec<(usize, usize)>,
        recvs: Vec<(usize, usize)>,
    }
    let mut hops: BTreeMap<(u32, u32, u64, u64, u64), Hop> = BTreeMap::new();
    for (pi, events) in per_proc.iter().enumerate() {
        for (ei, e) in events.iter().enumerate() {
            let Some(key) = e.wire_key() else { continue };
            let hop = hops.entry(key).or_default();
            match e.kind {
                EventKind::NetSend => hop.sends.push((pi, ei)),
                EventKind::NetRecv => hop.recvs.push((pi, ei)),
                _ => unreachable!("wire_key is only Some for NetSend/NetRecv"),
            }
        }
    }
    let mut pairs: Vec<((usize, usize), (usize, usize))> = Vec::new();
    for hop in hops.values_mut() {
        hop.sends
            .sort_by_key(|&(pi, ei)| (per_proc[pi][ei].start_us, per_proc[pi][ei].seq));
        hop.recvs
            .sort_by_key(|&(pi, ei)| (per_proc[pi][ei].start_us, per_proc[pi][ei].seq));
        let matched = hop.sends.len().min(hop.recvs.len());
        let surplus = (hop.sends.len() + hop.recvs.len() - 2 * matched) as u64;
        if matched > 0 {
            // The hop stitched; leftovers are retry duplicates, not a
            // missing half of the wire hop.
            report.retried += surplus;
        } else {
            report.unmatched_sends += hop.sends.len() as u64;
            report.unmatched_recvs += hop.recvs.len() as u64;
        }
        pairs.extend(hop.sends.iter().copied().zip(hop.recvs.iter().copied()));
    }

    // Step 2: happens-before clock alignment. offset[r] must be at
    // least offset[s] + send.end - recv.start for every matched pair;
    // relax for P rounds so constraint chains up to P hops propagate.
    let mut offsets = vec![0i64; per_proc.len()];
    for _ in 0..per_proc.len() {
        let mut changed = false;
        for &((spi, sei), (rpi, rei)) in &pairs {
            if spi == rpi {
                continue;
            }
            let send_end = per_proc[spi][sei].end_us() as i64;
            let recv_start = per_proc[rpi][rei].start_us as i64;
            let need = offsets[spi] + send_end - recv_start;
            if need > offsets[rpi] {
                offsets[rpi] = need;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    report.offsets_us = offsets.iter().map(|&o| o.max(0) as u64).collect();
    for (pi, events) in per_proc.iter_mut().enumerate() {
        let off = report.offsets_us[pi];
        for e in events {
            e.start_us += off;
        }
    }

    // Step 3: stitch — the recv's causal parent becomes the send.
    for &((spi, sei), (rpi, rei)) in &pairs {
        let send_seq = per_proc[spi][sei].seq;
        per_proc[rpi][rei].parent = Some(send_seq);
        report.stitched += 1;
    }

    report.events = per_proc.into_iter().flatten().collect();
    report.events.sort_by_key(|e| (e.start_us, e.seq));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LinkClass;

    fn trace(node: u32, events: Vec<Event>) -> ProcessTrace {
        ProcessTrace {
            node,
            events,
            dropped: 0,
            dropped_spans: 0,
            counters: BTreeMap::new(),
            complete: true,
        }
    }

    /// Producer process 0 puts and sends; consumer process 1 receives,
    /// pulls and gets. The wire hop crosses the process boundary.
    fn coupled_pair() -> Vec<ProcessTrace> {
        let producer = vec![
            Event::new(1, EventKind::Put { indexed: false })
                .var(7)
                .version(1)
                .src(2)
                .piece(5)
                .window(0, 100),
            Event::new(2, EventKind::NetSend)
                .var(7)
                .version(1)
                .src(2)
                .dst(6)
                .piece(5)
                .bytes(512)
                .window(100, 40),
        ];
        // The consumer's clock reads earlier than the producer's: its
        // recv "starts" at 20µs local, before the send even began.
        let consumer = vec![
            Event::new(1, EventKind::Get { cont: true })
                .var(7)
                .version(1)
                .dst(6)
                .window(0, 400),
            Event::new(2, EventKind::NetRecv)
                .var(7)
                .version(1)
                .src(2)
                .dst(6)
                .piece(5)
                .bytes(512)
                .window(20, 30),
            Event::new(3, EventKind::Pull { wait_us: 10 })
                .parent(1)
                .var(7)
                .version(1)
                .src(2)
                .dst(6)
                .piece(5)
                .link(LinkClass::Rdma)
                .window(60, 80),
        ];
        vec![trace(0, producer), trace(1, consumer)]
    }

    #[test]
    fn merge_renumbers_and_stitches() {
        let report = merge_traces(coupled_pair());
        assert_eq!(report.processes, 2);
        assert_eq!(report.stitched, 1);
        assert_eq!(report.unmatched_sends, 0);
        assert_eq!(report.unmatched_recvs, 0);
        assert!(report.fully_stitched());
        assert!(report.warnings().is_empty());

        // Seqs are unique, consumer events renumbered past producer's.
        let mut seqs: Vec<u64> = report.events.iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), report.events.len());

        // The recv's parent is the producer's send.
        let send = report
            .events
            .iter()
            .find(|e| e.kind == EventKind::NetSend)
            .unwrap();
        let recv = report
            .events
            .iter()
            .find(|e| e.kind == EventKind::NetRecv)
            .unwrap();
        assert_eq!(recv.parent, Some(send.seq));
        assert_eq!(send.pid, 1);
        assert_eq!(recv.pid, 2);

        // The consumer's intra-process parent still resolves after
        // renumbering: pull.parent == get.seq.
        let get = report
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Get { .. }))
            .unwrap();
        let pull = report
            .events
            .iter()
            .find(|e| matches!(e.kind, EventKind::Pull { .. }))
            .unwrap();
        assert_eq!(pull.parent, Some(get.seq));
    }

    #[test]
    fn merge_aligns_clocks_by_happens_before() {
        let report = merge_traces(coupled_pair());
        // Producer is the reference; consumer must shift so its recv
        // (local start 20) does not precede the send's end (140).
        assert_eq!(report.offsets_us, vec![0, 120]);
        let send = report
            .events
            .iter()
            .find(|e| e.kind == EventKind::NetSend)
            .unwrap();
        let recv = report
            .events
            .iter()
            .find(|e| e.kind == EventKind::NetRecv)
            .unwrap();
        assert!(recv.start_us >= send.end_us());
    }

    #[test]
    fn unmatched_halves_are_counted_not_invented() {
        let mut traces = coupled_pair();
        // Drop the consumer's recv: the send has no partner.
        traces[1].events.retain(|e| e.kind != EventKind::NetRecv);
        let report = merge_traces(traces);
        assert_eq!(report.stitched, 0);
        assert_eq!(report.unmatched_sends, 1);
        assert_eq!(report.unmatched_recvs, 0);
        assert!(!report.fully_stitched());
        assert!(report
            .warnings()
            .iter()
            .any(|w| w.contains("no cross-process match")));
    }

    #[test]
    fn retried_send_on_a_stitched_hop_is_benign() {
        let mut traces = coupled_pair();
        // A re-requested pull re-sends `PullData`: the owner records a
        // second send with the same wire identity, the late duplicate
        // is discarded by the consumer without a recv.
        let retry = Event::new(3, EventKind::NetSend)
            .var(7)
            .version(1)
            .src(2)
            .dst(6)
            .piece(5)
            .bytes(512)
            .window(200, 40);
        traces[0].events.push(retry);
        let report = merge_traces(traces);
        // The hop stitched (first send, by local start order, pairs
        // with the recv); the surplus send counts as a retry, never as
        // degradation.
        assert_eq!(report.stitched, 1);
        assert_eq!(report.retried, 1);
        assert_eq!(report.unmatched_sends, 0);
        assert_eq!(report.unmatched_recvs, 0);
        assert!(report.fully_stitched());
        assert!(report.warnings().is_empty(), "{:?}", report.warnings());
    }

    #[test]
    fn incomplete_and_counters_aggregate() {
        let mut traces = coupled_pair();
        traces[0].counters.insert("net.bytes_sent".into(), 512);
        traces[0].dropped_spans = 3;
        traces[1].counters.insert("net.bytes_sent".into(), 40);
        traces[1].dropped = 2;
        traces[1].complete = false;
        let report = merge_traces(traces);
        assert_eq!(report.counters.get("net.bytes_sent"), Some(&552));
        assert_eq!(report.dropped, 2);
        assert_eq!(report.dropped_spans, 3);
        assert_eq!(report.incomplete, vec![1]);
        assert!(report.warnings().iter().any(|w| w.contains("incomplete")));
    }

    #[test]
    fn merge_is_input_order_independent() {
        let forward = merge_traces(coupled_pair());
        let mut reversed_in = coupled_pair();
        reversed_in.reverse();
        let reversed = merge_traces(reversed_in);
        assert_eq!(forward.events.len(), reversed.events.len());
        assert_eq!(forward.offsets_us, reversed.offsets_us);
        for (a, b) in forward.events.iter().zip(&reversed.events) {
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.start_us, b.start_us);
            assert_eq!(a.parent, b.parent);
        }
    }
}
