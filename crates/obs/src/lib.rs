//! # insitu-obs
//!
//! Causal flight recorder and critical-path profiler for coupled
//! transfers:
//!
//! * [`event`] — the structured event schema: every `put`/`get`
//!   (`*_cont` and `*_seq`), schedule computation, DHT lookup, receiver
//!   pull and injected fault, tagged `(app, var, version, bbox, src,
//!   dst, link_class)` with causal parent edges;
//! * [`flight`] — the [`FlightRecorder`]: a bounded lock-sharded event
//!   log behind the same disabled-by-default facade as the telemetry
//!   `Recorder`;
//! * [`profile`] — per-iteration transfer-DAG reconstruction, critical
//!   path with schedule / shm transfer / RDMA transfer / wait
//!   attribution (categories sum to the end-to-end iteration time by
//!   construction), and exact p50/p95/p99 queueing-delay and
//!   transfer-size percentiles per link class;
//! * [`flow`] — chrome://tracing export adding `s`/`f` flow events so
//!   arrows connect producer puts to consumer gets in the existing
//!   span trace (and, for merged traces, per-process lanes plus wire
//!   arrows across stitched hops);
//! * [`merge`] — the distributed mode: per-process traces are
//!   renumbered, clock-aligned by happens-before relaxation over
//!   matched `NetSend`/`NetRecv` pairs, and stitched into one causal
//!   trace whose cross-process edges let the profiler and the chrome
//!   export span process boundaries;
//! * [`gate`] — baseline regression gating over BENCH-style JSON
//!   documents, backing `insitu compare --gate`.
//!
//! Std-only, path-only dependencies (domain, fabric, telemetry).

#![warn(missing_docs)]

pub mod event;
pub mod flight;
pub mod flow;
pub mod gate;
pub mod merge;
pub mod profile;

pub use event::{Event, EventKind, LinkClass};
pub use flight::{FlightRecorder, DEFAULT_EVENT_CAPACITY};
pub use flow::{chrome_flow_events, chrome_trace_merged, chrome_trace_with_flows};
pub use gate::{gate_compare, profile_doc, GateConfig, GateOutcome};
pub use merge::{merge_traces, MergeReport, ProcessTrace};
pub use profile::{CategoryBreakdown, IterationProfile, LinkClassStats, ProfileReport};
