//! Chrome trace export with causal flow arrows.
//!
//! Each flight event renders as an `"X"` slice (same shape as the
//! telemetry span export), and every pull that retrieved a staged piece
//! contributes an `"s"`/`"f"` flow pair: the `s` anchors inside the
//! producer's put slice, the `f` (binding-point `"e"`) inside the
//! consumer's pull slice — which nests inside its get — so
//! chrome://tracing and Perfetto draw an arrow from producer put to
//! consumer get. Flow ids are the pull's sequence number, unique per
//! run.
//!
//! Merged multi-process traces add two things: every slice lands on its
//! process lane (`pid` from [`Event::pid`], one lane per joiner), and
//! every stitched wire hop — a [`EventKind::NetRecv`] whose `parent`
//! points at the matching [`EventKind::NetSend`] — contributes a second
//! flow pair, so the arrow chain reads put → wire → pull → get across
//! process boundaries.

use std::collections::BTreeMap;

use insitu_telemetry::{Json, TraceSink};

use crate::event::{Event, EventKind};

fn slice_json(e: &Event) -> Json {
    let mut args = Json::obj()
        .field("seq", e.seq)
        .field("var", e.var)
        .field("version", e.version)
        .field("bytes", e.bytes);
    if let Some(link) = e.link {
        args = args.field("link", link.slug());
    }
    if let Some(parent) = e.parent {
        args = args.field("parent", parent);
    }
    if let EventKind::Fault { kind } = e.kind {
        args = args.field("fault", kind);
    }
    Json::obj()
        .field("name", e.kind.name())
        .field("cat", "obs")
        .field("ph", "X")
        .field("ts", e.start_us)
        .field("dur", e.duration_us)
        .field("pid", e.pid as u64)
        .field("tid", e.track())
        .field("args", args)
}

/// Render flight events as chrome trace events: one `"X"` slice per
/// event plus `"s"`/`"f"` flow pairs joining producer puts to the pulls
/// that retrieved their pieces.
pub fn chrome_flow_events(events: &[Event]) -> Vec<Json> {
    let mut out: Vec<Json> = events.iter().map(slice_json).collect();

    // Producer puts indexed by piece key.
    let mut puts: BTreeMap<(u64, u64, u32, u64), &Event> = BTreeMap::new();
    for e in events {
        if matches!(e.kind, EventKind::Put { .. }) {
            if let Some(key) = e.piece_key() {
                puts.insert(key, e);
            }
        }
    }

    for e in events {
        if !matches!(e.kind, EventKind::Pull { .. }) {
            continue;
        }
        let Some(put) = e.piece_key().and_then(|k| puts.get(&k)) else {
            continue;
        };
        // Anchor the start inside the put slice (its last covered
        // microsecond) and the finish at the pull slice's start.
        let s_ts = put.start_us + put.duration_us.saturating_sub(1);
        out.push(
            Json::obj()
                .field("name", "coupling")
                .field("cat", "obs.flow")
                .field("ph", "s")
                .field("id", e.seq)
                .field("ts", s_ts)
                .field("pid", put.pid as u64)
                .field("tid", put.track()),
        );
        out.push(
            Json::obj()
                .field("name", "coupling")
                .field("cat", "obs.flow")
                .field("ph", "f")
                .field("bp", "e")
                .field("id", e.seq)
                .field("ts", e.start_us)
                .field("pid", e.pid as u64)
                .field("tid", e.track()),
        );
    }

    // Stitched wire hops: recv.parent names the send on the other
    // process (the merge's cross-process edge).
    let by_seq: BTreeMap<u64, &Event> = events.iter().map(|e| (e.seq, e)).collect();
    for e in events {
        if e.kind != EventKind::NetRecv {
            continue;
        }
        let Some(send) = e
            .parent
            .and_then(|p| by_seq.get(&p))
            .filter(|s| s.kind == EventKind::NetSend)
        else {
            continue;
        };
        let s_ts = send.start_us + send.duration_us.saturating_sub(1);
        out.push(
            Json::obj()
                .field("name", "wire")
                .field("cat", "obs.flow")
                .field("ph", "s")
                .field("id", e.seq)
                .field("ts", s_ts)
                .field("pid", send.pid as u64)
                .field("tid", send.track()),
        );
        out.push(
            Json::obj()
                .field("name", "wire")
                .field("cat", "obs.flow")
                .field("ph", "f")
                .field("bp", "e")
                .field("id", e.seq)
                .field("ts", e.start_us)
                .field("pid", e.pid as u64)
                .field("tid", e.track()),
        );
    }
    out
}

/// Chrome trace document for a merged multi-process trace: one lane per
/// process, flow arrows across the stitched wire hops, and the merge's
/// degradation tallies recorded as top-level fields.
pub fn chrome_trace_merged(report: &crate::merge::MergeReport) -> Json {
    Json::obj()
        .field("traceEvents", chrome_flow_events(&report.events))
        .field("displayTimeUnit", "ms")
        .field("droppedSpans", report.dropped_spans)
        .field("droppedEvents", report.dropped)
        .field("processes", report.processes as u64)
        .field("stitched", report.stitched)
        .field("unmatchedSends", report.unmatched_sends)
        .field("unmatchedRecvs", report.unmatched_recvs)
        .field("retriedWire", report.retried)
}

/// Full chrome trace document: the telemetry span sink's slices merged
/// with the flight events' slices and flow arrows.
pub fn chrome_trace_with_flows(
    sink: Option<&TraceSink>,
    events: &[Event],
    dropped_events: u64,
) -> Json {
    let mut trace_events = sink.map(TraceSink::chrome_events).unwrap_or_default();
    trace_events.extend(chrome_flow_events(events));
    Json::obj()
        .field("traceEvents", trace_events)
        .field("displayTimeUnit", "ms")
        .field("droppedSpans", sink.map_or(0, TraceSink::dropped))
        .field("droppedEvents", dropped_events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LinkClass;

    fn coupled_events() -> Vec<Event> {
        vec![
            Event::new(1, EventKind::Put { indexed: false })
                .app(1)
                .var(3)
                .version(0)
                .src(2)
                .piece(7)
                .bytes(512)
                .window(0, 100),
            Event::new(2, EventKind::Get { cont: true })
                .app(2)
                .var(3)
                .version(0)
                .dst(5)
                .window(150, 400),
            Event::new(3, EventKind::Pull { wait_us: 10 })
                .parent(2)
                .var(3)
                .version(0)
                .src(2)
                .dst(5)
                .piece(7)
                .link(LinkClass::Rdma)
                .bytes(512)
                .window(200, 80),
        ]
    }

    #[test]
    fn pull_gets_flow_pair_to_put() {
        let events = coupled_events();
        let json = Json::Arr(chrome_flow_events(&events)).render();
        // One s/f pair with id 3 (the pull's seq).
        assert!(json.contains("\"ph\":\"s\",\"id\":3,\"ts\":99,\"pid\":0,\"tid\":2"));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":3,\"ts\":200,\"pid\":0,\"tid\":5"));
        // Slices for all three events.
        assert!(json.contains("obs.put_cont"));
        assert!(json.contains("obs.get_cont"));
        assert!(json.contains("obs.pull"));
    }

    #[test]
    fn unmatched_pull_has_no_flow() {
        let mut events = coupled_events();
        events.remove(0); // drop the put
        let flows: Vec<Json> = chrome_flow_events(&events);
        let text = Json::Arr(flows).render();
        assert!(!text.contains("\"ph\":\"s\""));
        assert!(!text.contains("\"ph\":\"f\""));
    }

    #[test]
    fn stitched_wire_hop_gets_flow_pair() {
        // A stitched merge output: send on pid 1, recv on pid 2 whose
        // parent names the send.
        let events = vec![
            Event::new(2, EventKind::NetSend)
                .var(3)
                .version(0)
                .src(2)
                .dst(5)
                .piece(7)
                .pid(1)
                .window(100, 40),
            Event::new(5, EventKind::NetRecv)
                .parent(2)
                .var(3)
                .version(0)
                .src(2)
                .dst(5)
                .piece(7)
                .pid(2)
                .window(140, 30),
        ];
        let json = Json::Arr(chrome_flow_events(&events)).render();
        assert!(json.contains("\"name\":\"wire\",\"cat\":\"obs.flow\",\"ph\":\"s\",\"id\":5,\"ts\":139,\"pid\":1,\"tid\":2"));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":5,\"ts\":140,\"pid\":2,\"tid\":5"));
        // Slices land on their process lanes.
        assert!(json.contains("\"name\":\"obs.net_send\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":100,\"dur\":40,\"pid\":1"));
    }

    #[test]
    fn merged_document_carries_degradation_tallies() {
        use crate::merge::{merge_traces, ProcessTrace};
        let traces = vec![ProcessTrace {
            node: 0,
            events: coupled_events(),
            dropped: 2,
            dropped_spans: 1,
            counters: Default::default(),
            complete: true,
        }];
        let doc = chrome_trace_merged(&merge_traces(traces));
        let text = doc.render();
        assert!(text.contains("\"droppedEvents\":2"));
        assert!(text.contains("\"droppedSpans\":1"));
        assert!(text.contains("\"processes\":1"));
        assert!(Json::parse(&text).is_ok());
    }

    #[test]
    fn merged_trace_keeps_sink_spans() {
        let sink = TraceSink::with_capacity(8);
        sink.push_synthetic("app1.task", "threaded", 2, 0, 500);
        let doc = chrome_trace_with_flows(Some(&sink), &coupled_events(), 4);
        let text = doc.render();
        assert!(text.contains("app1.task"));
        assert!(text.contains("obs.pull"));
        assert!(text.contains("\"droppedEvents\":4"));
        // Parses back as valid JSON.
        assert!(Json::parse(&text).is_ok());
    }
}
