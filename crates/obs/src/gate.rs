//! Baseline regression gating over BENCH-style JSON documents.
//!
//! A gate document is the same shape the bench harness emits
//! (`BENCH_*.json`): `{"figure": .., "title": .., "rows": [{"metric":
//! name, "value": number, ..}, ..]}`. Every metric is
//! lower-is-better (times, bytes moved); the gate fails when any
//! current value exceeds its baseline by more than the configured
//! threshold, or when a baseline metric disappeared.

use insitu_telemetry::Json;

/// Gate configuration.
#[derive(Clone, Copy, Debug)]
pub struct GateConfig {
    /// Allowed regression in percent (current may exceed baseline by up
    /// to this much before the gate fails).
    pub threshold_pct: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            threshold_pct: 10.0,
        }
    }
}

/// Outcome of a gate comparison.
#[derive(Clone, Debug, Default)]
pub struct GateOutcome {
    /// Human-readable regression descriptions; empty means the gate
    /// passed.
    pub regressions: Vec<String>,
    /// Metrics that improved beyond the threshold (informational).
    pub improvements: Vec<String>,
    /// Metrics compared.
    pub checked: usize,
}

impl GateOutcome {
    /// Whether the gate passed.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }

    /// Plain-text verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "gate: {} metrics checked, {} regressions, {} improvements\n",
            self.checked,
            self.regressions.len(),
            self.improvements.len()
        ));
        for r in &self.regressions {
            out.push_str(&format!("  REGRESSION {r}\n"));
        }
        for i in &self.improvements {
            out.push_str(&format!("  improved   {i}\n"));
        }
        out.push_str(if self.passed() {
            "gate: PASS\n"
        } else {
            "gate: FAIL\n"
        });
        out
    }
}

/// Build a gate/baseline document from `(metric, value)` rows.
pub fn profile_doc(figure: &str, title: &str, rows: &[(String, f64)]) -> Json {
    let rows: Vec<Json> = rows
        .iter()
        .map(|(metric, value)| {
            Json::obj()
                .field("metric", metric.as_str())
                .field("value", *value)
        })
        .collect();
    Json::obj()
        .field("figure", figure)
        .field("title", title)
        .field("rows", rows)
}

fn rows_of(doc: &Json) -> Result<Vec<(String, f64)>, String> {
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("document has no `rows` array")?;
    let mut out = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let metric = row
            .get("metric")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("row {i} has no `metric`"))?;
        let value = row
            .get("value")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("row {i} has no numeric `value`"))?;
        out.push((metric.to_string(), value));
    }
    Ok(out)
}

/// Compare `current` against `baseline` (both gate documents). All
/// metrics are lower-is-better.
pub fn gate_compare(
    current: &Json,
    baseline: &Json,
    cfg: &GateConfig,
) -> Result<GateOutcome, String> {
    let current = rows_of(current)?;
    let baseline = rows_of(baseline)?;
    let factor = 1.0 + cfg.threshold_pct / 100.0;
    let mut outcome = GateOutcome::default();
    for (metric, base) in &baseline {
        let Some((_, cur)) = current.iter().find(|(m, _)| m == metric) else {
            outcome.regressions.push(format!(
                "{metric}: missing from current run (baseline {base:.3})"
            ));
            continue;
        };
        outcome.checked += 1;
        // Absolute slack keeps zero-valued baselines from tripping on
        // noise-level values.
        let allowed = base * factor + 1e-6;
        let improved = base / factor - 1e-6;
        if *cur > allowed {
            outcome.regressions.push(format!(
                "{metric}: {cur:.3} vs baseline {base:.3} (+{:.1}% > {:.1}% allowed)",
                (cur / base.max(1e-12) - 1.0) * 100.0,
                cfg.threshold_pct
            ));
        } else if *cur < improved {
            outcome.improvements.push(format!(
                "{metric}: {cur:.3} vs baseline {base:.3} ({:.1}%)",
                (cur / base.max(1e-12) - 1.0) * 100.0
            ));
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &[(&str, f64)]) -> Json {
        profile_doc(
            "profile",
            "t",
            &rows
                .iter()
                .map(|(m, v)| (m.to_string(), *v))
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn passes_within_threshold() {
        let base = doc(&[("retrieve_ms.app2", 10.0), ("net_bytes", 1000.0)]);
        let cur = doc(&[("retrieve_ms.app2", 10.5), ("net_bytes", 1000.0)]);
        let out = gate_compare(&cur, &base, &GateConfig::default()).unwrap();
        assert!(out.passed());
        assert_eq!(out.checked, 2);
    }

    #[test]
    fn fails_on_regression() {
        let base = doc(&[("retrieve_ms.app2", 10.0)]);
        let cur = doc(&[("retrieve_ms.app2", 20.0)]);
        let out = gate_compare(&cur, &base, &GateConfig::default()).unwrap();
        assert!(!out.passed());
        assert!(out.render().contains("REGRESSION"));
        assert!(out.render().contains("FAIL"));
    }

    #[test]
    fn fails_on_missing_metric() {
        let base = doc(&[("retrieve_ms.app2", 10.0)]);
        let cur = doc(&[("other", 1.0)]);
        let out = gate_compare(&cur, &base, &GateConfig::default()).unwrap();
        assert!(!out.passed());
    }

    #[test]
    fn reports_improvements() {
        let base = doc(&[("retrieve_ms.app2", 10.0)]);
        let cur = doc(&[("retrieve_ms.app2", 5.0)]);
        let out = gate_compare(&cur, &base, &GateConfig::default()).unwrap();
        assert!(out.passed());
        assert_eq!(out.improvements.len(), 1);
    }

    #[test]
    fn round_trips_through_text() {
        let base = doc(&[("a", 1.5)]);
        let parsed = Json::parse(&base.render()).unwrap();
        let out = gate_compare(&parsed, &base, &GateConfig::default()).unwrap();
        assert!(out.passed());
        assert!(gate_compare(&Json::Null, &base, &GateConfig::default()).is_err());
    }
}
