//! Two-sided asynchronous messaging between execution clients.
//!
//! Every client owns an unbounded inbox; `send` never blocks (DART's
//! asynchronous RPC abstraction hides buffer management from the caller).

use insitu_fabric::ClientId;
use insitu_util::channel::{Receiver, RecvTimeoutError, Sender};
use insitu_util::Bytes;
use std::time::Duration;

/// A message delivered to a client's inbox.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Msg {
    /// Sending client.
    pub src: ClientId,
    /// Application-defined tag for dispatch.
    pub tag: u64,
    /// Payload.
    pub payload: Bytes,
}

/// One client's inbox plus the send sides of all inboxes.
pub struct Mailbox {
    rx: Receiver<Msg>,
    tx: Sender<Msg>,
}

impl Mailbox {
    /// Create inboxes for `n` clients. Returns one mailbox per client; the
    /// runtime hands out cloned senders.
    pub fn create_all(n: u32) -> (Vec<Mailbox>, Vec<Sender<Msg>>) {
        let mut boxes = Vec::with_capacity(n as usize);
        let mut senders = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let (tx, rx) = insitu_util::channel::unbounded();
            senders.push(tx.clone());
            boxes.push(Mailbox { rx, tx });
        }
        (boxes, senders)
    }

    /// Blocking receive.
    ///
    /// # Panics
    /// Panics if every sender is dropped (runtime torn down mid-receive).
    pub fn recv(&self) -> Msg {
        self.rx.recv().expect("mailbox senders dropped")
    }

    /// Receive with a timeout; `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Msg> {
        match self.rx.recv_timeout(timeout) {
            Ok(m) => Some(m),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => panic!("mailbox senders dropped"),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Msg> {
        self.rx.try_recv()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.rx.len()
    }

    /// Whether the inbox is empty.
    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }

    /// A sender for this mailbox (used when constructing runtimes).
    pub fn sender(&self) -> Sender<Msg> {
        self.tx.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_and_recv() {
        let (boxes, senders) = Mailbox::create_all(2);
        senders[1]
            .send(Msg {
                src: 0,
                tag: 7,
                payload: Bytes::from_static(b"hi"),
            })
            .unwrap();
        let m = boxes[1].recv();
        assert_eq!(m.src, 0);
        assert_eq!(m.tag, 7);
        assert_eq!(&m.payload[..], b"hi");
    }

    #[test]
    fn fifo_per_sender() {
        let (boxes, senders) = Mailbox::create_all(1);
        for i in 0..10u64 {
            senders[0]
                .send(Msg {
                    src: 0,
                    tag: i,
                    payload: Bytes::new(),
                })
                .unwrap();
        }
        for i in 0..10u64 {
            assert_eq!(boxes[0].recv().tag, i);
        }
    }

    #[test]
    fn try_recv_empty() {
        let (boxes, _senders) = Mailbox::create_all(1);
        assert!(boxes[0].try_recv().is_none());
        assert!(boxes[0].is_empty());
    }

    #[test]
    fn recv_timeout_expires() {
        let (boxes, _senders) = Mailbox::create_all(1);
        assert!(boxes[0].recv_timeout(Duration::from_millis(10)).is_none());
    }

    #[test]
    fn cross_thread_delivery() {
        let (boxes, senders) = Mailbox::create_all(2);
        let tx = senders[0].clone();
        let h = std::thread::spawn(move || {
            tx.send(Msg {
                src: 1,
                tag: 42,
                payload: Bytes::from_static(b"x"),
            })
            .unwrap();
        });
        let m = boxes[0].recv();
        h.join().unwrap();
        assert_eq!(m.tag, 42);
    }
}
