//! The HybridDART runtime: endpoints, transport selection and accounting.

use crate::mailbox::{Mailbox, Msg};
use crate::registry::{BufKey, BufferHandle, BufferRegistry};
use insitu_fabric::{
    ClientId, FaultAction, FaultInjector, Locality, Placement, TrafficClass, TransferLedger,
};
use insitu_obs::{Event, EventKind, FlightRecorder};
use insitu_telemetry::{Counter, Histogram, Recorder};
use insitu_util::channel::Sender;
use insitu_util::Bytes;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The shared communication runtime for one workflow execution.
///
/// Holds the placement (to select transports), the transfer ledger (to
/// account every byte), the message senders of all endpoints and the
/// one-sided buffer registry. Cheap to clone via `Arc`.
///
/// The runtime is also the telemetry injection point for the data plane:
/// construct with [`DartRuntime::with_recorder`] and every layer above
/// (CoDS, the executors) records through [`DartRuntime::recorder`].
pub struct DartRuntime {
    placement: Arc<Placement>,
    ledger: Arc<TransferLedger>,
    senders: Vec<Sender<Msg>>,
    mailboxes: Vec<Mutex<Option<Mailbox>>>,
    registry: BufferRegistry,
    recorder: Recorder,
    flight: FlightRecorder,
    injector: FaultInjector,
    msgs_sent: Counter,
    transport_shm: Counter,
    transport_net: Counter,
    pull_wait_us: Histogram,
}

impl DartRuntime {
    /// Build a runtime for every client of `placement`, without telemetry.
    pub fn new(placement: Arc<Placement>, ledger: Arc<TransferLedger>) -> Arc<Self> {
        Self::with_recorder(placement, ledger, Recorder::disabled())
    }

    /// Build a runtime whose transports and pulls record into `recorder`.
    pub fn with_recorder(
        placement: Arc<Placement>,
        ledger: Arc<TransferLedger>,
        recorder: Recorder,
    ) -> Arc<Self> {
        Self::with_injector(placement, ledger, recorder, FaultInjector::none())
    }

    /// Build a runtime that additionally consults `injector` at its fault
    /// sites (pulls here; the layers above reach the injector through
    /// [`DartRuntime::injector`]).
    pub fn with_injector(
        placement: Arc<Placement>,
        ledger: Arc<TransferLedger>,
        recorder: Recorder,
        injector: FaultInjector,
    ) -> Arc<Self> {
        Self::with_flight(
            placement,
            ledger,
            recorder,
            injector,
            FlightRecorder::disabled(),
        )
    }

    /// Build a runtime that additionally logs structured causal events
    /// (pull faults here; puts, gets, schedules and pulls in CoDS, which
    /// reaches the recorder through [`DartRuntime::flight`]).
    pub fn with_flight(
        placement: Arc<Placement>,
        ledger: Arc<TransferLedger>,
        recorder: Recorder,
        injector: FaultInjector,
        flight: FlightRecorder,
    ) -> Arc<Self> {
        let n = placement.num_clients();
        let (boxes, senders) = Mailbox::create_all(n);
        Arc::new(DartRuntime {
            placement,
            ledger,
            senders,
            mailboxes: boxes.into_iter().map(|b| Mutex::new(Some(b))).collect(),
            registry: BufferRegistry::new(),
            injector,
            flight,
            msgs_sent: recorder.counter("dart.msgs_sent"),
            transport_shm: recorder.counter("dart.transport.shm"),
            transport_net: recorder.counter("dart.transport.net"),
            pull_wait_us: recorder.histogram("dart.pull_wait_us"),
            recorder,
        })
    }

    /// The placement this runtime serves.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The byte ledger.
    pub fn ledger(&self) -> &TransferLedger {
        &self.ledger
    }

    /// The one-sided buffer registry.
    pub fn registry(&self) -> &BufferRegistry {
        &self.registry
    }

    /// The telemetry recorder this runtime was built with (disabled by
    /// default). Layers above the transport share it.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The fault injector this runtime was built with (inert by default).
    /// CoDS consults it at its own fault sites.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// The flight recorder this runtime was built with (disabled by
    /// default). CoDS and the executors log causal events through it.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// HybridDART's transport selection: shared memory when the two
    /// clients share a node, network otherwise.
    #[inline]
    pub fn transport(&self, a: ClientId, b: ClientId) -> Locality {
        if self.placement.colocated(a, b) {
            Locality::SharedMemory
        } else {
            Locality::Network
        }
    }

    /// Account a logical transfer of `bytes` from `from` to `to` for
    /// application `app`, choosing the transport by locality.
    pub fn account(
        &self,
        app: u32,
        class: TrafficClass,
        from: ClientId,
        to: ClientId,
        bytes: u64,
    ) -> Locality {
        let loc = self.transport(from, to);
        match loc {
            Locality::SharedMemory => self.transport_shm.inc(),
            Locality::Network => self.transport_net.inc(),
        }
        self.ledger.record(app, class, loc, bytes);
        loc
    }

    /// Send a message, accounting its payload under `class` (control
    /// messages, halo exchanges, ...).
    pub fn send(
        &self,
        app: u32,
        class: TrafficClass,
        from: ClientId,
        to: ClientId,
        tag: u64,
        payload: Bytes,
    ) {
        self.account(app, class, from, to, payload.len() as u64);
        self.msgs_sent.inc();
        self.senders[to as usize]
            .send(Msg {
                src: from,
                tag,
                payload,
            })
            .expect("receiver mailbox dropped");
    }

    /// Receiver-driven pull: block until `key` is registered, timing the
    /// wait into the `dart.pull_wait_us` histogram. `None` on timeout or
    /// when an injected fault drops the pull.
    pub fn pull(&self, key: &BufKey, timeout: Duration) -> Option<BufferHandle> {
        match self.injector.on_pull(key.name, key.version, key.piece) {
            FaultAction::Drop => {
                self.record_pull_fault("drop-pull", key);
                return None;
            }
            FaultAction::Delay(d) => {
                self.record_pull_fault("delay-pull", key);
                std::thread::sleep(d);
            }
            FaultAction::Proceed => {}
        }
        let started = Instant::now();
        let handle = self.registry.wait_for(key, timeout);
        self.pull_wait_us
            .record(started.elapsed().as_micros() as u64);
        handle
    }

    /// Log an injected pull fault as a flight event. The buf-key piece
    /// packs the owner in its upper half, so the event keeps the full
    /// `(var, version, owner, piece)` causal key.
    fn record_pull_fault(&self, kind: &'static str, key: &BufKey) {
        if !self.flight.is_enabled() {
            return;
        }
        let now = self.flight.now_us();
        self.flight.record(
            Event::new(self.flight.next_seq(), EventKind::Fault { kind })
                .var(key.name)
                .version(key.version)
                .src((key.piece >> 32) as u32)
                .piece(key.piece & 0xffff_ffff)
                .window(now, 0),
        );
    }

    /// Return a mailbox taken with [`Self::take_mailbox`] so a later task
    /// on the same core (a new wave's application) can take it again.
    pub fn return_mailbox(&self, client: ClientId, mailbox: Mailbox) {
        let mut slot = self.mailboxes[client as usize].lock().unwrap();
        assert!(slot.is_none(), "mailbox returned twice");
        *slot = Some(mailbox);
    }

    /// Take ownership of a client's mailbox (each client thread does this
    /// once at startup).
    ///
    /// # Panics
    /// Panics if the mailbox was already taken.
    pub fn take_mailbox(&self, client: ClientId) -> Mailbox {
        self.mailboxes[client as usize]
            .lock()
            .unwrap()
            .take()
            .expect("mailbox already taken")
    }

    /// Number of endpoints.
    pub fn num_clients(&self) -> u32 {
        self.placement.num_clients()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_fabric::MachineSpec;

    fn runtime(nodes: u32, cores: u32, clients: u32) -> Arc<DartRuntime> {
        let placement = Arc::new(Placement::pack_sequential(
            MachineSpec::new(nodes, cores),
            clients,
        ));
        DartRuntime::new(placement, Arc::new(TransferLedger::new()))
    }

    #[test]
    fn transport_selection_by_colocation() {
        let rt = runtime(2, 2, 4);
        assert_eq!(rt.transport(0, 1), Locality::SharedMemory);
        assert_eq!(rt.transport(0, 2), Locality::Network);
        assert_eq!(rt.transport(2, 3), Locality::SharedMemory);
    }

    #[test]
    fn account_records_with_locality() {
        let rt = runtime(2, 2, 4);
        rt.account(1, TrafficClass::InterApp, 0, 1, 100);
        rt.account(1, TrafficClass::InterApp, 0, 2, 40);
        let s = rt.ledger().snapshot();
        assert_eq!(s.shm_bytes(TrafficClass::InterApp), 100);
        assert_eq!(s.network_bytes(TrafficClass::InterApp), 40);
    }

    #[test]
    fn send_delivers_and_accounts_class() {
        let rt = runtime(1, 4, 4);
        let mb = rt.take_mailbox(3);
        rt.send(
            9,
            TrafficClass::Control,
            0,
            3,
            5,
            Bytes::from_static(b"task"),
        );
        let m = mb.recv();
        assert_eq!(m.src, 0);
        assert_eq!(m.tag, 5);
        let s = rt.ledger().snapshot();
        assert_eq!(s.shm_bytes(TrafficClass::Control), 4);
    }

    #[test]
    fn mailbox_can_be_returned_and_retaken() {
        let rt = runtime(1, 2, 2);
        let mb = rt.take_mailbox(0);
        rt.return_mailbox(0, mb);
        let _again = rt.take_mailbox(0);
    }

    #[test]
    #[should_panic(expected = "mailbox already taken")]
    fn mailbox_taken_once() {
        let rt = runtime(1, 2, 2);
        let _a = rt.take_mailbox(0);
        let _b = rt.take_mailbox(0);
    }

    #[test]
    fn registry_shared_through_runtime() {
        let rt = runtime(2, 2, 4);
        rt.registry().register(
            crate::BufKey {
                name: 1,
                version: 0,
                piece: 0,
            },
            2,
            Bytes::from_static(b"xyz"),
        );
        let h = rt
            .registry()
            .get(&crate::BufKey {
                name: 1,
                version: 0,
                piece: 0,
            })
            .unwrap();
        assert_eq!(h.owner, 2);
    }

    #[test]
    fn telemetry_counts_transports_and_messages() {
        let rec = Recorder::enabled();
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let rt =
            DartRuntime::with_recorder(placement, Arc::new(TransferLedger::new()), rec.clone());
        let mb = rt.take_mailbox(1);
        rt.send(0, TrafficClass::Control, 0, 1, 1, Bytes::from_static(b"a")); // colocated
        rt.account(0, TrafficClass::InterApp, 0, 2, 10); // cross-node
        mb.recv();
        rt.registry().register(
            BufKey {
                name: 1,
                version: 0,
                piece: 0,
            },
            0,
            Bytes::new(),
        );
        assert!(rt
            .pull(
                &BufKey {
                    name: 1,
                    version: 0,
                    piece: 0
                },
                Duration::from_secs(1)
            )
            .is_some());
        let snap = rec.metrics_snapshot();
        assert_eq!(snap.counter("dart.msgs_sent"), 1);
        assert_eq!(snap.counter("dart.transport.shm"), 1);
        assert_eq!(snap.counter("dart.transport.net"), 1);
        assert_eq!(snap.histograms["dart.pull_wait_us"].count, 1);
    }
}
