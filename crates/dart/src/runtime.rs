//! The HybridDART runtime: endpoints, transport selection and accounting.

use crate::mailbox::{Mailbox, Msg};
use crate::registry::{BufKey, BufferHandle, BufferRegistry};
use crate::transport::{LocalTransport, Transport};
use insitu_fabric::{
    ClientId, FaultAction, FaultInjector, Locality, Placement, TrafficClass, TransferLedger,
};
use insitu_obs::{Event, EventKind, FlightRecorder};
use insitu_sub::SubRegistry;
use insitu_telemetry::{Counter, Histogram, Recorder};
use insitu_util::channel::Sender;
use insitu_util::Bytes;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The shared communication runtime for one workflow execution.
///
/// Holds the placement (to select transports), the transfer ledger (to
/// account every byte), the message senders of all endpoints and the
/// one-sided buffer registry. Cheap to clone via `Arc`.
///
/// The runtime is also the telemetry injection point for the data plane:
/// construct with [`DartRuntime::with_recorder`] and every layer above
/// (CoDS, the executors) records through [`DartRuntime::recorder`].
pub struct DartRuntime {
    placement: Arc<Placement>,
    ledger: Arc<TransferLedger>,
    senders: Vec<Sender<Msg>>,
    mailboxes: Vec<Mutex<Option<Mailbox>>>,
    registry: BufferRegistry,
    subs: SubRegistry,
    recorder: Recorder,
    flight: FlightRecorder,
    injector: FaultInjector,
    wire: Arc<dyn Transport>,
    msgs_sent: Counter,
    transport_shm: Counter,
    transport_net: Counter,
    pull_wait_us: Histogram,
}

impl DartRuntime {
    /// Build a runtime for every client of `placement`, without telemetry.
    pub fn new(placement: Arc<Placement>, ledger: Arc<TransferLedger>) -> Arc<Self> {
        Self::with_recorder(placement, ledger, Recorder::disabled())
    }

    /// Build a runtime whose transports and pulls record into `recorder`.
    pub fn with_recorder(
        placement: Arc<Placement>,
        ledger: Arc<TransferLedger>,
        recorder: Recorder,
    ) -> Arc<Self> {
        Self::with_injector(placement, ledger, recorder, FaultInjector::none())
    }

    /// Build a runtime that additionally consults `injector` at its fault
    /// sites (pulls here; the layers above reach the injector through
    /// [`DartRuntime::injector`]).
    pub fn with_injector(
        placement: Arc<Placement>,
        ledger: Arc<TransferLedger>,
        recorder: Recorder,
        injector: FaultInjector,
    ) -> Arc<Self> {
        Self::with_flight(
            placement,
            ledger,
            recorder,
            injector,
            FlightRecorder::disabled(),
        )
    }

    /// Build a runtime that additionally logs structured causal events
    /// (pull faults here; puts, gets, schedules and pulls in CoDS, which
    /// reaches the recorder through [`DartRuntime::flight`]).
    pub fn with_flight(
        placement: Arc<Placement>,
        ledger: Arc<TransferLedger>,
        recorder: Recorder,
        injector: FaultInjector,
        flight: FlightRecorder,
    ) -> Arc<Self> {
        Self::with_transport(
            placement,
            ledger,
            recorder,
            injector,
            flight,
            Arc::new(LocalTransport),
        )
    }

    /// Build a runtime whose clients may live in other processes: `wire`
    /// decides which clients are hosted here and carries messages and
    /// buffer pulls to the rest. The default ([`LocalTransport`]) hosts
    /// everyone, which is the single-process executor.
    pub fn with_transport(
        placement: Arc<Placement>,
        ledger: Arc<TransferLedger>,
        recorder: Recorder,
        injector: FaultInjector,
        flight: FlightRecorder,
        wire: Arc<dyn Transport>,
    ) -> Arc<Self> {
        let n = placement.num_clients();
        let (boxes, senders) = Mailbox::create_all(n);
        Arc::new(DartRuntime {
            placement,
            ledger,
            senders,
            mailboxes: boxes.into_iter().map(|b| Mutex::new(Some(b))).collect(),
            registry: BufferRegistry::new(),
            subs: SubRegistry::new(),
            injector,
            flight,
            wire,
            msgs_sent: recorder.counter("dart.msgs_sent"),
            transport_shm: recorder.counter("dart.transport.shm"),
            transport_net: recorder.counter("dart.transport.net"),
            pull_wait_us: recorder.histogram("dart.pull_wait_us"),
            recorder,
        })
    }

    /// The placement this runtime serves.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The byte ledger.
    pub fn ledger(&self) -> &TransferLedger {
        &self.ledger
    }

    /// The one-sided buffer registry.
    pub fn registry(&self) -> &BufferRegistry {
        &self.registry
    }

    /// The standing-query subscription registry, sharded like the buffer
    /// registry so producers of unrelated variables never contend.
    pub fn subs(&self) -> &SubRegistry {
        &self.subs
    }

    /// The telemetry recorder this runtime was built with (disabled by
    /// default). Layers above the transport share it.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The fault injector this runtime was built with (inert by default).
    /// CoDS consults it at its own fault sites.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// The flight recorder this runtime was built with (disabled by
    /// default). CoDS and the executors log causal events through it.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// HybridDART's transport selection: shared memory when the two
    /// clients share a node, network otherwise.
    #[inline]
    pub fn transport(&self, a: ClientId, b: ClientId) -> Locality {
        if self.placement.colocated(a, b) {
            Locality::SharedMemory
        } else {
            Locality::Network
        }
    }

    /// Account a logical transfer of `bytes` from `from` to `to` for
    /// application `app`, choosing the transport by locality.
    pub fn account(
        &self,
        app: u32,
        class: TrafficClass,
        from: ClientId,
        to: ClientId,
        bytes: u64,
    ) -> Locality {
        let loc = self.transport(from, to);
        match loc {
            Locality::SharedMemory => self.transport_shm.inc(),
            Locality::Network => self.transport_net.inc(),
        }
        self.ledger.record(app, class, loc, bytes);
        loc
    }

    /// Send a message, accounting its payload under `class` (control
    /// messages, halo exchanges, ...). When `to` is hosted by another
    /// process the message is handed to the wire transport instead of the
    /// local mailbox; accounting happens here either way, so the
    /// receiving process must inject it with [`DartRuntime::deliver`].
    pub fn send(
        &self,
        app: u32,
        class: TrafficClass,
        from: ClientId,
        to: ClientId,
        tag: u64,
        payload: Bytes,
    ) {
        self.account(app, class, from, to, payload.len() as u64);
        self.msgs_sent.inc();
        let msg = Msg {
            src: from,
            tag,
            payload,
        };
        if self.wire.hosts(to) {
            self.senders[to as usize]
                .send(msg)
                .expect("receiver mailbox dropped");
        } else {
            self.wire.forward(to, &msg);
        }
    }

    /// Inject a message that was accounted elsewhere (the wire reader's
    /// entry point for forwarded messages). No ledger record is made:
    /// the sending process already accounted the transfer.
    pub fn deliver(&self, to: ClientId, msg: Msg) {
        self.senders[to as usize]
            .send(msg)
            .expect("receiver mailbox dropped");
    }

    /// Register a buffer and announce it through the transport (a no-op
    /// announcement in-process). Layers that want remote processes to be
    /// able to find their buffers register through this instead of
    /// [`BufferRegistry::register`] directly.
    pub fn register_buffer(&self, key: BufKey, owner: ClientId, data: Bytes) {
        let bytes = data.len() as u64;
        self.registry.register(key, owner, data);
        self.wire.publish(&key, owner, bytes);
    }

    /// Receiver-driven pull: block until `key` is registered, timing the
    /// wait into the `dart.pull_wait_us` histogram. `None` on timeout or
    /// when an injected fault drops the pull.
    pub fn pull(&self, key: &BufKey, timeout: Duration) -> Option<BufferHandle> {
        match self.injector.on_pull(key.name, key.version, key.piece) {
            FaultAction::Drop => {
                self.record_pull_fault("drop-pull", key);
                return None;
            }
            FaultAction::Delay(d) => {
                self.record_pull_fault("delay-pull", key);
                std::thread::sleep(d);
            }
            FaultAction::Proceed => {}
        }
        if self.registry.get(key).is_none() {
            self.wire.request(key);
        }
        let started = Instant::now();
        let handle = self.registry.wait_for(key, timeout);
        self.pull_wait_us
            .record(started.elapsed().as_micros() as u64);
        handle
    }

    /// Receiver-driven wait-for-any pull: issue every key at once and
    /// invoke `on_ready(index, handle, wait)` as each buffer becomes
    /// available, in arrival order — so the total blocking time is the
    /// max over keys, not the sum. `wait` is the time from issue until
    /// the buffer was available (also recorded in `dart.pull_wait_us`);
    /// the callback runs on the calling thread, and later arrivals queue
    /// behind it.
    ///
    /// Every key's pull fault site is consulted up front, so drop/delay
    /// faults fire per key exactly as they would under sequential pulls.
    /// A delayed key is withheld until its injected delay elapses; a
    /// dropped key fails the call. On failure the error carries the
    /// lowest undelivered key index (callers map it back to a schedule
    /// op); already-delivered callbacks are not undone.
    pub fn pull_many(
        &self,
        keys: &[BufKey],
        timeout: Duration,
        mut on_ready: impl FnMut(usize, BufferHandle, Duration),
    ) -> Result<(), usize> {
        if keys.is_empty() {
            return Ok(());
        }
        let start = Instant::now();
        let mut dropped: Option<usize> = None;
        let mut floors: Vec<Option<Instant>> = vec![None; keys.len()];
        for (i, key) in keys.iter().enumerate() {
            match self.injector.on_pull(key.name, key.version, key.piece) {
                FaultAction::Drop => {
                    self.record_pull_fault("drop-pull", key);
                    dropped.get_or_insert(i);
                }
                FaultAction::Delay(d) => {
                    self.record_pull_fault("delay-pull", key);
                    floors[i] = Some(start + d);
                }
                FaultAction::Proceed => {}
            }
        }
        if let Some(i) = dropped {
            return Err(i);
        }
        // Warm up direct peer links before the burst: each distinct
        // owner (packed in the piece's upper 32 bits) is dialed once,
        // so the requests below never serialize behind a dial. Hub-only
        // transports report false and the burst proceeds unchanged.
        let mut dialed: Vec<u32> = Vec::new();
        for key in keys {
            if self.registry.get(key).is_none() {
                let owner = (key.piece >> 32) as u32;
                if !dialed.contains(&owner) {
                    dialed.push(owner);
                    self.wire.dial_peer(owner);
                }
            }
        }
        for key in keys {
            if self.registry.get(key).is_none() {
                self.wire.request(key);
            }
        }
        // Sequential pulls sleep the injected delay before their wait, so
        // a delayed op's budget is delay + timeout; give the batch the
        // same allowance.
        let deadline = floors
            .iter()
            .flatten()
            .max()
            .map_or(start + timeout, |&f| f + timeout);

        let mut done = vec![false; keys.len()];
        let mut pending = keys.len();
        // Arrived but withheld by an injected delay: (index, handle).
        let mut held: Vec<(usize, BufferHandle)> = Vec::new();
        let mut deliver =
            |index: usize, handle: BufferHandle, done: &mut Vec<bool>, pending: &mut usize| {
                let wait = Instant::now().saturating_duration_since(start);
                self.pull_wait_us.record(wait.as_micros() as u64);
                done[index] = true;
                *pending -= 1;
                on_ready(index, handle, wait);
            };

        let mut sub = self.registry.subscribe(keys);
        while pending > 0 {
            let now = Instant::now();
            let mut k = 0;
            while k < held.len() {
                if floors[held[k].0].is_some_and(|f| f <= now) {
                    let (i, h) = held.swap_remove(k);
                    deliver(i, h, &mut done, &mut pending);
                } else {
                    k += 1;
                }
            }
            if pending == 0 {
                break;
            }
            // Wake at the deadline or the earliest withheld floor.
            let wake = held
                .iter()
                .filter_map(|&(i, _)| floors[i])
                .min()
                .map_or(deadline, |f| f.min(deadline));
            match sub.next_before(wake) {
                Some((i, h, _arrived)) => match floors[i] {
                    Some(f) if f > Instant::now() => held.push((i, h)),
                    _ => deliver(i, h, &mut done, &mut pending),
                },
                None => {
                    let now = Instant::now();
                    if held.is_empty() {
                        if now >= deadline {
                            break;
                        }
                    } else if now < wake {
                        // Every key already arrived; the only work left
                        // is withheld deliveries — sleep to the floor.
                        std::thread::sleep(wake - now);
                    }
                }
            }
        }
        match done.iter().position(|d| !d) {
            None => Ok(()),
            Some(i) => Err(i),
        }
    }

    /// Log an injected pull fault as a flight event. The buf-key piece
    /// packs the owner in its upper half, so the event keeps the full
    /// `(var, version, owner, piece)` causal key.
    fn record_pull_fault(&self, kind: &'static str, key: &BufKey) {
        if !self.flight.is_enabled() {
            return;
        }
        let now = self.flight.now_us();
        self.flight.record(
            Event::new(self.flight.next_seq(), EventKind::Fault { kind })
                .var(key.name)
                .version(key.version)
                .src((key.piece >> 32) as u32)
                .piece(key.piece & 0xffff_ffff)
                .window(now, 0),
        );
    }

    /// Return a mailbox taken with [`Self::take_mailbox`] so a later task
    /// on the same core (a new wave's application) can take it again.
    pub fn return_mailbox(&self, client: ClientId, mailbox: Mailbox) {
        let mut slot = self.mailboxes[client as usize].lock().unwrap();
        assert!(slot.is_none(), "mailbox returned twice");
        *slot = Some(mailbox);
    }

    /// Take ownership of a client's mailbox (each client thread does this
    /// once at startup).
    ///
    /// # Panics
    /// Panics if the mailbox was already taken.
    pub fn take_mailbox(&self, client: ClientId) -> Mailbox {
        self.mailboxes[client as usize]
            .lock()
            .unwrap()
            .take()
            .expect("mailbox already taken")
    }

    /// Number of endpoints.
    pub fn num_clients(&self) -> u32 {
        self.placement.num_clients()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_fabric::MachineSpec;

    fn runtime(nodes: u32, cores: u32, clients: u32) -> Arc<DartRuntime> {
        let placement = Arc::new(Placement::pack_sequential(
            MachineSpec::new(nodes, cores),
            clients,
        ));
        DartRuntime::new(placement, Arc::new(TransferLedger::new()))
    }

    #[test]
    fn transport_selection_by_colocation() {
        let rt = runtime(2, 2, 4);
        assert_eq!(rt.transport(0, 1), Locality::SharedMemory);
        assert_eq!(rt.transport(0, 2), Locality::Network);
        assert_eq!(rt.transport(2, 3), Locality::SharedMemory);
    }

    #[test]
    fn account_records_with_locality() {
        let rt = runtime(2, 2, 4);
        rt.account(1, TrafficClass::InterApp, 0, 1, 100);
        rt.account(1, TrafficClass::InterApp, 0, 2, 40);
        let s = rt.ledger().snapshot();
        assert_eq!(s.shm_bytes(TrafficClass::InterApp), 100);
        assert_eq!(s.network_bytes(TrafficClass::InterApp), 40);
    }

    #[test]
    fn send_delivers_and_accounts_class() {
        let rt = runtime(1, 4, 4);
        let mb = rt.take_mailbox(3);
        rt.send(
            9,
            TrafficClass::Control,
            0,
            3,
            5,
            Bytes::from_static(b"task"),
        );
        let m = mb.recv();
        assert_eq!(m.src, 0);
        assert_eq!(m.tag, 5);
        let s = rt.ledger().snapshot();
        assert_eq!(s.shm_bytes(TrafficClass::Control), 4);
    }

    #[test]
    fn mailbox_can_be_returned_and_retaken() {
        let rt = runtime(1, 2, 2);
        let mb = rt.take_mailbox(0);
        rt.return_mailbox(0, mb);
        let _again = rt.take_mailbox(0);
    }

    #[test]
    #[should_panic(expected = "mailbox already taken")]
    fn mailbox_taken_once() {
        let rt = runtime(1, 2, 2);
        let _a = rt.take_mailbox(0);
        let _b = rt.take_mailbox(0);
    }

    #[test]
    fn registry_shared_through_runtime() {
        let rt = runtime(2, 2, 4);
        rt.registry().register(
            crate::BufKey {
                name: 1,
                version: 0,
                piece: 0,
            },
            2,
            Bytes::from_static(b"xyz"),
        );
        let h = rt
            .registry()
            .get(&crate::BufKey {
                name: 1,
                version: 0,
                piece: 0,
            })
            .unwrap();
        assert_eq!(h.owner, 2);
    }

    fn bkey(piece: u64) -> BufKey {
        BufKey {
            name: 1,
            version: 0,
            piece,
        }
    }

    #[test]
    fn pull_many_yields_in_arrival_order() {
        let rt = runtime(1, 4, 4);
        let rt2 = Arc::clone(&rt);
        let producer = std::thread::spawn(move || {
            for piece in [2u64, 0, 1] {
                std::thread::sleep(Duration::from_millis(10));
                rt2.registry()
                    .register(bkey(piece), piece as u32, Bytes::from_static(b"x"));
            }
        });
        let mut order = Vec::new();
        rt.pull(&bkey(99), Duration::from_millis(1)); // unrelated waiter churn
        rt.pull_many(
            &[bkey(0), bkey(1), bkey(2)],
            Duration::from_secs(5),
            |i, h, wait| {
                assert_eq!(h.owner, i as u32);
                assert!(wait >= Duration::ZERO);
                order.push(i);
            },
        )
        .unwrap();
        producer.join().unwrap();
        assert_eq!(order, vec![2, 0, 1]);
    }

    #[test]
    fn pull_many_timeout_reports_missing_index() {
        let rt = runtime(1, 4, 4);
        rt.registry().register(bkey(0), 0, Bytes::from_static(b"x"));
        rt.registry().register(bkey(2), 2, Bytes::from_static(b"x"));
        let mut got = Vec::new();
        let err = rt
            .pull_many(
                &[bkey(0), bkey(1), bkey(2)],
                Duration::from_millis(30),
                |i, _, _| got.push(i),
            )
            .unwrap_err();
        assert_eq!(err, 1);
        got.sort_unstable();
        assert_eq!(got, vec![0, 2]);
    }

    #[test]
    fn pull_many_empty_is_ok() {
        let rt = runtime(1, 2, 2);
        rt.pull_many(&[], Duration::from_millis(1), |_, _, _| {
            panic!("no keys, no callbacks")
        })
        .unwrap();
    }

    #[test]
    fn pull_many_wait_is_time_to_availability() {
        let rt = runtime(1, 4, 4);
        rt.registry().register(bkey(0), 0, Bytes::from_static(b"x"));
        let rt2 = Arc::clone(&rt);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(60));
            rt2.registry()
                .register(bkey(1), 1, Bytes::from_static(b"x"));
        });
        let mut waits = vec![Duration::ZERO; 2];
        rt.pull_many(&[bkey(0), bkey(1)], Duration::from_secs(5), |i, _, w| {
            waits[i] = w;
        })
        .unwrap();
        producer.join().unwrap();
        // The present piece is delivered (almost) immediately; the late
        // one waits for its producer.
        assert!(waits[0] < Duration::from_millis(30), "{waits:?}");
        assert!(waits[1] >= Duration::from_millis(50), "{waits:?}");
    }

    /// Hosts only clients below a threshold; records the rest.
    struct HalfHosted {
        boundary: ClientId,
        forwarded: Mutex<Vec<(ClientId, u64)>>,
        published: Mutex<Vec<(BufKey, ClientId, u64)>>,
        requested: Mutex<Vec<BufKey>>,
    }

    impl HalfHosted {
        fn new(boundary: ClientId) -> Arc<Self> {
            Arc::new(HalfHosted {
                boundary,
                forwarded: Mutex::new(Vec::new()),
                published: Mutex::new(Vec::new()),
                requested: Mutex::new(Vec::new()),
            })
        }
    }

    impl crate::Transport for HalfHosted {
        fn hosts(&self, client: ClientId) -> bool {
            client < self.boundary
        }
        fn forward(&self, to: ClientId, msg: &Msg) {
            self.forwarded.lock().unwrap().push((to, msg.tag));
        }
        fn publish(&self, key: &BufKey, owner: ClientId, bytes: u64) {
            self.published.lock().unwrap().push((*key, owner, bytes));
        }
        fn request(&self, key: &BufKey) {
            self.requested.lock().unwrap().push(*key);
        }
    }

    fn split_runtime(boundary: ClientId) -> (Arc<DartRuntime>, Arc<HalfHosted>) {
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let wire = HalfHosted::new(boundary);
        let rt = DartRuntime::with_transport(
            placement,
            Arc::new(TransferLedger::new()),
            Recorder::disabled(),
            FaultInjector::none(),
            insitu_obs::FlightRecorder::disabled(),
            wire.clone(),
        );
        (rt, wire)
    }

    #[test]
    fn send_forwards_to_unhosted_clients_after_accounting() {
        let (rt, wire) = split_runtime(2);
        let mb = rt.take_mailbox(1);
        rt.send(0, TrafficClass::Control, 0, 1, 7, Bytes::from_static(b"ab"));
        assert_eq!(mb.recv().tag, 7);
        rt.send(0, TrafficClass::Control, 0, 3, 9, Bytes::from_static(b"ab"));
        assert_eq!(*wire.forwarded.lock().unwrap(), vec![(3, 9)]);
        // Both sends accounted in this process, hosted or not.
        let s = rt.ledger().snapshot();
        assert_eq!(s.total_bytes(TrafficClass::Control), 4);
    }

    #[test]
    fn deliver_injects_without_accounting() {
        let (rt, _) = split_runtime(4);
        let mb = rt.take_mailbox(0);
        rt.deliver(
            0,
            Msg {
                src: 3,
                tag: 11,
                payload: Bytes::from_static(b"remote"),
            },
        );
        let m = mb.recv();
        assert_eq!((m.src, m.tag), (3, 11));
        assert_eq!(rt.ledger().snapshot().shm_total(), 0);
        assert_eq!(rt.ledger().snapshot().network_total(), 0);
    }

    #[test]
    fn register_buffer_publishes_and_pull_requests_missing_keys() {
        let (rt, wire) = split_runtime(2);
        rt.register_buffer(bkey(0), 1, Bytes::from_static(b"xyz"));
        assert_eq!(*wire.published.lock().unwrap(), vec![(bkey(0), 1, 3)]);
        // Present key: no wire request.
        assert!(rt.pull(&bkey(0), Duration::from_millis(5)).is_some());
        assert!(wire.requested.lock().unwrap().is_empty());
        // Absent key: requested once through the wire, then times out
        // because no reader ever answers.
        assert!(rt.pull(&bkey(5), Duration::from_millis(5)).is_none());
        assert_eq!(*wire.requested.lock().unwrap(), vec![bkey(5)]);
        wire.requested.lock().unwrap().clear();
        let err = rt
            .pull_many(&[bkey(0), bkey(6)], Duration::from_millis(5), |_, _, _| {})
            .unwrap_err();
        assert_eq!(err, 1);
        assert_eq!(*wire.requested.lock().unwrap(), vec![bkey(6)]);
    }

    #[test]
    fn count_owned_filters_by_owner() {
        let rt = runtime(2, 2, 4);
        rt.registry().register(bkey(0), 0, Bytes::from_static(b"a"));
        rt.registry().register(bkey(1), 1, Bytes::from_static(b"b"));
        rt.registry().register(bkey(2), 3, Bytes::from_static(b"c"));
        assert_eq!(rt.registry().count_owned(|o| o < 2), 2);
        assert_eq!(rt.registry().count_owned(|o| o >= 2), 1);
        assert_eq!(
            rt.registry().count_owned(|_| true) as usize,
            rt.registry().len()
        );
    }

    #[test]
    fn telemetry_counts_transports_and_messages() {
        let rec = Recorder::enabled();
        let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(2, 2), 4));
        let rt =
            DartRuntime::with_recorder(placement, Arc::new(TransferLedger::new()), rec.clone());
        let mb = rt.take_mailbox(1);
        rt.send(0, TrafficClass::Control, 0, 1, 1, Bytes::from_static(b"a")); // colocated
        rt.account(0, TrafficClass::InterApp, 0, 2, 10); // cross-node
        mb.recv();
        rt.registry().register(
            BufKey {
                name: 1,
                version: 0,
                piece: 0,
            },
            0,
            Bytes::new(),
        );
        assert!(rt
            .pull(
                &BufKey {
                    name: 1,
                    version: 0,
                    piece: 0
                },
                Duration::from_secs(1)
            )
            .is_some());
        let snap = rec.metrics_snapshot();
        assert_eq!(snap.counter("dart.msgs_sent"), 1);
        assert_eq!(snap.counter("dart.transport.shm"), 1);
        assert_eq!(snap.counter("dart.transport.net"), 1);
        assert_eq!(snap.histograms["dart.pull_wait_us"].count, 1);
    }
}
