//! HybridDART: the asynchronous communication layer.
//!
//! The paper's HybridDART (§III.A) extends DART with a shared-memory fast
//! path: it "dynamically select\[s\] the appropriate data transfer
//! mechanism, i.e., shared memory or RDMA-supported network transport,
//! depending on the locations of the communicating tasks". In this
//! reproduction all execution clients live in one address space, so the
//! shared-memory path is literal; the "RDMA" path moves the same bytes but
//! is *accounted* as network traffic in the [`TransferLedger`](insitu_fabric::TransferLedger) according
//! to the placement — which is exactly the quantity the paper measures.
//!
//! Facilities:
//! * [`Mailbox`] messaging — the RPC-like two-sided primitive used by the
//!   control plane (registration, task dispatch, group formation);
//! * [`registry`] — remotely accessible registered buffers with blocking
//!   rendezvous, the one-sided substrate of the receiver-driven pull;
//! * transport selection + accounting on [`DartRuntime`].

#![warn(missing_docs)]

pub mod mailbox;
pub mod registry;
pub mod runtime;
pub mod transport;

pub use mailbox::{Mailbox, Msg};
pub use registry::{BufKey, BufferHandle, BufferRegistry};
pub use runtime::DartRuntime;
pub use transport::{LocalTransport, Transport};
