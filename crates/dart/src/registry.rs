//! Remotely accessible registered buffers.
//!
//! HybridDART "creates remotely accessible data buffers using either
//! shared memory segments or RDMA memory regions" (§IV.A). The registry
//! is the in-process equivalent: owners register immutable byte buffers
//! under a key; any client can open them (one-sided read, no owner
//! involvement) or block until they appear — the rendezvous used by
//! concurrent coupling, where a consumer's `get` may race the producer's
//! `put`.

use insitu_fabric::ClientId;
use insitu_util::Bytes;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Key of a registered buffer. CoDS composes `(name_hash, version, piece)`;
/// the registry treats it opaquely.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BufKey {
    /// Hash of the variable name (or other namespace).
    pub name: u64,
    /// Data version (iteration number).
    pub version: u64,
    /// Disambiguator, e.g. producing rank or piece index.
    pub piece: u64,
}

/// An opened buffer: the owner (for locality decisions) plus a zero-copy
/// view of the registered bytes.
#[derive(Clone, Debug)]
pub struct BufferHandle {
    /// Client that registered the buffer.
    pub owner: ClientId,
    /// The registered bytes.
    pub data: Bytes,
}

/// A concurrent key -> buffer table with blocking waits.
#[derive(Default)]
pub struct BufferRegistry {
    table: Mutex<HashMap<BufKey, BufferHandle>>,
    arrived: Condvar,
}

impl BufferRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a buffer and wake any waiters.
    pub fn register(&self, key: BufKey, owner: ClientId, data: Bytes) {
        self.table
            .lock()
            .unwrap()
            .insert(key, BufferHandle { owner, data });
        self.arrived.notify_all();
    }

    /// Non-blocking lookup.
    pub fn get(&self, key: &BufKey) -> Option<BufferHandle> {
        self.table.lock().unwrap().get(key).cloned()
    }

    /// Block until `key` is registered, up to `timeout`. `None` on timeout.
    pub fn wait_for(&self, key: &BufKey, timeout: Duration) -> Option<BufferHandle> {
        let deadline = std::time::Instant::now() + timeout;
        let mut table = self.table.lock().unwrap();
        loop {
            if let Some(h) = table.get(key) {
                return Some(h.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, res) = self.arrived.wait_timeout(table, deadline - now).unwrap();
            table = guard;
            if res.timed_out() {
                return table.get(key).cloned();
            }
        }
    }

    /// Remove a buffer (e.g. when a version is garbage collected).
    pub fn unregister(&self, key: &BufKey) -> Option<BufferHandle> {
        self.table.lock().unwrap().remove(key)
    }

    /// Remove every buffer whose version is strictly below `min_version`
    /// for the given name hash. Returns `(owner, bytes)` of each removed
    /// buffer so callers can release per-node staging accounting.
    pub fn evict_below(&self, name: u64, min_version: u64) -> Vec<(ClientId, u64)> {
        let mut t = self.table.lock().unwrap();
        let mut removed = Vec::new();
        t.retain(|k, h| {
            let keep = k.name != name || k.version >= min_version;
            if !keep {
                removed.push((h.owner, h.data.len() as u64));
            }
            keep
        });
        removed
    }

    /// Number of registered buffers.
    pub fn len(&self) -> usize {
        self.table.lock().unwrap().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.table.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(n: u64) -> BufKey {
        BufKey {
            name: n,
            version: 0,
            piece: 0,
        }
    }

    #[test]
    fn register_and_get() {
        let r = BufferRegistry::new();
        r.register(key(1), 3, Bytes::from_static(b"abc"));
        let h = r.get(&key(1)).unwrap();
        assert_eq!(h.owner, 3);
        assert_eq!(&h.data[..], b"abc");
        assert!(r.get(&key(2)).is_none());
    }

    #[test]
    fn wait_for_already_present() {
        let r = BufferRegistry::new();
        r.register(key(5), 0, Bytes::new());
        assert!(r.wait_for(&key(5), Duration::from_millis(1)).is_some());
    }

    #[test]
    fn wait_for_timeout() {
        let r = BufferRegistry::new();
        assert!(r.wait_for(&key(9), Duration::from_millis(20)).is_none());
    }

    #[test]
    fn wait_for_rendezvous_across_threads() {
        let r = Arc::new(BufferRegistry::new());
        let r2 = Arc::clone(&r);
        let waiter = std::thread::spawn(move || {
            r2.wait_for(&key(7), Duration::from_secs(5))
                .expect("producer must arrive")
        });
        std::thread::sleep(Duration::from_millis(20));
        r.register(key(7), 11, Bytes::from_static(b"data"));
        let h = waiter.join().unwrap();
        assert_eq!(h.owner, 11);
    }

    #[test]
    fn unregister_removes() {
        let r = BufferRegistry::new();
        r.register(key(1), 0, Bytes::new());
        assert!(r.unregister(&key(1)).is_some());
        assert!(r.get(&key(1)).is_none());
        assert!(r.unregister(&key(1)).is_none());
    }

    #[test]
    fn evict_below_respects_name_and_version() {
        let r = BufferRegistry::new();
        for v in 0..5u64 {
            r.register(
                BufKey {
                    name: 1,
                    version: v,
                    piece: 0,
                },
                v as u32,
                Bytes::from(vec![0u8; 4]),
            );
            r.register(
                BufKey {
                    name: 2,
                    version: v,
                    piece: 0,
                },
                0,
                Bytes::new(),
            );
        }
        let removed = r.evict_below(1, 3);
        assert_eq!(removed.len(), 3);
        // Each removed entry reports its owner and size.
        assert!(removed.iter().all(|&(_, b)| b == 4));
        let owners: std::collections::HashSet<u32> = removed.iter().map(|&(o, _)| o).collect();
        assert_eq!(owners, [0u32, 1, 2].into_iter().collect());
        assert_eq!(r.len(), 7);
        assert!(r
            .get(&BufKey {
                name: 1,
                version: 3,
                piece: 0
            })
            .is_some());
        assert!(r
            .get(&BufKey {
                name: 2,
                version: 0,
                piece: 0
            })
            .is_some());
    }

    #[test]
    fn replace_same_key() {
        let r = BufferRegistry::new();
        r.register(key(1), 0, Bytes::from_static(b"a"));
        r.register(key(1), 1, Bytes::from_static(b"b"));
        let h = r.get(&key(1)).unwrap();
        assert_eq!(h.owner, 1);
        assert_eq!(&h.data[..], b"b");
        assert_eq!(r.len(), 1);
    }
}
