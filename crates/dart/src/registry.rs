//! Remotely accessible registered buffers.
//!
//! HybridDART "creates remotely accessible data buffers using either
//! shared memory segments or RDMA memory regions" (§IV.A). The registry
//! is the in-process equivalent: owners register immutable byte buffers
//! under a key; any client can open them (one-sided read, no owner
//! involvement) or block until they appear — the rendezvous used by
//! concurrent coupling, where a consumer's `get` may race the producer's
//! `put`.
//!
//! The table is sharded by key hash: each shard has its own lock, so
//! producers registering different pieces and consumers polling
//! different keys never contend. Waiting is per key, not per table — a
//! [`Subscription`] parks a waiter record under each subscribed key and
//! `register` hands the arriving handle directly to those waiters (and
//! only those), so a `register` wakes exactly the clients that asked
//! for that key instead of broadcasting to every blocked consumer.

use insitu_fabric::ClientId;
use insitu_util::Bytes;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Key of a registered buffer. CoDS composes `(name_hash, version, piece)`;
/// the registry treats it opaquely.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct BufKey {
    /// Hash of the variable name (or other namespace).
    pub name: u64,
    /// Data version (iteration number).
    pub version: u64,
    /// Disambiguator, e.g. producing rank or piece index.
    pub piece: u64,
}

/// An opened buffer: the owner (for locality decisions) plus a zero-copy
/// view of the registered bytes.
#[derive(Clone, Debug)]
pub struct BufferHandle {
    /// Client that registered the buffer.
    pub owner: ClientId,
    /// The registered bytes.
    pub data: Bytes,
}

/// Number of independently locked table shards.
const SHARD_COUNT: usize = 16;

/// FNV-1a over the key fields; cheap, and good enough to spread the
/// `(name, version, piece)` tuples CoDS generates across shards.
fn shard_of(key: &BufKey) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in [key.name, key.version, key.piece] {
        for byte in word.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (h as usize) % SHARD_COUNT
}

/// The wait-side half of a [`Subscription`]: arrivals are pushed here by
/// `register` (tagged with the subscriber's key index and the arrival
/// instant) and popped by `next_before`.
struct Waiter {
    ready: Mutex<VecDeque<(usize, BufferHandle, Instant)>>,
    arrived: Condvar,
}

impl Waiter {
    fn deliver(&self, index: usize, handle: BufferHandle) {
        self.ready
            .lock()
            .unwrap()
            .push_back((index, handle, Instant::now()));
        self.arrived.notify_one();
    }
}

#[derive(Default)]
struct Shard {
    table: HashMap<BufKey, BufferHandle>,
    /// Waiters parked on not-yet-registered keys, each tagged with the
    /// index of the key in its subscription's key list.
    waiters: HashMap<BufKey, Vec<(usize, Arc<Waiter>)>>,
}

/// A concurrent key -> buffer table with blocking waits.
pub struct BufferRegistry {
    shards: Vec<Mutex<Shard>>,
}

impl Default for BufferRegistry {
    fn default() -> Self {
        BufferRegistry {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
        }
    }
}

impl BufferRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a buffer and hand it to every waiter parked
    /// on this key. Waiters on other keys are not woken.
    pub fn register(&self, key: BufKey, owner: ClientId, data: Bytes) {
        let handle = BufferHandle { owner, data };
        let waiters = {
            let mut shard = self.shards[shard_of(&key)].lock().unwrap();
            shard.table.insert(key, handle.clone());
            shard.waiters.remove(&key)
        };
        if let Some(waiters) = waiters {
            for (index, waiter) in waiters {
                waiter.deliver(index, handle.clone());
            }
        }
    }

    /// Non-blocking lookup.
    pub fn get(&self, key: &BufKey) -> Option<BufferHandle> {
        self.shards[shard_of(key)]
            .lock()
            .unwrap()
            .table
            .get(key)
            .cloned()
    }

    /// Subscribe to a set of keys: already-registered keys are ready
    /// immediately, the rest are delivered as producers register them.
    /// Dropping the subscription unparks its remaining waiters.
    pub fn subscribe(&self, keys: &[BufKey]) -> Subscription<'_> {
        let waiter = Arc::new(Waiter {
            ready: Mutex::new(VecDeque::new()),
            arrived: Condvar::new(),
        });
        for (index, key) in keys.iter().enumerate() {
            let mut shard = self.shards[shard_of(key)].lock().unwrap();
            if let Some(handle) = shard.table.get(key) {
                let handle = handle.clone();
                drop(shard);
                waiter.deliver(index, handle);
            } else {
                shard
                    .waiters
                    .entry(*key)
                    .or_default()
                    .push((index, Arc::clone(&waiter)));
            }
        }
        Subscription {
            registry: self,
            waiter,
            keys: keys.to_vec(),
            delivered: 0,
        }
    }

    /// Block until `key` is registered, up to `timeout`. `None` on timeout.
    pub fn wait_for(&self, key: &BufKey, timeout: Duration) -> Option<BufferHandle> {
        let mut sub = self.subscribe(std::slice::from_ref(key));
        sub.next_before(Instant::now() + timeout)
            .map(|(_, handle, _)| handle)
    }

    /// Remove a buffer (e.g. when a version is garbage collected).
    /// Waiters parked on the key keep waiting for a re-registration.
    pub fn unregister(&self, key: &BufKey) -> Option<BufferHandle> {
        self.shards[shard_of(key)].lock().unwrap().table.remove(key)
    }

    /// Remove every buffer whose version is strictly below `min_version`
    /// for the given name hash. Returns `(owner, bytes)` of each removed
    /// buffer so callers can release per-node staging accounting.
    pub fn evict_below(&self, name: u64, min_version: u64) -> Vec<(ClientId, u64)> {
        let mut removed = Vec::new();
        for shard in &self.shards {
            shard.lock().unwrap().table.retain(|k, h| {
                let keep = k.name != name || k.version >= min_version;
                if !keep {
                    removed.push((h.owner, h.data.len() as u64));
                }
                keep
            });
        }
        removed
    }

    /// Number of registered buffers whose owner satisfies `owned`.
    ///
    /// A distributed execution client counts only buffers owned by the
    /// clients it hosts — pulled copies of remote buffers are excluded —
    /// so the per-process counts sum to the single-process
    /// [`BufferRegistry::len`].
    pub fn count_owned(&self, owned: impl Fn(ClientId) -> bool) -> u64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap()
                    .table
                    .values()
                    .filter(|h| owned(h.owner))
                    .count() as u64
            })
            .sum()
    }

    /// Number of registered buffers.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().table.len())
            .sum()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total waiter records currently parked (diagnostics / tests).
    pub fn waiter_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap()
                    .waiters
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }
}

/// A wait-for-any handle over a set of subscribed keys: yields
/// `(key_index, handle, arrival_instant)` in arrival order.
pub struct Subscription<'a> {
    registry: &'a BufferRegistry,
    waiter: Arc<Waiter>,
    keys: Vec<BufKey>,
    delivered: usize,
}

impl Subscription<'_> {
    /// Next arrival, blocking until `deadline`. `None` once every
    /// subscribed key was delivered or the deadline passes.
    pub fn next_before(&mut self, deadline: Instant) -> Option<(usize, BufferHandle, Instant)> {
        if self.delivered == self.keys.len() {
            return None;
        }
        let mut ready = self.waiter.ready.lock().unwrap();
        loop {
            if let Some(item) = ready.pop_front() {
                self.delivered += 1;
                return Some(item);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, res) = self
                .waiter
                .arrived
                .wait_timeout(ready, deadline - now)
                .unwrap();
            ready = guard;
            if res.timed_out() {
                return ready.pop_front().inspect(|_| self.delivered += 1);
            }
        }
    }
}

impl Drop for Subscription<'_> {
    fn drop(&mut self) {
        if self.delivered == self.keys.len() {
            return;
        }
        for key in &self.keys {
            let mut shard = self.registry.shards[shard_of(key)].lock().unwrap();
            if let Some(list) = shard.waiters.get_mut(key) {
                list.retain(|(_, w)| !Arc::ptr_eq(w, &self.waiter));
                if list.is_empty() {
                    shard.waiters.remove(key);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn key(n: u64) -> BufKey {
        BufKey {
            name: n,
            version: 0,
            piece: 0,
        }
    }

    #[test]
    fn register_and_get() {
        let r = BufferRegistry::new();
        r.register(key(1), 3, Bytes::from_static(b"abc"));
        let h = r.get(&key(1)).unwrap();
        assert_eq!(h.owner, 3);
        assert_eq!(&h.data[..], b"abc");
        assert!(r.get(&key(2)).is_none());
    }

    #[test]
    fn wait_for_already_present() {
        let r = BufferRegistry::new();
        r.register(key(5), 0, Bytes::new());
        assert!(r.wait_for(&key(5), Duration::from_millis(1)).is_some());
    }

    #[test]
    fn wait_for_timeout() {
        let r = BufferRegistry::new();
        assert!(r.wait_for(&key(9), Duration::from_millis(20)).is_none());
        // The timed-out waiter deregistered itself.
        assert_eq!(r.waiter_count(), 0);
    }

    #[test]
    fn wait_for_rendezvous_across_threads() {
        let r = Arc::new(BufferRegistry::new());
        let r2 = Arc::clone(&r);
        let waiter = std::thread::spawn(move || {
            r2.wait_for(&key(7), Duration::from_secs(5))
                .expect("producer must arrive")
        });
        std::thread::sleep(Duration::from_millis(20));
        r.register(key(7), 11, Bytes::from_static(b"data"));
        let h = waiter.join().unwrap();
        assert_eq!(h.owner, 11);
    }

    #[test]
    fn unregister_removes() {
        let r = BufferRegistry::new();
        r.register(key(1), 0, Bytes::new());
        assert!(r.unregister(&key(1)).is_some());
        assert!(r.get(&key(1)).is_none());
        assert!(r.unregister(&key(1)).is_none());
    }

    #[test]
    fn evict_below_respects_name_and_version() {
        let r = BufferRegistry::new();
        for v in 0..5u64 {
            r.register(
                BufKey {
                    name: 1,
                    version: v,
                    piece: 0,
                },
                v as u32,
                Bytes::from(vec![0u8; 4]),
            );
            r.register(
                BufKey {
                    name: 2,
                    version: v,
                    piece: 0,
                },
                0,
                Bytes::new(),
            );
        }
        let removed = r.evict_below(1, 3);
        assert_eq!(removed.len(), 3);
        // Each removed entry reports its owner and size.
        assert!(removed.iter().all(|&(_, b)| b == 4));
        let owners: std::collections::HashSet<u32> = removed.iter().map(|&(o, _)| o).collect();
        assert_eq!(owners, [0u32, 1, 2].into_iter().collect());
        assert_eq!(r.len(), 7);
        assert!(r
            .get(&BufKey {
                name: 1,
                version: 3,
                piece: 0
            })
            .is_some());
        assert!(r
            .get(&BufKey {
                name: 2,
                version: 0,
                piece: 0
            })
            .is_some());
    }

    #[test]
    fn replace_same_key() {
        let r = BufferRegistry::new();
        r.register(key(1), 0, Bytes::from_static(b"a"));
        r.register(key(1), 1, Bytes::from_static(b"b"));
        let h = r.get(&key(1)).unwrap();
        assert_eq!(h.owner, 1);
        assert_eq!(&h.data[..], b"b");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn subscribe_yields_present_keys_immediately() {
        let r = BufferRegistry::new();
        r.register(key(2), 7, Bytes::from_static(b"b"));
        r.register(key(3), 8, Bytes::from_static(b"c"));
        let mut sub = r.subscribe(&[key(2), key(3)]);
        let deadline = Instant::now() + Duration::from_millis(50);
        let mut seen = Vec::new();
        while let Some((i, h, _)) = sub.next_before(deadline) {
            seen.push((i, h.owner));
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![(0, 7), (1, 8)]);
    }

    #[test]
    fn subscribe_delivers_in_arrival_order() {
        let r = Arc::new(BufferRegistry::new());
        let r2 = Arc::clone(&r);
        let producer = std::thread::spawn(move || {
            // Register in reverse key order; the consumer must see this
            // arrival order, not the subscription order.
            std::thread::sleep(Duration::from_millis(10));
            r2.register(key(12), 2, Bytes::from_static(b"2"));
            std::thread::sleep(Duration::from_millis(10));
            r2.register(key(11), 1, Bytes::from_static(b"1"));
            std::thread::sleep(Duration::from_millis(10));
            r2.register(key(10), 0, Bytes::from_static(b"0"));
        });
        let mut sub = r.subscribe(&[key(10), key(11), key(12)]);
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut order = Vec::new();
        while let Some((i, _, _)) = sub.next_before(deadline) {
            order.push(i);
        }
        producer.join().unwrap();
        assert_eq!(order, vec![2, 1, 0]);
        assert_eq!(r.waiter_count(), 0);
    }

    #[test]
    fn register_wakes_only_matching_waiters() {
        let r = Arc::new(BufferRegistry::new());
        let r2 = Arc::clone(&r);
        // A waiter on an unrelated key must stay parked across another
        // key's registration.
        let bystander =
            std::thread::spawn(move || r2.wait_for(&key(99), Duration::from_millis(120)).is_none());
        std::thread::sleep(Duration::from_millis(20));
        r.register(key(1), 0, Bytes::from_static(b"x"));
        assert!(bystander.join().unwrap());
        assert_eq!(r.waiter_count(), 0);
    }

    #[test]
    fn dropped_subscription_deregisters_waiters() {
        let r = BufferRegistry::new();
        {
            let _sub = r.subscribe(&[key(1), key(2), key(3)]);
            assert_eq!(r.waiter_count(), 3);
        }
        assert_eq!(r.waiter_count(), 0);
        // A late register finds nobody to wake and must not panic.
        r.register(key(1), 0, Bytes::new());
    }

    #[test]
    fn many_waiters_same_key_all_served() {
        let r = Arc::new(BufferRegistry::new());
        let mut waiters = Vec::new();
        for _ in 0..8 {
            let r2 = Arc::clone(&r);
            waiters.push(std::thread::spawn(move || {
                r2.wait_for(&key(42), Duration::from_secs(5))
                    .expect("must be served")
                    .owner
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        r.register(key(42), 6, Bytes::from_static(b"shared"));
        for w in waiters {
            assert_eq!(w.join().unwrap(), 6);
        }
        assert_eq!(r.waiter_count(), 0);
    }
}
