//! Pluggable message/buffer transport between address spaces.
//!
//! The paper's HybridDART selects a transport per peer pair: shared
//! memory when two clients share a node, the network fabric otherwise
//! (§III.A). In a single-process run every client lives in one address
//! space, so "shared memory" is literal and "network" is only a ledger
//! classification — that is [`LocalTransport`]. A distributed run places
//! each simulated node in its own OS process; the wire transport
//! (`insitu-net`'s `NetLink`) implements this trait so that
//! [`crate::DartRuntime`] transparently forwards messages to clients it
//! does not host and fetches remotely-owned buffers over TCP.
//!
//! The split mirrors the runtime's two data paths:
//! - **mailboxes** ([`Transport::forward`]): tagged two-sided messages
//!   (task dispatch, halo exchange);
//! - **buffer registry** ([`Transport::publish`] /
//!   [`Transport::request`]): one-sided receiver-driven pulls.
//!
//! Accounting stays with the runtime: the sender's process accounts a
//! forwarded message *before* handing it to the transport, and the
//! remote side injects it with [`crate::DartRuntime::deliver`], which
//! accounts nothing — so every logical transfer lands in exactly one
//! process's ledger and merged distributed ledgers reproduce the
//! single-process ledger byte for byte.

use crate::mailbox::Msg;
use crate::registry::BufKey;
use insitu_fabric::ClientId;

/// Where a client's mailbox and buffers live, and how to reach the ones
/// that live elsewhere.
///
/// Implementations must be deterministic in `hosts` (it partitions the
/// client space across processes) and are free to deliver forwarded
/// messages and requested buffers asynchronously: the runtime's blocking
/// receive/pull paths do the waiting.
pub trait Transport: Send + Sync {
    /// Whether `client`'s mailbox and registry entries are hosted by this
    /// process. Sends to hosted clients short-circuit to the in-process
    /// path.
    fn hosts(&self, client: ClientId) -> bool;

    /// Forward an already-accounted message to a client hosted by another
    /// process.
    fn forward(&self, to: ClientId, msg: &Msg);

    /// Announce a buffer registered in this process to the rest of the
    /// workflow (a put-notify on the wire; a no-op in-process).
    fn publish(&self, key: &BufKey, owner: ClientId, bytes: u64);

    /// Ask the owning process to send a buffer this process does not
    /// host. Fire-and-forget: the caller blocks on the registry and the
    /// reply (if any) is registered by the transport's reader.
    fn request(&self, key: &BufKey);

    /// Pre-establish a direct connection to the process hosting
    /// `client`, if this transport supports peer-to-peer links. Returns
    /// whether a direct path exists afterwards. The default (and any
    /// hub-only transport) reports `false`; callers use this as a
    /// warm-up hint before issuing a burst of pulls, never for
    /// correctness.
    fn dial_peer(&self, _client: ClientId) -> bool {
        false
    }
}

/// The single-address-space transport: every client is local, so nothing
/// is ever forwarded, published or requested.
#[derive(Clone, Copy, Debug, Default)]
pub struct LocalTransport;

impl Transport for LocalTransport {
    fn hosts(&self, _client: ClientId) -> bool {
        true
    }

    fn forward(&self, _to: ClientId, _msg: &Msg) {
        unreachable!("local transport hosts every client");
    }

    fn publish(&self, _key: &BufKey, _owner: ClientId, _bytes: u64) {}

    fn request(&self, _key: &BufKey) {}
}
