//! Standing geometric queries — the Linda-flavored push plane over CoDS.
//!
//! A *subscription* is a persistent `get`: `(var, region, every_k)`
//! registered once, after which every matching `put` — same variable,
//! `version % every_k == 0`, bounding boxes overlapping — pushes the
//! overlapping fragment to the subscriber without any consumer-side
//! poll. The [`SubRegistry`] here mirrors the sharded per-key design of
//! the HybridDART `BufferRegistry`: entries are hashed into independently
//! locked shards by variable key, so producers of unrelated variables
//! never contend, and a `put` of an unsubscribed variable costs one
//! uncontended shard probe.
//!
//! Delivery runs through a bounded per-subscriber [`SubSink`]: producers
//! [`SubSink::offer`] fragments, the sink assembles them into the
//! subscribed region (the same strided `copy_region` path a `get` uses,
//! so pushed bytes are byte-identical to pulled ones), and completed
//! versions queue for the consumer. The queue is bounded with a
//! drop-oldest policy: a slow consumer loses the *oldest* ready version
//! and the loss is observable (`lagged`), never silent backpressure on
//! the producer — the trade the in-situ monitoring workload wants.

use insitu_domain::{layout, BoundingBox};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Stable identifier of a registered subscription.
pub type SubId = u64;

/// Number of independently locked registry shards (matches the
/// `BufferRegistry` layout).
const SHARD_COUNT: usize = 16;

/// Default bound on ready-but-unconsumed versions per subscriber.
pub const DEFAULT_QUEUE_CAP: usize = 8;

/// FNV-1a over a variable key; the same spreading function the buffer
/// registry uses, so the two registries shard compatibly.
fn shard_of(vid: u64) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in vid.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % SHARD_COUNT
}

/// What a subscriber asks for: a persistent geometric query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubSpec {
    /// Variable key (already epoch-salted by the space).
    pub vid: u64,
    /// The watched region.
    pub region: BoundingBox,
    /// Push every `every_k`-th version (1 = every version). Must be ≥ 1.
    pub every_k: u64,
    /// Execution client that consumes the pushes.
    pub subscriber: u32,
}

impl SubSpec {
    /// Deterministic id: FNV-1a over the spec fields, so every replica
    /// of a distributed run derives the same id for the same spec and
    /// remote registration is idempotent.
    pub fn id(&self) -> SubId {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |w: u64| {
            for byte in w.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.vid);
        eat(self.every_k);
        eat(self.subscriber as u64);
        eat(self.region.ndim() as u64);
        for d in 0..self.region.ndim() {
            eat(self.region.lb(d));
            eat(self.region.ub(d));
        }
        h
    }
}

/// One registered standing query. The spec is replicated identically in
/// every process of a distributed run; the sink is attached only in the
/// process that hosts the subscriber, which is how a producer-side
/// `matching` hit decides between local delivery and a wire push.
pub struct SubEntry {
    /// Deterministic id ([`SubSpec::id`]).
    pub id: SubId,
    /// The query.
    pub spec: SubSpec,
    sink: Mutex<Option<Arc<SubSink>>>,
    /// Fragments pushed to this subscription (producer side).
    pub pushes: AtomicU64,
}

impl SubEntry {
    /// Does a put of `(vid, version)` feed this subscription? The
    /// geometric half of the match — fragment overlap — is the caller's
    /// `spec.region.intersect(piece)`.
    pub fn matches(&self, vid: u64, version: u64) -> bool {
        self.spec.vid == vid && version % self.spec.every_k == 0
    }

    /// The local delivery sink, when this process hosts the subscriber.
    pub fn sink(&self) -> Option<Arc<SubSink>> {
        self.sink.lock().unwrap().clone()
    }

    /// Attach (or fetch) the local delivery sink. Idempotent: a second
    /// attach returns the first sink, so re-registration cannot orphan
    /// buffered versions.
    pub fn attach_sink(&self, queue_cap: usize) -> Arc<SubSink> {
        let mut slot = self.sink.lock().unwrap();
        if let Some(s) = slot.as_ref() {
            return Arc::clone(s);
        }
        let sink = Arc::new(SubSink::new(self.spec.region, queue_cap));
        *slot = Some(Arc::clone(&sink));
        sink
    }
}

#[derive(Default)]
struct RegistryShard {
    entries: Vec<Arc<SubEntry>>,
}

/// The sharded subscription table. Registration order within a shard is
/// preserved, so `matching` returns entries in a deterministic order —
/// fault-site replay and ledger byte-identity depend on it.
#[derive(Default)]
pub struct SubRegistry {
    shards: [Mutex<RegistryShard>; SHARD_COUNT],
    active: AtomicU64,
}

impl SubRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a standing query; idempotent on the deterministic id
    /// (re-registering the same spec returns the existing entry).
    ///
    /// # Panics
    /// Panics on `every_k == 0` — callers validate user input first.
    pub fn register(&self, spec: SubSpec) -> Arc<SubEntry> {
        assert!(spec.every_k >= 1, "every_k must be at least 1");
        let id = spec.id();
        let mut shard = self.shards[shard_of(spec.vid)].lock().unwrap();
        if let Some(e) = shard.entries.iter().find(|e| e.id == id) {
            return Arc::clone(e);
        }
        let entry = Arc::new(SubEntry {
            id,
            spec,
            sink: Mutex::new(None),
            pushes: AtomicU64::new(0),
        });
        shard.entries.push(Arc::clone(&entry));
        self.active.fetch_add(1, Ordering::Relaxed);
        entry
    }

    /// Cancel a subscription by id. Closes its sink (waking any blocked
    /// reader with `Closed`) and removes the entry; `false` if unknown.
    pub fn cancel(&self, id: SubId) -> bool {
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap();
            if let Some(pos) = shard.entries.iter().position(|e| e.id == id) {
                let entry = shard.entries.remove(pos);
                if let Some(sink) = entry.sink() {
                    sink.close();
                }
                self.active.fetch_sub(1, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Every subscription a put of `(vid, version)` must consider, in
    /// registration order. Geometric overlap is still the caller's check
    /// (it has the piece box; the entry has the query box).
    pub fn matching(&self, vid: u64, version: u64) -> Vec<Arc<SubEntry>> {
        let shard = self.shards[shard_of(vid)].lock().unwrap();
        shard
            .entries
            .iter()
            .filter(|e| e.matches(vid, version))
            .cloned()
            .collect()
    }

    /// Look up an entry by id (any shard).
    pub fn get(&self, id: SubId) -> Option<Arc<SubEntry>> {
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            if let Some(e) = shard.entries.iter().find(|e| e.id == id) {
                return Some(Arc::clone(e));
            }
        }
        None
    }

    /// Currently registered subscriptions.
    pub fn active(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }
}

/// A version still being assembled from producer-piece fragments.
struct Partial {
    data: Vec<f64>,
    filled: u128,
}

struct SinkState {
    /// Versions with some but not all cells delivered.
    pending: BTreeMap<u64, Partial>,
    /// Fully assembled versions awaiting the consumer, oldest first.
    ready: BTreeMap<u64, Vec<f64>>,
    /// Highest version evicted by the drop-oldest policy (readers treat
    /// any request at or below this as lost).
    evicted_max: Option<u64>,
    /// Versions lost to the bounded queue.
    lagged: u64,
    /// Fully assembled versions ever produced (delivered or dropped).
    completed: u64,
    closed: bool,
}

/// Result of offering one fragment to a sink.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OfferOutcome {
    /// Fragment absorbed; the version is still incomplete.
    Absorbed,
    /// This fragment completed the version; it is now ready (possibly
    /// evicting the oldest ready version, reported separately).
    Completed,
    /// The sink is closed or the version was already delivered/evicted;
    /// the fragment was discarded.
    Stale,
}

/// What a blocking read of a specific version produced.
#[derive(Clone, Debug, PartialEq)]
pub enum TakeResult {
    /// The assembled region data for the requested version.
    Data(Vec<f64>),
    /// The version was evicted by the drop-oldest policy before the
    /// reader arrived — resync (re-`get`) to heal the gap.
    Lagged,
    /// Deadline passed with the version incomplete (a dropped push
    /// upstream, under chaos) — resync to heal the gap.
    TimedOut,
    /// The subscription was cancelled.
    Closed,
}

/// The consumer half of a subscription: producers offer fragments,
/// the consumer blocks on assembled versions.
pub struct SubSink {
    region: BoundingBox,
    queue_cap: usize,
    state: Mutex<SinkState>,
    arrived: Condvar,
    /// Versions lost to the bounded queue (mirror of the state counter,
    /// readable without the lock).
    lagged_count: AtomicU64,
}

impl SubSink {
    fn new(region: BoundingBox, queue_cap: usize) -> Self {
        SubSink {
            region,
            queue_cap: queue_cap.max(1),
            state: Mutex::new(SinkState {
                pending: BTreeMap::new(),
                ready: BTreeMap::new(),
                evicted_max: None,
                lagged: 0,
                completed: 0,
                closed: false,
            }),
            arrived: Condvar::new(),
            lagged_count: AtomicU64::new(0),
        }
    }

    /// The subscribed region this sink assembles into.
    pub fn region(&self) -> &BoundingBox {
        &self.region
    }

    /// Offer the fragment `frag_box` (the producer-piece ∩ query overlap)
    /// of `version`. Copies the cells into the region-shaped assembly;
    /// when every cell of the region has landed the version moves to the
    /// ready queue. Fragments never overlap (producer pieces tile the
    /// domain disjointly), so completeness is exactly cell-count coverage.
    pub fn offer(&self, version: u64, frag_box: &BoundingBox, frag: &[f64]) -> OfferOutcome {
        let mut state = self.state.lock().unwrap();
        if state.closed
            || state.ready.contains_key(&version)
            || state.evicted_max.is_some_and(|m| version <= m)
        {
            return OfferOutcome::Stale;
        }
        let total = self.region.num_cells();
        let partial = state.pending.entry(version).or_insert_with(|| Partial {
            data: vec![0.0; total as usize],
            filled: 0,
        });
        layout::copy_region(frag, frag_box, &mut partial.data, &self.region, frag_box);
        partial.filled += frag_box.num_cells();
        if partial.filled < total {
            return OfferOutcome::Absorbed;
        }
        let done = state.pending.remove(&version).unwrap();
        state.ready.insert(version, done.data);
        state.completed += 1;
        while state.ready.len() > self.queue_cap {
            let (&oldest, _) = state.ready.iter().next().unwrap();
            state.ready.remove(&oldest);
            state.evicted_max = Some(state.evicted_max.map_or(oldest, |m| m.max(oldest)));
            state.lagged += 1;
            self.lagged_count.fetch_add(1, Ordering::Relaxed);
        }
        drop(state);
        self.arrived.notify_all();
        OfferOutcome::Completed
    }

    /// Block until `version` is fully assembled (or lost, or the deadline
    /// passes). Out-of-order completion is fine: a reader asking for
    /// version 2 is not confused by versions 4 and 6 arriving first.
    pub fn take_version(&self, version: u64, deadline: Instant) -> TakeResult {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(data) = state.ready.remove(&version) {
                return TakeResult::Data(data);
            }
            if state.evicted_max.is_some_and(|m| version <= m) {
                return TakeResult::Lagged;
            }
            if state.closed {
                return TakeResult::Closed;
            }
            let now = Instant::now();
            if now >= deadline {
                return TakeResult::TimedOut;
            }
            let (guard, res) = self.arrived.wait_timeout(state, deadline - now).unwrap();
            state = guard;
            if res.timed_out() && !state.ready.contains_key(&version) {
                return if state.evicted_max.is_some_and(|m| version <= m) {
                    TakeResult::Lagged
                } else {
                    TakeResult::TimedOut
                };
            }
        }
    }

    /// Versions lost to the bounded queue so far.
    pub fn lagged(&self) -> u64 {
        self.lagged_count.load(Ordering::Relaxed)
    }

    /// Fully assembled versions so far (delivered or later dropped).
    pub fn completed(&self) -> u64 {
        self.state.lock().unwrap().completed
    }

    /// Ready-but-unconsumed versions.
    pub fn ready_len(&self) -> usize {
        self.state.lock().unwrap().ready.len()
    }

    /// Close the sink: every blocked and future read returns `Closed`,
    /// every future offer is `Stale`. Idempotent.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.arrived.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn bbox(lb: &[u64], ub: &[u64]) -> BoundingBox {
        BoundingBox::new(lb, ub)
    }

    fn spec(vid: u64, every_k: u64, subscriber: u32) -> SubSpec {
        SubSpec {
            vid,
            region: bbox(&[0, 0], &[3, 3]),
            every_k,
            subscriber,
        }
    }

    #[test]
    fn ids_are_deterministic_and_spec_sensitive() {
        assert_eq!(spec(7, 2, 1).id(), spec(7, 2, 1).id());
        assert_ne!(spec(7, 2, 1).id(), spec(7, 3, 1).id());
        assert_ne!(spec(7, 2, 1).id(), spec(8, 2, 1).id());
        assert_ne!(spec(7, 2, 1).id(), spec(7, 2, 2).id());
    }

    #[test]
    fn register_is_idempotent_and_cancel_removes() {
        let reg = SubRegistry::new();
        let a = reg.register(spec(7, 2, 1));
        let b = reg.register(spec(7, 2, 1));
        assert_eq!(a.id, b.id);
        assert_eq!(reg.active(), 1);
        assert!(reg.cancel(a.id));
        assert!(!reg.cancel(a.id));
        assert_eq!(reg.active(), 0);
        assert!(reg.matching(7, 0).is_empty());
    }

    #[test]
    fn matching_respects_stride_and_var() {
        let reg = SubRegistry::new();
        reg.register(spec(7, 3, 1));
        assert_eq!(reg.matching(7, 0).len(), 1);
        assert_eq!(reg.matching(7, 1).len(), 0);
        assert_eq!(reg.matching(7, 3).len(), 1);
        assert_eq!(reg.matching(8, 0).len(), 0);
    }

    #[test]
    fn sink_assembles_fragments_in_any_order() {
        let region = bbox(&[0, 0], &[3, 3]);
        let sink = SubSink::new(region, 4);
        let left = bbox(&[0, 0], &[3, 1]);
        let right = bbox(&[0, 2], &[3, 3]);
        let fill = |b: &BoundingBox| layout::fill_with(b, |p| (10 * p[0] + p[1]) as f64);
        assert_eq!(sink.offer(0, &right, &fill(&right)), OfferOutcome::Absorbed);
        assert_eq!(sink.offer(0, &left, &fill(&left)), OfferOutcome::Completed);
        let got = match sink.take_version(0, Instant::now()) {
            TakeResult::Data(d) => d,
            other => panic!("expected data, got {other:?}"),
        };
        assert_eq!(got, fill(&region));
    }

    #[test]
    fn bounded_queue_drops_oldest_and_counts_lag() {
        let region = bbox(&[0], &[1]);
        let sink = SubSink::new(region, 2);
        for v in 0..4 {
            assert_eq!(sink.offer(v, &region, &[1.0, 2.0]), OfferOutcome::Completed);
        }
        // Capacity 2: versions 0 and 1 were evicted oldest-first.
        assert_eq!(sink.lagged(), 2);
        assert_eq!(sink.take_version(0, Instant::now()), TakeResult::Lagged);
        assert_eq!(sink.take_version(1, Instant::now()), TakeResult::Lagged);
        assert!(matches!(
            sink.take_version(2, Instant::now()),
            TakeResult::Data(_)
        ));
        assert!(matches!(
            sink.take_version(3, Instant::now()),
            TakeResult::Data(_)
        ));
    }

    #[test]
    fn out_of_order_versions_do_not_confuse_a_waiting_reader() {
        let region = bbox(&[0], &[0]);
        let sink = Arc::new(SubSink::new(region, 8));
        let s = Arc::clone(&sink);
        let t =
            std::thread::spawn(move || s.take_version(2, Instant::now() + Duration::from_secs(5)));
        sink.offer(4, &region, &[4.0]);
        sink.offer(6, &region, &[6.0]);
        sink.offer(2, &region, &[2.0]);
        assert_eq!(t.join().unwrap(), TakeResult::Data(vec![2.0]));
        // The later versions are still there, in order.
        assert!(matches!(
            sink.take_version(4, Instant::now()),
            TakeResult::Data(_)
        ));
    }

    #[test]
    fn take_times_out_on_incomplete_version() {
        let region = bbox(&[0, 0], &[3, 3]);
        let sink = SubSink::new(region, 4);
        let left = bbox(&[0, 0], &[3, 1]);
        sink.offer(0, &left, &layout::fill_with(&left, |_| 1.0));
        let t0 = Instant::now();
        assert_eq!(
            sink.take_version(0, t0 + Duration::from_millis(30)),
            TakeResult::TimedOut
        );
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn close_wakes_blocked_readers() {
        let region = bbox(&[0], &[0]);
        let sink = Arc::new(SubSink::new(region, 8));
        let s = Arc::clone(&sink);
        let t =
            std::thread::spawn(move || s.take_version(0, Instant::now() + Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(10));
        sink.close();
        assert_eq!(t.join().unwrap(), TakeResult::Closed);
        assert_eq!(sink.offer(0, &region, &[1.0]), OfferOutcome::Stale);
    }

    #[test]
    fn cancel_closes_attached_sink() {
        let reg = SubRegistry::new();
        let entry = reg.register(spec(7, 1, 1));
        let sink = entry.attach_sink(4);
        assert!(reg.cancel(entry.id));
        assert_eq!(sink.take_version(0, Instant::now()), TakeResult::Closed);
    }
}
