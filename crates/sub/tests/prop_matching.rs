//! Property test: subscription matching — bbox overlap × `every_k`
//! stride, with variable keys scattered across registry shards — fires
//! exactly the (subscription, version, piece) triples a brute-force
//! oracle enumerates.

use insitu_domain::BoundingBox;
use insitu_sub::{SubRegistry, SubSpec};
use insitu_util::{check::forall, SplitMix64};

fn arb_box(rng: &mut SplitMix64, domain: u64) -> BoundingBox {
    let mut lb = [0u64; 3];
    let mut ub = [0u64; 3];
    for d in 0..3 {
        let a = rng.range_u64(0, domain);
        let b = rng.range_u64(0, domain);
        lb[d] = a.min(b);
        ub[d] = a.max(b);
    }
    BoundingBox::new(&lb, &ub)
}

#[test]
fn matching_agrees_with_brute_force_oracle() {
    forall(200, |rng| {
        let domain = 8;
        let nsubs = rng.range_usize(1, 13);
        let versions = rng.range_u64(1, 11);
        // Variable keys drawn from a large space so subscriptions land in
        // different shards; a few collide on purpose (same small id).
        let mut specs = Vec::new();
        for i in 0..nsubs {
            let vid = if rng.bool() {
                rng.next_u64()
            } else {
                rng.range_u64(0, 4)
            };
            specs.push(SubSpec {
                vid,
                region: arb_box(rng, domain),
                every_k: rng.range_u64(1, 6),
                subscriber: i as u32,
            });
        }
        let reg = SubRegistry::new();
        for s in &specs {
            reg.register(s.clone());
        }

        // A handful of producer pieces over a handful of variables.
        let nvars = rng.range_usize(1, 5);
        let vars: Vec<u64> = (0..nvars)
            .map(|_| {
                if rng.bool() {
                    specs[rng.range_usize(0, specs.len())].vid
                } else {
                    rng.next_u64()
                }
            })
            .collect();
        for &vid in &vars {
            for version in 0..versions {
                let piece = arb_box(rng, domain);
                // What the registry path fires: stride+var filter in
                // `matching`, geometry at the push site.
                let mut fired: Vec<(u64, u32)> = reg
                    .matching(vid, version)
                    .iter()
                    .filter(|e| e.spec.region.intersect(&piece).is_some())
                    .map(|e| (e.id, e.spec.subscriber))
                    .collect();
                fired.sort_unstable();
                // The oracle: enumerate every spec from first principles.
                let mut expect: Vec<(u64, u32)> = specs
                    .iter()
                    .filter(|s| {
                        s.vid == vid
                            && version % s.every_k == 0
                            && s.region.intersect(&piece).is_some()
                    })
                    .map(|s| (s.id(), s.subscriber))
                    .collect();
                expect.sort_unstable();
                expect.dedup();
                assert_eq!(fired, expect, "vid {vid} version {version} piece {piece:?}");
            }
        }
    });
}
