//! The RPC client: one connection, blocking request/reply calls.

use insitu_fabric::FaultInjector;
use insitu_net::{
    connect_with_retry, recv_frame, send_frame, Frame, NetMetrics, RunState, RunSummary,
};
use insitu_telemetry::Recorder;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A terminal run's artifacts, as fetched over `RunResult`.
#[derive(Clone, Debug)]
pub struct RunArtifacts {
    /// The run's terminal (or, mid-flight, current) state.
    pub state: RunState,
    /// Merged transfer ledger, rendered as JSON (empty until terminal).
    pub ledger_json: String,
    /// Metrics registry snapshot, rendered as JSON.
    pub metrics_json: String,
    /// Critical-path profile, rendered as JSON.
    pub profile_json: String,
    /// Task errors, sorted.
    pub errors: Vec<String>,
}

/// One connection to a workflow service. Every call sends a single
/// request frame and blocks for the single reply frame; an `RpcErr`
/// reply becomes an `Err` with the service's message.
pub struct RpcClient {
    stream: TcpStream,
    injector: FaultInjector,
    metrics: NetMetrics,
}

impl RpcClient {
    /// Connect to the service at `addr`, retrying until `timeout`.
    pub fn connect(addr: &str, timeout: Duration) -> Result<RpcClient, String> {
        let metrics = NetMetrics::new(&Recorder::disabled());
        let injector = FaultInjector::none();
        let stream =
            connect_with_retry(addr, 0, timeout, &injector, &metrics).map_err(|e| e.to_string())?;
        stream
            .set_nodelay(true)
            .map_err(|e| format!("socket setup: {e}"))?;
        Ok(RpcClient {
            stream,
            injector,
            metrics,
        })
    }

    fn call(&mut self, request: &Frame) -> Result<Frame, String> {
        send_frame(&mut self.stream, request, &self.injector, &self.metrics)
            .map_err(|e| format!("sending request: {e}"))?;
        match recv_frame(&mut self.stream, &self.injector, &self.metrics) {
            Ok(Frame::RpcErr { message }) => Err(message),
            Ok(reply) => Ok(reply),
            Err(e) => Err(format!("awaiting reply: {e}")),
        }
    }

    /// Submit a workflow at the default (lowest) priority; returns
    /// `(run id, runs queued ahead)`.
    pub fn submit(
        &mut self,
        name: &str,
        dag: &str,
        config: &str,
        strategy: &str,
        get_timeout: Duration,
    ) -> Result<(u64, u32), String> {
        self.submit_with_priority(name, dag, config, strategy, get_timeout, 0)
    }

    /// Submit a workflow with an admission priority: a higher value is
    /// queued ahead of every lower one, first-come-first-served within
    /// a level.
    pub fn submit_with_priority(
        &mut self,
        name: &str,
        dag: &str,
        config: &str,
        strategy: &str,
        get_timeout: Duration,
        priority: u32,
    ) -> Result<(u64, u32), String> {
        match self.call(&Frame::Submit {
            name: name.to_string(),
            dag: dag.to_string(),
            config: config.to_string(),
            strategy: strategy.to_string(),
            get_timeout_ms: get_timeout.as_millis() as u64,
            priority,
        })? {
            Frame::Submitted { run, queued_ahead } => Ok((run, queued_ahead)),
            other => Err(unexpected("Submitted", &other)),
        }
    }

    /// Cancel a queued or running run; returns its summary after the
    /// request took effect (a running run turns terminal only at its
    /// next wave boundary).
    pub fn cancel(&mut self, run: u64) -> Result<RunSummary, String> {
        match self.call(&Frame::Cancel { run })? {
            Frame::RunStatus(s) => Ok(s),
            other => Err(unexpected("RunStatus", &other)),
        }
    }

    /// Fetch one run's summary.
    pub fn status(&mut self, run: u64) -> Result<RunSummary, String> {
        match self.call(&Frame::Status { run })? {
            Frame::RunStatus(s) => Ok(s),
            other => Err(unexpected("RunStatus", &other)),
        }
    }

    /// Fetch every run's summary, in submission order.
    pub fn list(&mut self) -> Result<Vec<RunSummary>, String> {
        match self.call(&Frame::ListRuns)? {
            Frame::RunList { runs } => Ok(runs),
            other => Err(unexpected("RunList", &other)),
        }
    }

    /// Fetch a run's artifacts (JSON fields are empty until terminal).
    pub fn result(&mut self, run: u64) -> Result<RunArtifacts, String> {
        match self.call(&Frame::RunResult { run })? {
            Frame::RunReport {
                state,
                ledger_json,
                metrics_json,
                profile_json,
                errors,
                ..
            } => Ok(RunArtifacts {
                state,
                ledger_json,
                metrics_json,
                profile_json,
                errors,
            }),
            other => Err(unexpected("RunReport", &other)),
        }
    }

    /// Subscribe to a run's live progress stream: sends `Watch` and
    /// invokes `on_progress` with every `Progress` frame until the
    /// final one (`done = true`; with `once`, the first frame is the
    /// final one). Returns the number of frames received. The service
    /// floors `interval` at its watchdog cadence.
    pub fn watch(
        &mut self,
        run: u64,
        interval: Duration,
        once: bool,
        mut on_progress: impl FnMut(&Frame),
    ) -> Result<u64, String> {
        let request = Frame::Watch {
            run,
            interval_ms: interval.as_millis() as u64,
            once,
        };
        send_frame(&mut self.stream, &request, &self.injector, &self.metrics)
            .map_err(|e| format!("sending watch: {e}"))?;
        let mut frames = 0u64;
        loop {
            match recv_frame(&mut self.stream, &self.injector, &self.metrics) {
                Ok(Frame::RpcErr { message }) => return Err(message),
                Ok(frame @ Frame::Progress { .. }) => {
                    frames += 1;
                    let done = matches!(frame, Frame::Progress { done: true, .. });
                    on_progress(&frame);
                    if done {
                        return Ok(frames);
                    }
                }
                Ok(other) => return Err(unexpected("Progress", &other)),
                Err(e) => return Err(format!("awaiting progress: {e}")),
            }
        }
    }

    /// Poll `status` until the run reaches a terminal state; fails if
    /// it is still in flight after `timeout`.
    pub fn wait_terminal(&mut self, run: u64, timeout: Duration) -> Result<RunSummary, String> {
        let deadline = Instant::now() + timeout;
        loop {
            let s = self.status(run)?;
            if s.state.is_terminal() {
                return Ok(s);
            }
            if Instant::now() >= deadline {
                return Err(format!("run {run} still {} after {timeout:?}", s.state));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

fn unexpected(wanted: &str, got: &Frame) -> String {
    format!("expected {wanted}, got frame kind {}", got.kind())
}
