//! The service: RPC listener, admission queue, shared joiner pool and
//! per-run engines.

use insitu::{join, map_scenario, serve, JoinOptions, MappingStrategy, Scenario, ServeOptions};
use insitu_fabric::FaultInjector;
use insitu_net::{recv_frame, send_frame, Frame, NetMetrics, RunState, RunSummary};
use insitu_obs::{
    chrome_trace_merged, merge_traces, EventKind, FlightRecorder, LinkClass, ProcessTrace,
    ProfileReport,
};
use insitu_telemetry::Recorder;
use insitu_util::channel::{unbounded, Receiver, Sender};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Builds the scenario a (dag, config) text pair describes. The same
/// callback validates submissions and rebuilds replicas inside pool
/// workers, so every participant agrees on the workflow.
pub type ScenarioBuilder = Arc<dyn Fn(&str, &str) -> Result<Scenario, String> + Send + Sync>;

/// Service tuning knobs.
#[derive(Clone)]
pub struct SvcConfig {
    /// Maximum runs executing concurrently; the rest queue.
    pub max_runs: usize,
    /// Maximum queued (admitted-but-waiting) runs; `Submit` beyond this
    /// is refused with `RpcErr`.
    pub queue_depth: usize,
    /// Size of the shared joiner pool, in simulated nodes. A run
    /// needing more nodes than this is refused at submit time.
    pub pool_nodes: u32,
    /// How long a run's joiners may take to wire up its private hub.
    pub connect_timeout: Duration,
    /// Directory for per-run artifact files
    /// (`run-<id>.{ledger,metrics,profile}.json`); `None` keeps
    /// artifacts in memory only (still served over RPC).
    pub artifacts_dir: Option<PathBuf>,
    /// Print run lifecycle transitions to stdout (`insitu serve` does).
    pub verbose: bool,
    /// Run every run's data plane peer-to-peer: joiners exchange
    /// `PullData` over direct links and each run's private hub carries
    /// control traffic only. Off by default (star topology).
    pub p2p: bool,
    /// Allow same-host pulls to ride shared-memory rings (on by
    /// default). Off forces every run's `PullData` onto the socket —
    /// the wire-pinning chaos tests need that, and `serve --no-shm`
    /// exposes it.
    pub shm: bool,
    /// Fault sites consulted by every run's server and pooled joiners
    /// (inert by default); `insitu serve --faults` wires a chaos plan
    /// through here.
    pub injector: FaultInjector,
    /// Link-health watchdog tuning.
    pub watchdog: WatchdogConfig,
}

impl Default for SvcConfig {
    fn default() -> Self {
        SvcConfig {
            max_runs: 4,
            queue_depth: 32,
            pool_nodes: 8,
            connect_timeout: Duration::from_secs(30),
            artifacts_dir: None,
            verbose: false,
            p2p: false,
            shm: true,
            injector: FaultInjector::none(),
            watchdog: WatchdogConfig::default(),
        }
    }
}

/// Link-health watchdog tuning.
#[derive(Clone, Copy, Debug)]
pub struct WatchdogConfig {
    /// Sampling cadence; also the floor for `Watch` stream intervals.
    pub poll_ms: u64,
    /// A run with pulls in flight and no pull completions for this long
    /// earns a `link-stall` health event (once per stall episode) and a
    /// `net.link_stalls` count.
    pub stall_ms: u64,
    /// A link class whose pull-wait p99 exceeds this multiple of its
    /// run-local baseline (first sample with >= 8 pulls) earns a
    /// `link-degraded` health event (once per class).
    pub p99_factor: f64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            poll_ms: 200,
            stall_ms: 2000,
            p99_factor: 4.0,
        }
    }
}

/// A run's artifacts once it reached a terminal state.
#[derive(Clone, Default)]
struct Artifacts {
    ledger_json: String,
    metrics_json: String,
    profile_json: String,
    trace_json: String,
    errors: Vec<String>,
}

/// Live numeric progress of a run: refreshed by the watchdog while the
/// run executes, finalized by the run engine. Feeds `Progress` frames.
#[derive(Clone, Copy, Default)]
struct ProgressSample {
    wave: u32,
    waves: u32,
    pulls: u64,
    pull_bytes: u64,
    shm_wait_p50_us: u64,
    shm_wait_p99_us: u64,
    rdma_wait_p50_us: u64,
    rdma_wait_p99_us: u64,
    pulls_in_flight: u64,
    bytes_in_flight: u64,
    queue_depth: u64,
    sub_active: u64,
    sub_pushes: u64,
    sub_lagged: u64,
}

/// One submitted run's registry entry.
struct RunEntry {
    name: String,
    dag: String,
    config: String,
    strategy: MappingStrategy,
    get_timeout: Duration,
    nodes: u32,
    /// Admission priority: higher values are queued ahead of lower
    /// ones, first-come-first-served within a level.
    priority: u32,
    /// Admission order stamp (0-based), set when the scheduler admits
    /// the run; `None` while queued or refused.
    admitted_seq: Option<u64>,
    state: RunState,
    detail: String,
    cancel: Arc<AtomicBool>,
    artifacts: Artifacts,
    /// Stall episodes the watchdog counted for this run.
    link_stalls: u64,
    /// Structured health events (`link-stall: ...`, `link-degraded:
    /// ...`), appended once per episode.
    health: Vec<String>,
    progress: ProgressSample,
}

impl RunEntry {
    fn summary(&self, id: u64) -> RunSummary {
        RunSummary {
            run: id,
            name: self.name.clone(),
            state: self.state,
            nodes: self.nodes,
            detail: self.detail.clone(),
            link_stalls: self.link_stalls,
            health: self.health.clone(),
        }
    }

    fn progress_frame(&self, id: u64, done: bool) -> Frame {
        let p = self.progress;
        Frame::Progress {
            run: id,
            state: self.state,
            done,
            wave: p.wave,
            waves: p.waves,
            pulls: p.pulls,
            pull_bytes: p.pull_bytes,
            shm_wait_p50_us: p.shm_wait_p50_us,
            shm_wait_p99_us: p.shm_wait_p99_us,
            rdma_wait_p50_us: p.rdma_wait_p50_us,
            rdma_wait_p99_us: p.rdma_wait_p99_us,
            pulls_in_flight: p.pulls_in_flight,
            bytes_in_flight: p.bytes_in_flight,
            queue_depth: p.queue_depth,
            sub_active: p.sub_active,
            sub_pushes: p.sub_pushes,
            sub_lagged: p.sub_lagged,
            link_stalls: self.link_stalls,
            health: self.health.clone(),
        }
    }
}

/// Mutable service state behind one lock.
struct State {
    /// All runs ever submitted; `RunId = index + 1` (ids are 1-based so
    /// a run's key epoch is never the no-salt epoch 0).
    runs: Vec<RunEntry>,
    /// Queued run ids, admission order: descending priority, FIFO
    /// within a level (`submit` inserts behind the last entry of equal
    /// or higher priority, so the head is always the next run due).
    queue: VecDeque<u64>,
    /// Runs admitted so far; stamps `RunEntry::admitted_seq`.
    admissions: u64,
    /// Runs currently executing.
    running: usize,
    /// Pool nodes not reserved by an executing run.
    free_nodes: u32,
    /// Set once `shutdown` begins; stops the scheduler and acceptor.
    stopping: bool,
}

/// One node assignment handed to a pool worker.
struct Assignment {
    addr: String,
    node: u32,
    timeout: Duration,
    injector: FaultInjector,
    recorder: Recorder,
    flight: FlightRecorder,
}

/// Live handles of an executing run, registered for the watchdog.
struct RunLive {
    recorder: Recorder,
    /// One flight recorder per pooled joiner, in node order.
    flights: Vec<FlightRecorder>,
}

struct Shared {
    cfg: SvcConfig,
    build: ScenarioBuilder,
    state: Mutex<State>,
    /// Signals the scheduler: queue grew, a run finished, or stopping.
    sched: Condvar,
    /// Assignment channel feeding the pool workers; dropped on shutdown
    /// so workers observe disconnection and exit.
    pool_tx: Mutex<Option<Sender<Assignment>>>,
    /// Engine threads of admitted runs, joined on shutdown.
    engines: Mutex<Vec<JoinHandle<()>>>,
    /// Executing runs' recorders, for the watchdog and `Watch` streams.
    live: Mutex<HashMap<u64, RunLive>>,
}

/// A running workflow service. Dropping without [`Service::shutdown`]
/// leaks its threads; the CLI runs it for the process lifetime, tests
/// shut it down explicitly.
pub struct Service {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    scheduler: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Start the service on an already bound listener: spawns the RPC
    /// acceptor, the admission scheduler and the `pool_nodes` joiner
    /// workers.
    pub fn start(
        listener: TcpListener,
        cfg: SvcConfig,
        build: ScenarioBuilder,
    ) -> Result<Service, String> {
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve service listener address: {e}"))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot poll service listener: {e}"))?;
        let (pool_tx, pool_rx) = unbounded::<Assignment>();
        let pool_rx = Arc::new(pool_rx);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                runs: Vec::new(),
                queue: VecDeque::new(),
                admissions: 0,
                running: 0,
                free_nodes: cfg.pool_nodes,
                stopping: false,
            }),
            sched: Condvar::new(),
            pool_tx: Mutex::new(Some(pool_tx)),
            engines: Mutex::new(Vec::new()),
            live: Mutex::new(HashMap::new()),
            cfg,
            build,
        });

        let workers = (0..shared.cfg.pool_nodes)
            .map(|i| {
                let rx = Arc::clone(&pool_rx);
                let build = Arc::clone(&shared.build);
                std::thread::Builder::new()
                    .name(format!("svc-pool-{i}"))
                    .spawn(move || pool_worker(&rx, &build))
                    .map_err(|e| format!("cannot spawn pool worker: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;

        let scheduler = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("svc-scheduler".into())
                .spawn(move || scheduler_loop(&shared))
                .map_err(|e| format!("cannot spawn scheduler: {e}"))?
        };

        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("svc-watchdog".into())
                .spawn(move || watchdog_loop(&shared))
                .map_err(|e| format!("cannot spawn watchdog: {e}"))?
        };

        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("svc-acceptor".into())
                .spawn(move || acceptor_loop(&listener, &shared))
                .map_err(|e| format!("cannot spawn acceptor: {e}"))?
        };

        Ok(Service {
            addr,
            shared,
            acceptor: Some(acceptor),
            scheduler: Some(scheduler),
            watchdog: Some(watchdog),
            workers,
        })
    }

    /// The address the RPC listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the service: cancels every queued run, flags every running
    /// run for cancellation at its next wave boundary, waits for the
    /// engines to drain, then stops the pool, scheduler and acceptor.
    pub fn shutdown(mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.stopping = true;
            while let Some(id) = st.queue.pop_front() {
                let e = &mut st.runs[id as usize - 1];
                e.state = RunState::Cancelled;
                e.detail = "service shutting down".into();
            }
            for e in &st.runs {
                if e.state == RunState::Running {
                    e.cancel.store(true, Ordering::SeqCst);
                }
            }
            self.shared.sched.notify_all();
        }
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
        if let Some(h) = self.watchdog.take() {
            let _ = h.join();
        }
        for h in self.shared.engines.lock().unwrap().drain(..) {
            let _ = h.join();
        }
        // Disconnect the assignment channel so idle workers exit.
        drop(self.shared.pool_tx.lock().unwrap().take());
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

fn pool_worker(rx: &Receiver<Assignment>, build: &ScenarioBuilder) {
    while let Ok(a) = rx.recv() {
        let build = Arc::clone(build);
        // Errors surface on the server side of the run (a missing node
        // fails the hub accept or a wave barrier); the worker itself
        // just returns to the pool.
        let _ = join(
            &a.addr,
            a.node,
            move |dag, config| (build)(dag, config),
            &JoinOptions {
                timeout: a.timeout,
                injector: a.injector,
                recorder: a.recorder,
                flight: a.flight,
                shm: true,
            },
        );
    }
}

/// Strict-FIFO admission: only the queue head is considered, and it is
/// admitted only when a run slot *and* enough free pool nodes exist.
fn admissible(st: &State, max_runs: usize) -> bool {
    match st.queue.front() {
        Some(&id) => st.running < max_runs && st.runs[id as usize - 1].nodes <= st.free_nodes,
        None => false,
    }
}

fn scheduler_loop(shared: &Arc<Shared>) {
    loop {
        let admitted = {
            let mut st = shared.state.lock().unwrap();
            while !st.stopping && !admissible(&st, shared.cfg.max_runs) {
                st = shared.sched.wait(st).unwrap();
            }
            if st.stopping {
                return;
            }
            let id = st.queue.pop_front().expect("admissible queue head");
            let seq = st.admissions;
            st.admissions += 1;
            let e = &mut st.runs[id as usize - 1];
            e.state = RunState::Running;
            e.admitted_seq = Some(seq);
            let nodes = e.nodes;
            st.running += 1;
            st.free_nodes -= nodes;
            id
        };
        if shared.cfg.verbose {
            println!("run {admitted}: admitted");
        }
        let shared2 = Arc::clone(shared);
        let engine = std::thread::Builder::new()
            .name(format!("svc-run-{admitted}"))
            .spawn(move || run_engine(&shared2, admitted))
            .expect("spawn run engine");
        shared.engines.lock().unwrap().push(engine);
    }
}

/// Execute one admitted run: private loopback hub, node assignments to
/// the pool, `serve` to completion, artifacts into the registry.
fn run_engine(shared: &Arc<Shared>, id: u64) {
    let (dag, config, strategy, get_timeout, nodes, cancel) = {
        let st = shared.state.lock().unwrap();
        let e = &st.runs[id as usize - 1];
        (
            e.dag.clone(),
            e.config.clone(),
            e.strategy,
            e.get_timeout,
            e.nodes,
            Arc::clone(&e.cancel),
        )
    };
    let recorder = Recorder::enabled();
    // One flight recorder per pooled joiner: each worker records its own
    // process-local trace exactly as a real distributed joiner would,
    // and the merged artifacts below come from the same telemetry path
    // the wire uses (the joiners ship their snapshots to the run hub).
    let flights: Vec<FlightRecorder> = (0..nodes).map(|_| FlightRecorder::enabled()).collect();
    shared.live.lock().unwrap().insert(
        id,
        RunLive {
            recorder: recorder.clone(),
            flights: flights.clone(),
        },
    );
    let result = (|| -> Result<_, String> {
        let scenario = (shared.build)(&dag, &config)?;
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| format!("cannot bind run hub: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot resolve run hub address: {e}"))?
            .to_string();
        {
            let tx = shared.pool_tx.lock().unwrap();
            let tx = tx.as_ref().ok_or("pool is shut down")?;
            for node in 0..nodes {
                let _ = tx.send(Assignment {
                    addr: addr.clone(),
                    node,
                    timeout: shared.cfg.connect_timeout,
                    injector: shared.cfg.injector.clone(),
                    recorder: recorder.clone(),
                    flight: flights[node as usize].clone(),
                });
            }
        }
        serve(
            &listener,
            &dag,
            &config,
            &scenario,
            &ServeOptions {
                strategy,
                get_timeout,
                timeout: shared.cfg.connect_timeout,
                injector: shared.cfg.injector.clone(),
                recorder: recorder.clone(),
                run_epoch: id,
                cancel: Arc::clone(&cancel),
                flight: FlightRecorder::disabled(),
                p2p: shared.cfg.p2p,
                shm: shared.cfg.shm,
            },
        )
    })();

    shared.live.lock().unwrap().remove(&id);
    let final_progress = sample_run(&recorder, &flights).0;
    let metrics_json = recorder.metrics_snapshot().to_json().render();
    let (state, detail, artifacts, telemetry_health) = match result {
        Ok(outcome) => {
            // The merged causal trace: the joiners' telemetry, stitched
            // at the hub. Lost telemetry degrades the merge — surfaced
            // as health events, not errors: a run whose tasks all
            // succeeded is healthy even when its trace is partial.
            let merged = merge_traces(outcome.telemetry);
            let profile_json = ProfileReport::analyze(&merged.events, merged.dropped)
                .to_json()
                .render();
            let trace_json = chrome_trace_merged(&merged).render();
            let errors = outcome.errors;
            let telemetry_health: Vec<String> = merged
                .warnings()
                .into_iter()
                .map(|w| format!("telemetry: {w}"))
                .collect();
            let detail = if outcome.verify_failures > 0 {
                format!("{} verify failures", outcome.verify_failures)
            } else {
                String::new()
            };
            (
                RunState::Done,
                detail,
                Artifacts {
                    ledger_json: outcome.ledger.to_json().render(),
                    metrics_json,
                    profile_json,
                    trace_json,
                    errors,
                },
                telemetry_health,
            )
        }
        Err(why) => {
            // No telemetry made it back; profile what the pooled
            // workers recorded locally so failed runs still leave a
            // trace behind.
            let traces: Vec<ProcessTrace> = flights
                .iter()
                .enumerate()
                .map(|(node, f)| ProcessTrace {
                    node: node as u32,
                    events: f.snapshot(),
                    dropped: f.dropped(),
                    dropped_spans: 0,
                    counters: BTreeMap::new(),
                    complete: false,
                })
                .collect();
            let merged = merge_traces(traces);
            let profile_json = ProfileReport::analyze(&merged.events, merged.dropped)
                .to_json()
                .render();
            let trace_json = chrome_trace_merged(&merged).render();
            let state = if cancel.load(Ordering::SeqCst) {
                RunState::Cancelled
            } else {
                RunState::Failed
            };
            (
                state,
                why.clone(),
                Artifacts {
                    ledger_json: String::new(),
                    metrics_json,
                    profile_json,
                    trace_json,
                    errors: vec![why],
                },
                Vec::new(),
            )
        }
    };

    if let Some(dir) = &shared.cfg.artifacts_dir {
        let _ = std::fs::create_dir_all(dir);
        for (kind, body) in [
            ("ledger", &artifacts.ledger_json),
            ("metrics", &artifacts.metrics_json),
            ("profile", &artifacts.profile_json),
            ("trace", &artifacts.trace_json),
        ] {
            if !body.is_empty() {
                let _ = std::fs::write(dir.join(format!("run-{id}.{kind}.json")), body);
            }
        }
    }

    if shared.cfg.verbose {
        println!(
            "run {id}: {state}{}",
            if detail.is_empty() {
                String::new()
            } else {
                format!(" ({detail})")
            }
        );
    }
    let mut st = shared.state.lock().unwrap();
    let e = &mut st.runs[id as usize - 1];
    e.state = state;
    e.detail = detail;
    e.artifacts = artifacts;
    e.health.extend(telemetry_health);
    e.progress = final_progress;
    st.running -= 1;
    st.free_nodes += nodes;
    shared.sched.notify_all();
}

/// Sample one run's live numbers: wave progress and in-flight gauges
/// from the shared metrics registry, pull counts and per-class wait
/// percentiles from the pooled joiners' flight recorders. The second
/// value is the per-class pull count (`[shm, rdma]`), used by the
/// watchdog's drift detector.
fn sample_run(recorder: &Recorder, flights: &[FlightRecorder]) -> (ProgressSample, [u64; 2]) {
    let snap = recorder.metrics_snapshot();
    let mut waits: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
    let mut pulls = 0u64;
    let mut pull_bytes = 0u64;
    for f in flights {
        for e in f.snapshot() {
            if let EventKind::Pull { wait_us } = e.kind {
                pulls += 1;
                pull_bytes += e.bytes;
                let class = match e.link {
                    Some(LinkClass::Shm) => 0,
                    _ => 1,
                };
                waits[class].push(wait_us);
            }
        }
    }
    for w in &mut waits {
        w.sort_unstable();
    }
    let q = |w: &[u64], q: f64| -> u64 {
        if w.is_empty() {
            0
        } else {
            w[((q * w.len() as f64).ceil() as usize).clamp(1, w.len()) - 1]
        }
    };
    let gauge = |name: &str| snap.gauges.get(name).map_or(0, |g| g.value);
    let sample = ProgressSample {
        wave: snap.counter("workflow.waves_done") as u32,
        waves: gauge("workflow.waves") as u32,
        pulls,
        pull_bytes,
        shm_wait_p50_us: q(&waits[0], 0.50),
        shm_wait_p99_us: q(&waits[0], 0.99),
        rdma_wait_p50_us: q(&waits[1], 0.50),
        rdma_wait_p99_us: q(&waits[1], 0.99),
        pulls_in_flight: gauge("net.pulls_in_flight"),
        bytes_in_flight: gauge("cods.staging_bytes"),
        queue_depth: gauge("net.bytes_in_flight"),
        sub_active: gauge("sub.active"),
        sub_pushes: snap.counter("sub.pushes"),
        sub_lagged: snap.counter("sub.lagged"),
    };
    (sample, [waits[0].len() as u64, waits[1].len() as u64])
}

/// Per-run detection state the watchdog keeps between polls.
#[derive(Default)]
struct WatchState {
    last_progress: (u64, u64),
    last_change: Option<Instant>,
    /// Inside a flagged stall episode (re-arms when progress resumes).
    stalled: bool,
    /// First-sample pull-wait p99 per class (`[shm, rdma]`), the
    /// run-local drift baseline.
    baseline_p99: [Option<u64>; 2],
    degraded: [bool; 2],
}

/// The link-health watchdog: polls every executing run's recorders,
/// refreshes its `Progress` sample and raises `link-stall` /
/// `link-degraded` health events. Detection is per episode: a stall is
/// counted once until progress resumes, a degraded class once per run.
fn watchdog_loop(shared: &Arc<Shared>) {
    let cfg = shared.cfg.watchdog;
    let mut states: HashMap<u64, WatchState> = HashMap::new();
    loop {
        std::thread::sleep(Duration::from_millis(cfg.poll_ms.max(5)));
        if shared.state.lock().unwrap().stopping {
            return;
        }
        let live: Vec<(u64, Recorder, Vec<FlightRecorder>)> = {
            let l = shared.live.lock().unwrap();
            l.iter()
                .map(|(&id, r)| (id, r.recorder.clone(), r.flights.clone()))
                .collect()
        };
        states.retain(|id, _| live.iter().any(|(lid, _, _)| lid == id));
        for (id, recorder, flights) in live {
            let (sample, class_pulls) = sample_run(&recorder, &flights);
            let st = states.entry(id).or_default();
            let mut events: Vec<String> = Vec::new();
            let now = Instant::now();
            let progress = (sample.pulls, sample.pull_bytes);
            let mut stalled_now = false;
            match st.last_change {
                Some(since) if progress == st.last_progress => {
                    if sample.pulls_in_flight > 0
                        && !st.stalled
                        && now.duration_since(since) >= Duration::from_millis(cfg.stall_ms)
                    {
                        st.stalled = true;
                        stalled_now = true;
                        recorder.counter("net.link_stalls").inc();
                        events.push(format!(
                            "link-stall: {} pull(s) in flight, no completion for {} ms",
                            sample.pulls_in_flight, cfg.stall_ms
                        ));
                    }
                }
                _ => {
                    st.last_progress = progress;
                    st.last_change = Some(now);
                    st.stalled = false;
                }
            }
            for (class, label) in [(0usize, "shm"), (1usize, "rdma")] {
                if class_pulls[class] < 8 {
                    continue;
                }
                let p99 = [sample.shm_wait_p99_us, sample.rdma_wait_p99_us][class];
                match st.baseline_p99[class] {
                    None => st.baseline_p99[class] = Some(p99.max(1)),
                    Some(base) => {
                        if !st.degraded[class] && p99 as f64 > cfg.p99_factor * base as f64 {
                            st.degraded[class] = true;
                            events.push(format!(
                                "link-degraded: {label} pull-wait p99 {p99} us exceeds \
                                 {}x run baseline {base} us",
                                cfg.p99_factor
                            ));
                        }
                    }
                }
            }
            let mut stl = shared.state.lock().unwrap();
            if let Some(e) = stl
                .runs
                .get_mut(id as usize - 1)
                .filter(|e| e.state == RunState::Running)
            {
                e.progress = sample;
                if stalled_now {
                    e.link_stalls += 1;
                }
                e.health.extend(events);
            }
        }
    }
}

/// Stream `Progress` frames for one watched run until it turns terminal
/// (or immediately, in `once` mode). The final frame carries `done =
/// true`; afterwards the connection resumes normal RPC service. The
/// interval is floored at the watchdog cadence — samples cannot refresh
/// faster than they are taken.
fn watch_stream(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    run: u64,
    interval_ms: u64,
    once: bool,
    injector: &FaultInjector,
    metrics: &NetMetrics,
) -> Result<(), ()> {
    let interval = Duration::from_millis(interval_ms.max(shared.cfg.watchdog.poll_ms).max(1));
    loop {
        let frame = {
            let st = shared.state.lock().unwrap();
            match run.checked_sub(1).and_then(|i| st.runs.get(i as usize)) {
                Some(e) => {
                    let terminal = e.state.is_terminal();
                    (e.progress_frame(run, once || terminal), terminal)
                }
                None => (
                    Frame::RpcErr {
                        message: format!("unknown run {run}"),
                    },
                    true,
                ),
            }
        };
        let (frame, last) = frame;
        send_frame(stream, &frame, injector, metrics).map_err(|_| ())?;
        if once || last {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.state.lock().unwrap().stopping {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("svc-rpc".into())
                    .spawn(move || rpc_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => return,
        }
    }
}

/// Serve RPCs on one client connection until it closes.
fn rpc_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let mut stream = stream;
    if stream.set_nodelay(true).is_err() {
        return;
    }
    let injector = FaultInjector::none();
    let metrics = NetMetrics::new(&Recorder::disabled());
    loop {
        let request = match recv_frame(&mut stream, &injector, &metrics) {
            Ok(f) => f,
            Err(_) => return, // disconnect (or garbage): drop the connection
        };
        // `Watch` is the one streaming RPC: it answers with a frame
        // *sequence* and then hands the connection back to the
        // request/reply loop.
        if let Frame::Watch {
            run,
            interval_ms,
            once,
        } = request
        {
            if watch_stream(
                &mut stream,
                shared,
                run,
                interval_ms,
                once,
                &injector,
                &metrics,
            )
            .is_err()
            {
                return;
            }
            continue;
        }
        let reply = handle_rpc(request, shared);
        if send_frame(&mut stream, &reply, &injector, &metrics).is_err() {
            return;
        }
    }
}

fn handle_rpc(request: Frame, shared: &Arc<Shared>) -> Frame {
    match request {
        Frame::Submit {
            name,
            dag,
            config,
            strategy,
            get_timeout_ms,
            priority,
        } => submit(
            shared,
            name,
            dag,
            config,
            &strategy,
            get_timeout_ms,
            priority,
        ),
        Frame::Cancel { run } => cancel(shared, run),
        Frame::Status { run } => with_run(shared, run, |e, id| Frame::RunStatus(e.summary(id))),
        Frame::ListRuns => {
            let st = shared.state.lock().unwrap();
            Frame::RunList {
                runs: st
                    .runs
                    .iter()
                    .enumerate()
                    .map(|(i, e)| e.summary(i as u64 + 1))
                    .collect(),
            }
        }
        Frame::RunResult { run } => with_run(shared, run, |e, id| Frame::RunReport {
            run: id,
            state: e.state,
            ledger_json: e.artifacts.ledger_json.clone(),
            metrics_json: e.artifacts.metrics_json.clone(),
            profile_json: e.artifacts.profile_json.clone(),
            errors: e.artifacts.errors.clone(),
        }),
        other => Frame::RpcErr {
            message: format!("frame kind {} is not a service RPC", other.kind()),
        },
    }
}

fn with_run(shared: &Arc<Shared>, run: u64, f: impl FnOnce(&RunEntry, u64) -> Frame) -> Frame {
    let st = shared.state.lock().unwrap();
    match run.checked_sub(1).and_then(|i| st.runs.get(i as usize)) {
        Some(e) => f(e, run),
        None => Frame::RpcErr {
            message: format!("unknown run {run}"),
        },
    }
}

fn submit(
    shared: &Arc<Shared>,
    name: String,
    dag: String,
    config: String,
    strategy: &str,
    get_timeout_ms: u64,
    priority: u32,
) -> Frame {
    let refuse = |message: String| Frame::RpcErr { message };
    let Some(strategy) = MappingStrategy::from_label(strategy) else {
        return refuse(format!("unknown mapping strategy {strategy:?}"));
    };
    let scenario = match (shared.build)(&dag, &config) {
        Ok(s) => s,
        Err(e) => return refuse(format!("invalid workflow: {e}")),
    };
    // `map_scenario` panics on capacity errors; keep a hostile
    // submission from taking the handler thread down.
    let nodes = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        map_scenario(&scenario, strategy).machine.nodes
    })) {
        Ok(n) => n,
        Err(_) => return refuse("workflow does not map onto the machine".into()),
    };
    if nodes > shared.cfg.pool_nodes {
        return refuse(format!(
            "workflow needs {nodes} nodes, the pool has {}",
            shared.cfg.pool_nodes
        ));
    }
    let mut st = shared.state.lock().unwrap();
    if st.stopping {
        return refuse("service is shutting down".into());
    }
    if st.queue.len() >= shared.cfg.queue_depth {
        return refuse(format!(
            "admission queue is full ({} runs queued)",
            st.queue.len()
        ));
    }
    let id = st.runs.len() as u64 + 1;
    st.runs.push(RunEntry {
        name: if name.is_empty() {
            format!("run-{id}")
        } else {
            name
        },
        dag,
        config,
        strategy,
        get_timeout: Duration::from_millis(get_timeout_ms.max(1)),
        nodes,
        priority,
        admitted_seq: None,
        state: RunState::Queued,
        detail: String::new(),
        cancel: Arc::new(AtomicBool::new(false)),
        artifacts: Artifacts::default(),
        link_stalls: 0,
        health: Vec::new(),
        progress: ProgressSample::default(),
    });
    // Priority insertion: behind the last queued run of equal or higher
    // priority, ahead of every lower one. Equal priorities stay FIFO,
    // and the all-default case degenerates to a plain push_back.
    let at = st
        .queue
        .iter()
        .position(|&q| st.runs[q as usize - 1].priority < priority)
        .unwrap_or(st.queue.len());
    let queued_ahead = at as u32;
    st.queue.insert(at, id);
    if shared.cfg.verbose {
        println!("run {id}: submitted ({nodes} nodes, priority {priority}, {queued_ahead} ahead)");
    }
    shared.sched.notify_all();
    Frame::Submitted {
        run: id,
        queued_ahead,
    }
}

fn cancel(shared: &Arc<Shared>, run: u64) -> Frame {
    let mut st = shared.state.lock().unwrap();
    let Some(i) = run.checked_sub(1).filter(|&i| (i as usize) < st.runs.len()) else {
        return Frame::RpcErr {
            message: format!("unknown run {run}"),
        };
    };
    let queued = st.runs[i as usize].state == RunState::Queued;
    if queued {
        st.queue.retain(|&q| q != run);
        let e = &mut st.runs[i as usize];
        e.state = RunState::Cancelled;
        e.detail = "cancelled while queued".into();
    } else {
        // Running: flag it; the engine records the terminal state at
        // the next wave boundary. Terminal states are left untouched.
        st.runs[i as usize].cancel.store(true, Ordering::SeqCst);
    }
    if shared.cfg.verbose {
        println!("run {run}: cancel requested");
    }
    Frame::RunStatus(st.runs[i as usize].summary(run))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::RpcClient;
    use insitu::{concurrent_scenario, pattern_pairs, run_threaded};

    /// A builder that maps any dag text except `"bad"` to the same
    /// 8-producer/4-consumer scenario (2 nodes at 4 cores each); the
    /// dag text `"slow"` gets 30 iterations instead of 2, for tests
    /// that need a run to reliably outlast a few RPC round-trips.
    fn fixed_builder() -> ScenarioBuilder {
        Arc::new(|dag, _config| {
            if dag == "bad" {
                return Err("deliberately unparsable".into());
            }
            let iterations = if dag == "slow" { 30 } else { 2 };
            let mut s = concurrent_scenario(4, 4, 4, pattern_pairs(&[2, 2, 1])[0])
                .with_iterations(iterations);
            s.cores_per_node = 4;
            Ok(s)
        })
    }

    fn start(cfg: SvcConfig) -> (Service, RpcClient) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let svc = Service::start(listener, cfg, fixed_builder()).unwrap();
        let client =
            RpcClient::connect(&svc.local_addr().to_string(), Duration::from_secs(10)).unwrap();
        (svc, client)
    }

    fn baseline_ledger_json() -> String {
        let s = (fixed_builder())("ok", "").unwrap();
        let out = run_threaded(&s, MappingStrategy::DataCentric);
        assert_eq!(out.verify_failures, 0);
        out.ledger.to_json().render()
    }

    #[test]
    fn single_run_completes_with_threaded_identical_ledger() {
        let (svc, mut client) = start(SvcConfig {
            max_runs: 2,
            pool_nodes: 2,
            ..SvcConfig::default()
        });
        let (run, _) = client
            .submit("smoke", "ok", "", "data-centric", Duration::from_secs(60))
            .unwrap();
        assert_eq!(run, 1);
        let s = client.wait_terminal(run, Duration::from_secs(120)).unwrap();
        assert_eq!(s.state, RunState::Done, "{}", s.detail);
        assert_eq!(s.nodes, 2);
        let art = client.result(run).unwrap();
        assert!(art.errors.is_empty(), "{:?}", art.errors);
        assert_eq!(art.ledger_json, baseline_ledger_json());
        assert!(art.metrics_json.contains("net.bytes_sent"));
        assert!(!art.profile_json.is_empty());
        svc.shutdown();
    }

    #[test]
    fn concurrent_runs_with_identical_variable_names_stay_isolated() {
        // Four runs of the *same* workflow (same variable names, same
        // versions) share one pool; epoch salting must keep their key
        // spaces disjoint so every ledger is byte-identical to the
        // single-process baseline.
        let (svc, mut client) = start(SvcConfig {
            max_runs: 4,
            pool_nodes: 8,
            ..SvcConfig::default()
        });
        let runs: Vec<u64> = (0..4)
            .map(|i| {
                client
                    .submit(
                        &format!("iso-{i}"),
                        "ok",
                        "",
                        "data-centric",
                        Duration::from_secs(60),
                    )
                    .unwrap()
                    .0
            })
            .collect();
        let expected = baseline_ledger_json();
        for run in runs {
            let s = client.wait_terminal(run, Duration::from_secs(120)).unwrap();
            assert_eq!(s.state, RunState::Done, "run {run}: {}", s.detail);
            let art = client.result(run).unwrap();
            assert!(art.errors.is_empty(), "run {run}: {:?}", art.errors);
            assert_eq!(art.ledger_json, expected, "run {run} ledger diverged");
        }
        svc.shutdown();
    }

    #[test]
    fn submission_is_validated_and_queue_is_bounded() {
        let (svc, mut client) = start(SvcConfig {
            max_runs: 0, // nothing is ever admitted: submissions stay queued
            queue_depth: 1,
            pool_nodes: 2,
            ..SvcConfig::default()
        });
        let err = client
            .submit("x", "ok", "", "no-such-strategy", Duration::from_secs(1))
            .unwrap_err();
        assert!(err.contains("strategy"), "{err}");
        let err = client
            .submit("x", "bad", "", "data-centric", Duration::from_secs(1))
            .unwrap_err();
        assert!(err.contains("invalid workflow"), "{err}");
        let (run, ahead) = client
            .submit("q1", "ok", "", "data-centric", Duration::from_secs(1))
            .unwrap();
        assert_eq!((run, ahead), (1, 0));
        let err = client
            .submit("q2", "ok", "", "data-centric", Duration::from_secs(1))
            .unwrap_err();
        assert!(err.contains("queue is full"), "{err}");
        assert_eq!(client.status(run).unwrap().state, RunState::Queued);
        svc.shutdown();
    }

    #[test]
    fn high_priority_run_overtakes_a_queued_low_priority_one() {
        let (svc, mut client) = start(SvcConfig {
            max_runs: 1,
            pool_nodes: 2,
            ..SvcConfig::default()
        });
        // A long run pins the single slot so the next submissions queue.
        let (head, _) = client
            .submit("head", "slow", "", "data-centric", Duration::from_secs(60))
            .unwrap();
        while client.status(head).unwrap().state == RunState::Queued {
            std::thread::sleep(Duration::from_millis(1));
        }
        let (low, _) = client
            .submit("low", "ok", "", "data-centric", Duration::from_secs(60))
            .unwrap();
        assert_eq!(client.status(low).unwrap().state, RunState::Queued);
        let (high, high_ahead) = client
            .submit_with_priority("high", "ok", "", "data-centric", Duration::from_secs(60), 1)
            .unwrap();
        // Inserted ahead of the queued priority-0 run.
        assert_eq!(high_ahead, 0, "high-priority run must go to the queue head");
        for run in [head, low, high] {
            let s = client.wait_terminal(run, Duration::from_secs(120)).unwrap();
            assert_eq!(s.state, RunState::Done, "run {run}: {}", s.detail);
        }
        // The scheduler admitted the high-priority run before the
        // earlier-submitted low-priority one.
        let st = svc.shared.state.lock().unwrap();
        let seq = |id: u64| st.runs[id as usize - 1].admitted_seq.unwrap();
        assert!(
            seq(high) < seq(low),
            "admission order: high {} vs low {}",
            seq(high),
            seq(low)
        );
        drop(st);
        svc.shutdown();
    }

    #[test]
    fn workflow_wider_than_the_pool_is_refused() {
        let (svc, mut client) = start(SvcConfig {
            pool_nodes: 1, // the fixed scenario needs 2 nodes
            ..SvcConfig::default()
        });
        let err = client
            .submit("wide", "ok", "", "data-centric", Duration::from_secs(1))
            .unwrap_err();
        assert!(err.contains("nodes"), "{err}");
        assert!(client.list().unwrap().is_empty());
        svc.shutdown();
    }

    #[test]
    fn cancelling_a_queued_run_removes_it_and_keeps_the_service_healthy() {
        let (svc, mut client) = start(SvcConfig {
            max_runs: 0,
            pool_nodes: 2,
            ..SvcConfig::default()
        });
        let (run, _) = client
            .submit("doomed", "ok", "", "data-centric", Duration::from_secs(1))
            .unwrap();
        let s = client.cancel(run).unwrap();
        assert_eq!(s.state, RunState::Cancelled);
        assert_eq!(client.status(run).unwrap().state, RunState::Cancelled);
        // Unknown runs are clean RPC errors, not dead connections.
        let err = client.status(99).unwrap_err();
        assert!(err.contains("unknown run"), "{err}");
        let err = client.cancel(0).unwrap_err();
        assert!(err.contains("unknown run"), "{err}");
        // The same connection keeps serving after the errors.
        assert_eq!(client.list().unwrap().len(), 1);
        svc.shutdown();
    }

    #[test]
    fn watch_streams_progress_and_returns_the_connection() {
        let (svc, mut client) = start(SvcConfig {
            max_runs: 1,
            pool_nodes: 2,
            watchdog: WatchdogConfig {
                poll_ms: 10,
                ..WatchdogConfig::default()
            },
            ..SvcConfig::default()
        });
        let err = client
            .watch(99, Duration::from_millis(10), true, |_| {})
            .unwrap_err();
        assert!(err.contains("unknown run"), "{err}");
        let (run, _) = client
            .submit("watched", "ok", "", "round-robin", Duration::from_secs(60))
            .unwrap();
        let mut last: Option<(RunState, bool, u32, u32, u64)> = None;
        let frames = client
            .watch(run, Duration::from_millis(10), false, |f| {
                if let Frame::Progress {
                    state,
                    done,
                    wave,
                    waves,
                    pulls,
                    ..
                } = f
                {
                    last = Some((*state, *done, *wave, *waves, *pulls));
                }
            })
            .unwrap();
        assert!(frames >= 1);
        let (state, done, wave, waves, pulls) = last.unwrap();
        assert_eq!(state, RunState::Done);
        assert!(done, "final frame must carry done");
        assert!(waves > 0 && wave == waves, "final sample at {wave}/{waves}");
        assert!(pulls > 0, "final sample saw no pulls");
        // After the final frame the same connection serves plain RPCs.
        assert_eq!(client.status(run).unwrap().state, RunState::Done);
        svc.shutdown();
    }

    #[test]
    fn chaos_link_slow_trips_the_watchdog_without_failing_the_run() {
        use insitu_chaos::{FaultKind, FaultPlan, FaultSpec};
        // Every pull-data send held 15-50 ms by the chaos plan; with a
        // 10 ms stall threshold the watchdog must notice, and the run
        // must still complete.
        let plan = Arc::new(FaultPlan::new(
            7,
            FaultSpec::none().with_rate(FaultKind::LinkSlow, 1.0),
        ));
        let (svc, mut client) = start(SvcConfig {
            max_runs: 1,
            pool_nodes: 2,
            // The stalls this test watches for happen to PullData frames
            // on the socket; shm would carry them around the fault site.
            shm: false,
            injector: FaultInjector::new(plan),
            watchdog: WatchdogConfig {
                poll_ms: 5,
                stall_ms: 10,
                p99_factor: 1e9, // stall detection only: keep drift quiet
            },
            ..SvcConfig::default()
        });
        let (run, _) = client
            .submit("slow", "ok", "", "round-robin", Duration::from_secs(60))
            .unwrap();
        let s = client.wait_terminal(run, Duration::from_secs(120)).unwrap();
        assert_eq!(s.state, RunState::Done, "{}", s.detail);
        assert!(s.link_stalls > 0, "watchdog saw no stalls");
        assert!(
            s.health.iter().any(|h| h.starts_with("link-stall")),
            "{:?}",
            s.health
        );
        let art = client.result(run).unwrap();
        assert!(
            art.metrics_json.contains("net.link_stalls"),
            "counter missing from metrics artifact"
        );
        svc.shutdown();
    }

    #[test]
    fn merged_artifacts_cover_every_process_and_land_on_disk() {
        let dir = std::env::temp_dir().join(format!("insitu-svc-trace-{}", std::process::id()));
        let (svc, mut client) = start(SvcConfig {
            max_runs: 1,
            pool_nodes: 2,
            artifacts_dir: Some(dir.clone()),
            ..SvcConfig::default()
        });
        let (run, _) = client
            .submit("merged", "ok", "", "round-robin", Duration::from_secs(60))
            .unwrap();
        let s = client.wait_terminal(run, Duration::from_secs(120)).unwrap();
        assert_eq!(s.state, RunState::Done, "{}", s.detail);
        let art = client.result(run).unwrap();
        // No degradation warnings: telemetry from both joiners arrived
        // complete and every wire event pair stitched. A degraded merge
        // would surface as `telemetry:` *health* events — never as run
        // errors, which are reserved for task failures.
        assert!(art.errors.is_empty(), "{:?}", art.errors);
        assert!(
            s.health.iter().all(|h| !h.starts_with("telemetry:")),
            "{:?}",
            s.health
        );
        let trace = std::fs::read_to_string(dir.join(format!("run-{run}.trace.json"))).unwrap();
        assert!(
            trace.contains("\"processes\":2"),
            "merged trace must cover both joiners"
        );
        assert!(trace.contains("\"unmatchedSends\":0") && trace.contains("\"unmatchedRecvs\":0"));
        let _ = std::fs::remove_dir_all(&dir);
        svc.shutdown();
    }

    #[test]
    fn cancel_mid_service_leaves_later_runs_correct() {
        let (svc, mut client) = start(SvcConfig {
            max_runs: 1,
            pool_nodes: 2,
            ..SvcConfig::default()
        });
        let (first, _) = client
            .submit("victim", "ok", "", "data-centric", Duration::from_secs(60))
            .unwrap();
        client.cancel(first).unwrap();
        let s = client
            .wait_terminal(first, Duration::from_secs(120))
            .unwrap();
        // The cancel races the (fast) run: either it was cut at a wave
        // boundary or it had already finished. Both are terminal; the
        // service must stay healthy either way.
        assert!(
            matches!(s.state, RunState::Cancelled | RunState::Done),
            "{:?}",
            s.state
        );
        let (second, _) = client
            .submit("after", "ok", "", "data-centric", Duration::from_secs(60))
            .unwrap();
        let s = client
            .wait_terminal(second, Duration::from_secs(120))
            .unwrap();
        assert_eq!(s.state, RunState::Done, "{}", s.detail);
        assert_eq!(
            client.result(second).unwrap().ledger_json,
            baseline_ledger_json()
        );
        svc.shutdown();
    }
}
