//! insitu-svc: the multi-tenant workflow service.
//!
//! PR 5's socketized server runs exactly one workflow and exits; this
//! crate turns it into a long-running service that serves traffic. One
//! [`Service`] process owns
//!
//! - an **RPC listener** speaking the service frames added to the wire
//!   protocol (`Submit`/`Submitted`, `Cancel`, `Status`/`RunStatus`,
//!   `ListRuns`/`RunList`, `RunResult`/`RunReport`, `RpcErr`),
//! - a **shared joiner pool**: `pool_nodes` long-lived worker threads,
//!   each executing [`insitu::join`] assignments for
//!   whatever run currently needs a node hosted,
//! - an **admission controller**: at most `max_runs` runs in flight, a
//!   bounded FIFO queue for the rest, and strict head-of-queue
//!   admission (a run is admitted only when both a run slot and enough
//!   pool nodes are free — later, smaller runs never starve the head),
//! - one **engine thread per admitted run**, which binds a private
//!   loopback hub, dispatches its node assignments to the pool and
//!   drives [`insitu::serve`] to completion.
//!
//! ## Run namespacing
//!
//! Every run is assigned a `RunId` that doubles as its *key epoch*: the
//! server and every replica salt their DataSpace/BufferRegistry/DHT
//! variable keys with `epoch_salt(run_id)` (shipped in `Welcome`), so N
//! concurrent runs using identical variable names and versions occupy
//! disjoint key regions and cannot collide. Epoch 0 is the identity —
//! standalone `insitu serve`/`launch` runs are bit-for-bit unchanged —
//! and the salt cancels out of all byte accounting, so each service
//! run's merged ledger stays byte-identical to its standalone
//! single-process baseline.
//!
//! ## Artifacts
//!
//! Each run executes under its own `Recorder` and `FlightRecorder`;
//! when it reaches a terminal state the service holds (and optionally
//! writes to `artifacts_dir`) the run's merged transfer ledger, metrics
//! snapshot and critical-path profile as JSON, retrievable over the
//! wire via `RunResult` (`insitu status --run ID --json`).

#![warn(missing_docs)]

pub mod client;
pub mod service;

pub use client::{RpcClient, RunArtifacts};
pub use service::{Service, SvcConfig, WatchdogConfig};
