//! Shrink a failing case to a minimal one and render a reproducer.
//!
//! The shrinker greedily applies structure-reducing rewrites (fewer
//! iterations, no halo, whole-domain coupling, smaller grids and regions,
//! concurrent instead of three-app sequential) and keeps any rewrite
//! under which the failure predicate still holds, iterating to a fixed
//! point. Because every candidate is re-run under the same seeded fault
//! plan, the search is as deterministic as the harness itself.

use crate::generator::CaseSpec;
use crate::plan::FaultSpec;

/// Candidate one-step reductions of `c`, most aggressive first.
fn reductions(c: &CaseSpec) -> Vec<CaseSpec> {
    let mut out = Vec::new();
    if !c.concurrent {
        let mut d = c.clone();
        d.concurrent = true;
        out.push(d);
    }
    if c.iterations > 1 {
        let mut d = c.clone();
        d.iterations = 1;
        out.push(d);
    }
    if c.halo > 0 {
        let mut d = c.clone();
        d.halo = 0;
        out.push(d);
    }
    if c.subregion {
        let mut d = c.clone();
        d.subregion = false;
        out.push(d);
    }
    if c.sub_every > 0 {
        let mut d = c.clone();
        d.sub_every = 0;
        out.push(d);
        if c.sub_every > 1 {
            let mut d = c.clone();
            d.sub_every = 1;
            out.push(d);
        }
    }
    if c.pattern != 0 {
        let mut d = c.clone();
        d.pattern = 0;
        out.push(d);
    }
    if c.cores_per_node > 2 {
        let mut d = c.clone();
        d.cores_per_node = 2;
        out.push(d);
    }
    // Drop a whole dimension (all grids shrink together so ranks match);
    // 2-D is the floor, matching the generator's domain space.
    if c.pgrid.len() > 2 {
        let mut d = c.clone();
        d.pgrid.pop();
        d.cgrid.pop();
        d.c2grid.pop();
        out.push(d);
    }
    // Halve one grid extent at a time.
    for (which, grid) in [(0, &c.pgrid), (1, &c.cgrid), (2, &c.c2grid)] {
        for (dim, &g) in grid.iter().enumerate() {
            if g > 1 {
                let mut d = c.clone();
                match which {
                    0 => d.pgrid[dim] = 1,
                    1 => d.cgrid[dim] = 1,
                    _ => d.c2grid[dim] = 1,
                }
                out.push(d);
            }
        }
    }
    if c.region_side > 2 {
        let mut d = c.clone();
        d.region_side = 2;
        out.push(d);
        let mut d = c.clone();
        d.region_side = c.region_side - 1;
        out.push(d);
    }
    out
}

/// Greedily minimize `case` while `still_fails` holds, to a fixed point.
pub fn shrink(case: &CaseSpec, still_fails: &dyn Fn(&CaseSpec) -> bool) -> CaseSpec {
    let mut cur = case.clone();
    loop {
        let better = reductions(&cur).into_iter().find(|cand| still_fails(cand));
        match better {
            Some(cand) => cur = cand,
            None => return cur,
        }
    }
}

/// Render a minimal failing case as a paste-ready `#[test]`, including
/// the CLI line that replays the surrounding chaos run.
pub fn reproducer(seed: u64, idx: u64, spec: &FaultSpec, case: &CaseSpec, reason: &str) -> String {
    format!(
        "// Reproduces: {reason}\n\
         // Replay the full run: insitu chaos --seed {seed} --cases {n} --faults {faults}\n\
         #[test]\n\
         fn chaos_seed_{seed}_case_{idx}() {{\n    \
             let spec = insitu_chaos::FaultSpec::parse(\"{faults}\").unwrap();\n    \
             let case = {literal};\n    \
             let outcome = insitu_chaos::run_case_spec({seed}, {idx}, &spec, &case);\n    \
             assert!(outcome.ok(), \"{{:?}}\", outcome.violations);\n\
         }}\n",
        n = idx + 1,
        faults = spec.canonical(),
        literal = case.literal(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_case() -> CaseSpec {
        CaseSpec {
            concurrent: false,
            pgrid: vec![2, 2, 2],
            cgrid: vec![2, 2, 1],
            c2grid: vec![1, 2, 2],
            region_side: 4,
            pattern: 3,
            iterations: 2,
            halo: 2,
            cores_per_node: 4,
            subregion: true,
            sub_every: 2,
        }
    }

    #[test]
    fn shrinks_to_smallest_case_when_everything_fails() {
        let minimal = shrink(&big_case(), &|_| true);
        assert!(minimal.concurrent);
        assert_eq!(minimal.iterations, 1);
        assert_eq!(minimal.halo, 0);
        assert!(!minimal.subregion);
        assert_eq!(minimal.pattern, 0);
        assert_eq!(minimal.cores_per_node, 2);
        assert_eq!(minimal.pgrid, vec![1, 1]);
        assert_eq!(minimal.cgrid, vec![1, 1]);
        assert_eq!(minimal.region_side, 2);
        assert_eq!(minimal.sub_every, 0);
    }

    #[test]
    fn keeps_structure_the_failure_needs() {
        // Failure requires a sequential workflow with at least 2 producer
        // ranks: the shrinker must not cross either line.
        let pred = |c: &CaseSpec| !c.concurrent && c.pgrid.iter().product::<u64>() >= 2;
        let minimal = shrink(&big_case(), &pred);
        assert!(pred(&minimal));
        assert_eq!(minimal.pgrid.iter().product::<u64>(), 2);
        assert_eq!(minimal.iterations, 1);
        assert_eq!(minimal.region_side, 2);
    }

    #[test]
    fn shrink_of_non_failing_case_is_identity() {
        let c = big_case();
        assert_eq!(shrink(&c, &|_| false), c);
    }

    #[test]
    fn reproducer_is_a_complete_test() {
        let rep = reproducer(
            42,
            3,
            &FaultSpec::parse("dead-producer:1").unwrap(),
            &big_case(),
            "put/staging imbalance",
        );
        assert!(rep.contains("#[test]"));
        assert!(rep.contains("fn chaos_seed_42_case_3()"));
        assert!(rep.contains("insitu chaos --seed 42 --cases 4 --faults dead-producer:1"));
        assert!(rep.contains("insitu_chaos::run_case_spec(42, 3, &spec, &case)"));
        assert!(rep.contains("// Reproduces: put/staging imbalance"));
    }
}
