//! # insitu-chaos — deterministic fault injection and workflow fuzzing
//!
//! Chaos testing for the in-situ workflow stack: a seeded [`FaultPlan`]
//! drives the runtime's [`insitu_fabric::FaultHooks`] sites (dead
//! producers between DHT insert and buffer registration, dropped and
//! delayed pulls, DHT-core blackouts, staging-memory exhaustion,
//! torus-link slowdowns in the time model) while a randomized generator
//! fuzzes whole workflow cases — DAG shapes, bundles, decompositions,
//! `*_cont`/`*_seq` couplings — through the threaded executor, checking
//! cross-layer invariants and (on fault-free cases) byte-exact ledger
//! equivalence against the modeled executor.
//!
//! Everything is a pure function of `(seed, case count, fault spec)`:
//!
//! ```
//! let spec = insitu_chaos::FaultSpec::standard();
//! let a = insitu_chaos::run_chaos(42, 2, &spec);
//! let b = insitu_chaos::run_chaos(42, 2, &spec);
//! assert_eq!(a.render(), b.render()); // bit-for-bit replayable
//! ```
//!
//! When a case violates an invariant, [`shrink`] greedily minimizes it
//! while the violation persists and [`run_chaos`] renders the result as a
//! ready-to-paste `#[test]` reproducer, so a CI failure becomes a local
//! unit test by copy-paste (see `insitu chaos --help` and DESIGN.md §6).

#![warn(missing_docs)]

mod generator;
mod harness;
mod plan;
mod shrink;

pub use generator::{dag_round_trip, random_workflow, render_dag, CaseSpec};
pub use harness::{
    case_seed, run_case, run_case_spec, run_chaos, shrink_to_reproducer, CaseOutcome, ChaosReport,
};
pub use plan::{FaultKind, FaultPlan, FaultSpec, TELEMETRY_FRAME_KIND};
pub use shrink::{reproducer, shrink};

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance demo: a deliberately injected dead-producer fault is
    /// caught by the harness as a typed timeout naming the owner, shrunk,
    /// and reported as a minimal paste-ready reproducer.
    #[test]
    fn dead_producer_is_caught_shrunk_and_reproduced() {
        let spec = FaultSpec::none().with_rate(FaultKind::DeadProducer, 1.0);
        let case = CaseSpec {
            concurrent: true,
            pgrid: vec![2, 2],
            cgrid: vec![2, 1],
            c2grid: vec![1, 1],
            region_side: 3,
            pattern: 0,
            iterations: 2,
            halo: 1,
            cores_per_node: 4,
            subregion: false,
            sub_every: 0,
        };
        let outcome = run_case_spec(7, 0, &spec, &case);
        // Every put is orphaned: the harness sees injected faults and the
        // consumers report typed timeouts naming the owning client.
        assert!(outcome.injected[FaultKind::DeadProducer.idx()] > 0);
        assert!(!outcome.errors.is_empty(), "orphaned puts must surface");
        assert!(
            outcome.errors.iter().any(|e| e.contains("from client")),
            "timeouts must name the owner: {:?}",
            outcome.errors
        );
        assert!(outcome.ok(), "invariants hold: {:?}", outcome.violations);

        // Shrinking under "still produces errors" reaches the floor case.
        let minimal = shrink(&case, &|cand| {
            !run_case_spec(7, 0, &spec, cand).errors.is_empty()
        });
        assert_eq!(minimal.pgrid, vec![1, 1]);
        assert_eq!(minimal.cgrid, vec![1, 1]);
        assert_eq!(minimal.iterations, 1);
        assert_eq!(minimal.region_side, 2);

        let rep = reproducer(7, 0, &spec, &minimal, "orphaned puts time out");
        assert!(rep.contains("#[test]"));
        assert!(rep.contains("dead-producer:1"));
        assert!(rep.contains("insitu_chaos::run_case_spec(7, 0, &spec, &case)"));
    }

    /// The reproducer a full chaos run emits for a violating case replays
    /// the violation through `run_case_spec` exactly as pasted.
    #[test]
    fn emitted_reproducers_replay() {
        // Force a (synthetic) violation path by treating any erroring case
        // as the shrink target, then check the minimal case still errors
        // when replayed with the printed arguments.
        let spec = FaultSpec::none().with_rate(FaultKind::DropPull, 1.0);
        let case = CaseSpec {
            concurrent: false,
            pgrid: vec![2, 1],
            cgrid: vec![1, 2],
            c2grid: vec![1, 1],
            region_side: 2,
            pattern: 1,
            iterations: 1,
            halo: 0,
            cores_per_node: 2,
            subregion: false,
            sub_every: 0,
        };
        let minimal = shrink(&case, &|cand| {
            !run_case_spec(3, 5, &spec, cand).errors.is_empty()
        });
        let replayed = run_case_spec(3, 5, &spec, &minimal);
        assert!(!replayed.errors.is_empty());
        assert!(replayed.ok(), "violations: {:?}", replayed.violations);
    }
}
