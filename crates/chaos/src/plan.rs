//! Fault specifications and the deterministic fault plan.
//!
//! A [`FaultSpec`] names per-kind injection rates; a [`FaultPlan`] turns a
//! spec plus a seed into a [`FaultHooks`] implementation whose every
//! decision is a *pure function of the fault site's identity* (variable,
//! version, piece, node, core, link — never wall-clock time or call
//! order). Two runs with the same seed therefore inject exactly the same
//! faults, even though the threaded executor's threads interleave
//! differently, and the set of *triggered sites* per kind is itself a
//! deterministic quantity the harness can assert on.

use insitu_fabric::{
    ClientId, FaultAction, FaultHooks, LinkFaults, Locality, NetOp, NodeId, TrafficClass,
};
use insitu_util::rng::SplitMix64;
use std::collections::{BTreeMap, HashSet};
use std::sync::Mutex;
use std::time::Duration;

/// The kinds of fault the plan can inject, in spec/report order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Producer crashes between DHT insert and buffer registration: the
    /// index names a piece nobody serves.
    DeadProducer,
    /// A receiver-driven pull is dropped (the buffer never arrives).
    DropPull,
    /// A pull is delayed by a few milliseconds before proceeding.
    DelayPull,
    /// A DHT core blacks out: span queries skip it, its records are
    /// invisible.
    DhtBlackout,
    /// Staging memory on a node is exhausted: puts from it fail.
    StageFull,
    /// A torus link runs degraded: estimates slow down in the time
    /// model, and on the real wire the affected pull-data sends are
    /// held 15-50 ms before they are written.
    LinkSlow,
    /// A TCP connection attempt to a peer fails (every retry of the same
    /// peer rolls the same site, so a faulted connect stays down).
    NetConnect,
    /// A data-plane frame (pull-data) is dropped before it is written to
    /// the wire.
    NetSend,
    /// A data-plane frame (pull-data) is discarded after being read from
    /// the wire.
    NetRecv,
    /// A telemetry batch is lost on the wire. Separately rated from the
    /// data-plane drops because its blast radius is different by
    /// design: a lost batch degrades the merged trace to the processes
    /// that reported, never the run itself.
    NetTelemetry,
    /// Creating or attaching an intra-host shared-memory segment fails;
    /// the directed peer pair transparently falls back to sending
    /// PullData over the established TCP link. Rolled op-independently
    /// on (creator node, segment id) so producer and consumer — who
    /// consult *different plan instances* — agree on a doomed pair's
    /// fate under a shared seed.
    ShmAttach,
    /// A standing-query push fragment is dropped before delivery. The
    /// site is rolled in the shared put path (before the local-sink /
    /// remote-mirror split), so single-process and distributed runs of
    /// the same seed lose exactly the same fragments and the subscriber
    /// heals the gap through the lag/resync protocol both ways.
    SubPush,
}

impl FaultKind {
    /// Every kind, in the canonical order used by specs and reports.
    pub const ALL: [FaultKind; 12] = [
        FaultKind::DeadProducer,
        FaultKind::DropPull,
        FaultKind::DelayPull,
        FaultKind::DhtBlackout,
        FaultKind::StageFull,
        FaultKind::LinkSlow,
        FaultKind::NetConnect,
        FaultKind::NetSend,
        FaultKind::NetRecv,
        FaultKind::NetTelemetry,
        FaultKind::ShmAttach,
        FaultKind::SubPush,
    ];

    /// Index into rate/count arrays.
    pub fn idx(self) -> usize {
        Self::ALL.iter().position(|&k| k == self).unwrap()
    }

    /// The spec-file name of the kind.
    pub fn slug(self) -> &'static str {
        match self {
            FaultKind::DeadProducer => "dead-producer",
            FaultKind::DropPull => "drop-pull",
            FaultKind::DelayPull => "delay-pull",
            FaultKind::DhtBlackout => "dht-blackout",
            FaultKind::StageFull => "stage-full",
            FaultKind::LinkSlow => "link-slow",
            FaultKind::NetConnect => "net-connect",
            FaultKind::NetSend => "net-send",
            FaultKind::NetRecv => "net-recv",
            FaultKind::NetTelemetry => "net-telemetry",
            FaultKind::ShmAttach => "shm-attach",
            FaultKind::SubPush => "sub-push",
        }
    }
}

/// Per-kind injection rates in `[0, 1]`, parsed from a `--faults` spec.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultSpec {
    rates: [f64; FaultKind::ALL.len()],
}

impl FaultSpec {
    /// No faults at all — every hook proceeds.
    pub fn none() -> Self {
        FaultSpec {
            rates: [0.0; FaultKind::ALL.len()],
        }
    }

    /// The default chaos mix: a little of everything.
    pub fn standard() -> Self {
        FaultSpec::none()
            .with_rate(FaultKind::DeadProducer, 0.05)
            .with_rate(FaultKind::DropPull, 0.05)
            .with_rate(FaultKind::DelayPull, 0.10)
            .with_rate(FaultKind::DhtBlackout, 0.06)
            .with_rate(FaultKind::StageFull, 0.04)
            .with_rate(FaultKind::LinkSlow, 0.30)
            .with_rate(FaultKind::SubPush, 0.08)
    }

    /// The rate of one kind.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        self.rates[kind.idx()]
    }

    /// Builder-style rate override.
    ///
    /// # Panics
    /// Panics if `rate` is not in `[0, 1]`.
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} outside [0, 1]");
        self.rates[kind.idx()] = rate;
        self
    }

    /// `true` when every rate is zero.
    pub fn is_inert(&self) -> bool {
        self.rates.iter().all(|&r| r == 0.0)
    }

    /// Parse a `--faults` spec: `none`, `standard`, or a comma-separated
    /// list of `kind:rate` entries (unlisted kinds get rate 0), e.g.
    /// `dead-producer:1,drop-pull:0.1`.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let s = s.trim();
        match s {
            "none" => return Ok(FaultSpec::none()),
            "standard" => return Ok(FaultSpec::standard()),
            _ => {}
        }
        let mut spec = FaultSpec::none();
        for entry in s.split(',') {
            let entry = entry.trim();
            let (name, rate) = entry
                .split_once(':')
                .ok_or_else(|| format!("fault entry '{entry}' is not 'kind:rate'"))?;
            let kind = FaultKind::ALL
                .into_iter()
                .find(|k| k.slug() == name.trim())
                .ok_or_else(|| {
                    format!(
                        "unknown fault kind '{}' (expected one of {})",
                        name.trim(),
                        FaultKind::ALL.map(FaultKind::slug).join(", ")
                    )
                })?;
            let rate: f64 = rate
                .trim()
                .parse()
                .map_err(|_| format!("bad rate in '{entry}'"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate {rate} outside [0, 1] in '{entry}'"));
            }
            spec.rates[kind.idx()] = rate;
        }
        Ok(spec)
    }

    /// Render the spec back into its canonical `--faults` string, such
    /// that `parse(canonical()) == self`.
    pub fn canonical(&self) -> String {
        if self.is_inert() {
            return "none".into();
        }
        FaultKind::ALL
            .iter()
            .filter(|&&k| self.rate(k) > 0.0)
            .map(|&k| format!("{}:{}", k.slug(), self.rate(k)))
            .collect::<Vec<_>>()
            .join(",")
    }
}

// Per-hook salts so the same ids under different hooks roll differently.
const SALT_DEAD: u64 = 0x1dea_dbee_f000_0001;
const SALT_PULL: u64 = 0x1dea_dbee_f000_0002;
const SALT_DHT: u64 = 0x1dea_dbee_f000_0003;
const SALT_STAGE: u64 = 0x1dea_dbee_f000_0004;
const SALT_LINK: u64 = 0x1dea_dbee_f000_0005;
const SALT_NET_CONNECT: u64 = 0x1dea_dbee_f000_0006;
const SALT_NET_SEND: u64 = 0x1dea_dbee_f000_0007;
const SALT_NET_RECV: u64 = 0x1dea_dbee_f000_0008;
const SALT_NET_TELEMETRY: u64 = 0x1dea_dbee_f000_0009;
const SALT_SHM_ATTACH: u64 = 0x1dea_dbee_f000_000a;
const SALT_SUB_PUSH: u64 = 0x1dea_dbee_f000_000b;

/// The wire kind byte of `Telemetry` frames
/// (`insitu_net::frame::KIND_TELEMETRY`). Duplicated here because the
/// chaos crate sits below the transport in the dependency order; a
/// cross-crate test pins the two constants together.
pub const TELEMETRY_FRAME_KIND: u8 = 25;

/// A seeded, replayable [`FaultHooks`] implementation.
///
/// Also doubles as the harness's observer: it tallies the distinct fault
/// sites it triggered (deterministic under thread interleaving, because a
/// site either always or never triggers for a given seed) and the bytes
/// the [`insitu_fabric::TransferLedger`] reported through
/// [`FaultHooks::on_transfer`].
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
    sites: Mutex<[HashSet<u64>; FaultKind::ALL.len()]>,
    transfers: Mutex<BTreeMap<(TrafficClass, Locality), u64>>,
}

impl FaultPlan {
    /// A plan rolling `spec`'s rates from `seed`.
    pub fn new(seed: u64, spec: FaultSpec) -> Self {
        FaultPlan {
            seed,
            spec,
            sites: Mutex::new(std::array::from_fn(|_| HashSet::new())),
            transfers: Mutex::new(BTreeMap::new()),
        }
    }

    /// Hash a fault site's identity into a 64-bit label.
    fn site(&self, salt: u64, ids: &[u64]) -> u64 {
        let mut h = self.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        for &id in ids {
            h = (h ^ id.wrapping_add(0x5851_f42d_4c95_7f2d)).wrapping_mul(0x0000_0100_0000_01b3);
            h ^= h >> 29;
        }
        h
    }

    /// The uniform roll of a site (same site, same value — always).
    fn value_of(site: u64) -> f64 {
        SplitMix64::new(site).f64()
    }

    /// Roll a site against `kind`'s rate; record it when it triggers.
    fn hit(&self, kind: FaultKind, salt: u64, ids: &[u64]) -> bool {
        let rate = self.spec.rate(kind);
        if rate <= 0.0 {
            return false;
        }
        let site = self.site(salt, ids);
        if Self::value_of(site) < rate {
            self.sites.lock().unwrap()[kind.idx()].insert(site);
            true
        } else {
            false
        }
    }

    /// Number of *distinct sites* each kind triggered at, in
    /// [`FaultKind::ALL`] order. Calling the same site twice counts once,
    /// which is what makes the counts replay-stable.
    pub fn injected(&self) -> [u64; FaultKind::ALL.len()] {
        let sites = self.sites.lock().unwrap();
        std::array::from_fn(|i| sites[i].len() as u64)
    }

    /// Total distinct triggered sites over all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected().iter().sum()
    }

    /// Bytes observed through [`FaultHooks::on_transfer`] for one
    /// class/locality cell.
    pub fn observed_bytes(&self, class: TrafficClass, locality: Locality) -> u64 {
        *self
            .transfers
            .lock()
            .unwrap()
            .get(&(class, locality))
            .unwrap_or(&0)
    }

    /// Build the torus-link degradations this plan assigns to an
    /// `nodes`-node machine (factor 2–8 on each slowed link). Sites are
    /// recorded under [`FaultKind::LinkSlow`] as a side effect.
    pub fn link_faults(&self, nodes: u32) -> LinkFaults {
        let mut faults = LinkFaults::default();
        for node in 0..nodes {
            for dim in 0..3u8 {
                for plus in [false, true] {
                    let ids = [node as u64, dim as u64, plus as u64];
                    if self.hit(FaultKind::LinkSlow, SALT_LINK, &ids) {
                        let site = self.site(SALT_LINK, &ids);
                        let factor = 2.0 + 6.0 * Self::value_of(site ^ 0xf00d);
                        faults.slow_link(node, dim, plus, factor);
                    }
                }
            }
        }
        faults
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("spec", &self.spec)
            .finish()
    }
}

impl FaultHooks for FaultPlan {
    fn dead_producer(&self, var: u64, version: u64, owner: ClientId, piece: u64) -> bool {
        self.hit(
            FaultKind::DeadProducer,
            SALT_DEAD,
            &[var, version, owner as u64, piece],
        )
    }

    fn on_pull(&self, name: u64, version: u64, piece: u64) -> FaultAction {
        let drop_rate = self.spec.rate(FaultKind::DropPull);
        let delay_rate = self.spec.rate(FaultKind::DelayPull);
        if drop_rate <= 0.0 && delay_rate <= 0.0 {
            return FaultAction::Proceed;
        }
        // One roll decides both outcomes so a site's fate is stable no
        // matter how many times (or from how many threads) it is pulled.
        let site = self.site(SALT_PULL, &[name, version, piece]);
        let v = Self::value_of(site);
        if v < drop_rate {
            self.sites.lock().unwrap()[FaultKind::DropPull.idx()].insert(site);
            FaultAction::Drop
        } else if v < drop_rate + delay_rate {
            self.sites.lock().unwrap()[FaultKind::DelayPull.idx()].insert(site);
            FaultAction::Delay(Duration::from_millis(1 + site % 4))
        } else {
            FaultAction::Proceed
        }
    }

    fn dht_core_down(&self, core: usize) -> bool {
        self.hit(FaultKind::DhtBlackout, SALT_DHT, &[core as u64])
    }

    fn staging_exhausted(&self, node: NodeId) -> bool {
        self.hit(FaultKind::StageFull, SALT_STAGE, &[node as u64])
    }

    fn on_transfer(&self, class: TrafficClass, locality: Locality, bytes: u64) {
        *self
            .transfers
            .lock()
            .unwrap()
            .entry((class, locality))
            .or_insert(0) += bytes;
    }

    fn on_net(&self, op: NetOp, kind: u8, a: u64, b: u64) -> FaultAction {
        // The wire transport offers data-plane frames (pull-data) and
        // telemetry batches to the send/recv sites; the frame kind
        // participates in the site hash so distinct protocol revisions
        // reroll. Telemetry batches roll their own kind *op-independently*
        // on (node, batch): the shipper and the hub consult different
        // plan instances, and with a shared seed a doomed batch is
        // dropped consistently at both ends instead of rolling twice.
        if kind == TELEMETRY_FRAME_KIND && op != NetOp::Connect {
            return if self.hit(FaultKind::NetTelemetry, SALT_NET_TELEMETRY, &[a, b]) {
                FaultAction::Drop
            } else {
                FaultAction::Proceed
            };
        }
        let (fault, salt) = match op {
            NetOp::Connect => (FaultKind::NetConnect, SALT_NET_CONNECT),
            NetOp::Send => (FaultKind::NetSend, SALT_NET_SEND),
            NetOp::Recv => (FaultKind::NetRecv, SALT_NET_RECV),
        };
        if self.hit(fault, salt, &[kind as u64, a, b]) {
            return FaultAction::Drop;
        }
        // A slow torus link, felt on the real wire: the pull-data send
        // is held 15-50 ms before it is written. Same kind (and salt)
        // as the time model's link degradation, rolled per logical
        // frame so a degraded path stays degraded across retries —
        // this is the signal the service watchdog's stall detector
        // reacts to.
        if op == NetOp::Send {
            let site = self.site(SALT_LINK, &[kind as u64, a, b]);
            if self.hit(FaultKind::LinkSlow, SALT_LINK, &[kind as u64, a, b]) {
                return FaultAction::Delay(Duration::from_millis(15 + site % 36));
            }
        }
        FaultAction::Proceed
    }

    fn shm_attach_fails(&self, node: NodeId, segment: u64) -> bool {
        // Op-independent like telemetry batches: the producer consults
        // its plan at segment creation, the consumer at attach, and the
        // (node, segment) site hashes identically on both ends — a
        // doomed pair degrades to TCP consistently instead of leaving
        // one side waiting on a ring the other abandoned.
        self.hit(
            FaultKind::ShmAttach,
            SALT_SHM_ATTACH,
            &[node as u64, segment],
        )
    }

    fn on_sub_push(&self, var: u64, version: u64, subscriber: ClientId, piece: u64) -> FaultAction {
        if self.hit(
            FaultKind::SubPush,
            SALT_SUB_PUSH,
            &[var, version, subscriber as u64, piece],
        ) {
            FaultAction::Drop
        } else {
            FaultAction::Proceed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_presets_and_lists() {
        assert!(FaultSpec::parse("none").unwrap().is_inert());
        assert_eq!(FaultSpec::parse("standard").unwrap(), FaultSpec::standard());
        let s = FaultSpec::parse("dead-producer:1, drop-pull:0.25").unwrap();
        assert_eq!(s.rate(FaultKind::DeadProducer), 1.0);
        assert_eq!(s.rate(FaultKind::DropPull), 0.25);
        assert_eq!(s.rate(FaultKind::DhtBlackout), 0.0);
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(FaultSpec::parse("frogs:0.5")
            .unwrap_err()
            .contains("unknown"));
        assert!(FaultSpec::parse("dead-producer")
            .unwrap_err()
            .contains("kind:rate"));
        assert!(FaultSpec::parse("dead-producer:2")
            .unwrap_err()
            .contains("outside"));
        assert!(FaultSpec::parse("dead-producer:x")
            .unwrap_err()
            .contains("bad rate"));
    }

    #[test]
    fn canonical_round_trips() {
        for spec in [
            FaultSpec::none(),
            FaultSpec::standard(),
            FaultSpec::none().with_rate(FaultKind::LinkSlow, 0.125),
        ] {
            assert_eq!(FaultSpec::parse(&spec.canonical()).unwrap(), spec);
        }
    }

    #[test]
    fn same_site_same_fate() {
        let plan = FaultPlan::new(7, FaultSpec::standard());
        let first = plan.on_pull(3, 1, 9);
        for _ in 0..10 {
            assert_eq!(plan.on_pull(3, 1, 9), first);
        }
        // Re-rolling an already-triggered site never double counts.
        let c1 = plan.injected();
        plan.on_pull(3, 1, 9);
        assert_eq!(plan.injected(), c1);
    }

    #[test]
    fn plans_replay_identically() {
        let a = FaultPlan::new(42, FaultSpec::standard());
        let b = FaultPlan::new(42, FaultSpec::standard());
        for core in 0..64 {
            assert_eq!(a.dht_core_down(core), b.dht_core_down(core));
        }
        for piece in 0..64 {
            assert_eq!(
                a.dead_producer(1, 0, 2, piece),
                b.dead_producer(1, 0, 2, piece)
            );
        }
        for piece in 0..64 {
            assert_eq!(a.on_sub_push(1, 0, 2, piece), b.on_sub_push(1, 0, 2, piece));
        }
        assert_eq!(a.injected(), b.injected());
        assert_eq!(a.link_faults(27), b.link_faults(27));
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(1, FaultSpec::standard());
        let b = FaultPlan::new(2, FaultSpec::standard());
        let hits_a: Vec<bool> = (0..256).map(|c| a.dht_core_down(c)).collect();
        let hits_b: Vec<bool> = (0..256).map(|c| b.dht_core_down(c)).collect();
        assert_ne!(hits_a, hits_b);
    }

    #[test]
    fn inert_spec_never_fires() {
        let plan = FaultPlan::new(99, FaultSpec::none());
        for i in 0..32u32 {
            assert!(!plan.dead_producer(i as u64, 0, 0, 0));
            assert!(matches!(plan.on_pull(i as u64, 0, 0), FaultAction::Proceed));
            assert!(!plan.dht_core_down(i as usize));
            assert!(!plan.staging_exhausted(i));
        }
        assert!(plan.link_faults(64).is_empty());
        assert_eq!(plan.injected_total(), 0);
    }

    #[test]
    fn net_sites_are_deterministic_and_per_op() {
        let spec = FaultSpec::none()
            .with_rate(FaultKind::NetRecv, 1.0)
            .with_rate(FaultKind::NetConnect, 0.5);
        let a = FaultPlan::new(11, spec);
        let b = FaultPlan::new(11, spec);
        // Full-rate recv drops every frame; sends were not requested.
        assert_eq!(a.on_net(NetOp::Recv, 7, 3, 9), FaultAction::Drop);
        assert_eq!(a.on_net(NetOp::Send, 7, 3, 9), FaultAction::Proceed);
        // Connect fate per peer replays across plans and retries.
        for node in 0..32u64 {
            let first = a.on_net(NetOp::Connect, 0, node, 0);
            assert_eq!(first, a.on_net(NetOp::Connect, 0, node, 0));
            assert_eq!(first, b.on_net(NetOp::Connect, 0, node, 0));
        }
        assert_eq!(
            a.injected()[FaultKind::NetConnect.idx()],
            b.injected()[FaultKind::NetConnect.idx()]
        );
        assert_eq!(a.injected()[FaultKind::NetRecv.idx()], 1);
        assert_eq!(a.injected()[FaultKind::NetSend.idx()], 0);
    }

    #[test]
    fn net_slugs_parse() {
        let s = FaultSpec::parse("net-connect:1,net-send:0.5,net-recv:0.25").unwrap();
        assert_eq!(s.rate(FaultKind::NetConnect), 1.0);
        assert_eq!(s.rate(FaultKind::NetSend), 0.5);
        assert_eq!(s.rate(FaultKind::NetRecv), 0.25);
        assert_eq!(FaultSpec::parse(&s.canonical()).unwrap(), s);
        let t = FaultSpec::parse("net-telemetry:0.5").unwrap();
        assert_eq!(t.rate(FaultKind::NetTelemetry), 0.5);
        assert_eq!(FaultSpec::parse(&t.canonical()).unwrap(), t);
        let u = FaultSpec::parse("shm-attach:0.75").unwrap();
        assert_eq!(u.rate(FaultKind::ShmAttach), 0.75);
        assert_eq!(FaultSpec::parse(&u.canonical()).unwrap(), u);
        let v = FaultSpec::parse("sub-push:0.3").unwrap();
        assert_eq!(v.rate(FaultKind::SubPush), 0.3);
        assert_eq!(FaultSpec::parse(&v.canonical()).unwrap(), v);
    }

    #[test]
    fn shm_attach_rolls_op_independently_on_both_ends() {
        let spec = FaultSpec::none().with_rate(FaultKind::ShmAttach, 0.5);
        let producer = FaultPlan::new(21, spec);
        let consumer = FaultPlan::new(21, spec);
        // Producer (at create) and consumer (at attach) consult separate
        // plan instances; a shared seed makes every pair's fate agree.
        for node in 0..4u32 {
            for segment in 0..16u64 {
                assert_eq!(
                    producer.shm_attach_fails(node, segment),
                    consumer.shm_attach_fails(node, segment),
                );
            }
        }
        assert_eq!(
            producer.injected()[FaultKind::ShmAttach.idx()],
            consumer.injected()[FaultKind::ShmAttach.idx()]
        );
        // The half-rate spec both hits and spares some of the 64 pairs.
        let hits = producer.injected()[FaultKind::ShmAttach.idx()];
        assert!(hits > 0 && hits < 64, "half-rate spec hit {hits} of 64");
        // An inert plan never fails an attach.
        assert!(!FaultPlan::new(21, FaultSpec::none()).shm_attach_fails(0, 1));
    }

    #[test]
    fn telemetry_batches_roll_their_own_kind_op_independently() {
        let spec = FaultSpec::none().with_rate(FaultKind::NetTelemetry, 1.0);
        let plan = FaultPlan::new(5, spec);
        // Every telemetry batch drops; data-plane frames are untouched
        // even at the same (a, b) identity, because only the telemetry
        // kind was rated.
        assert_eq!(
            plan.on_net(NetOp::Send, TELEMETRY_FRAME_KIND, 0, 0),
            FaultAction::Drop
        );
        assert_eq!(plan.on_net(NetOp::Send, 6, 0, 0), FaultAction::Proceed);
        // Send and recv agree on a batch's fate: one roll per (node,
        // batch), not per op — the sender's and receiver's plans (same
        // seed) cannot disagree.
        let sender = FaultPlan::new(9, FaultSpec::none().with_rate(FaultKind::NetTelemetry, 0.5));
        let receiver = FaultPlan::new(9, FaultSpec::none().with_rate(FaultKind::NetTelemetry, 0.5));
        for node in 0..4u64 {
            for batch in 0..16u64 {
                assert_eq!(
                    sender.on_net(NetOp::Send, TELEMETRY_FRAME_KIND, node, batch),
                    receiver.on_net(NetOp::Recv, TELEMETRY_FRAME_KIND, node, batch),
                );
            }
        }
        // And a rated mix actually drops something *and* spares something.
        let hits = sender.injected()[FaultKind::NetTelemetry.idx()];
        assert!(hits > 0 && hits < 64, "half-rate spec hit {hits} of 64");
    }

    #[test]
    fn sub_push_drops_replay_and_spare_some_sites() {
        let spec = FaultSpec::none().with_rate(FaultKind::SubPush, 0.5);
        let a = FaultPlan::new(42, spec);
        let b = FaultPlan::new(42, spec);
        for version in 0..8u64 {
            for piece in 0..8u64 {
                assert_eq!(
                    a.on_sub_push(7, version, 3, piece),
                    b.on_sub_push(7, version, 3, piece),
                );
            }
        }
        let hits = a.injected()[FaultKind::SubPush.idx()];
        assert!(hits > 0 && hits < 64, "half-rate spec hit {hits} of 64");
        assert_eq!(hits, b.injected()[FaultKind::SubPush.idx()]);
        // An inert plan never drops a push.
        assert_eq!(
            FaultPlan::new(42, FaultSpec::none()).on_sub_push(7, 0, 3, 0),
            FaultAction::Proceed
        );
    }

    #[test]
    fn transfers_accumulate_per_cell() {
        let plan = FaultPlan::new(0, FaultSpec::none());
        plan.on_transfer(TrafficClass::InterApp, Locality::Network, 100);
        plan.on_transfer(TrafficClass::InterApp, Locality::Network, 20);
        plan.on_transfer(TrafficClass::IntraApp, Locality::SharedMemory, 7);
        assert_eq!(
            plan.observed_bytes(TrafficClass::InterApp, Locality::Network),
            120
        );
        assert_eq!(
            plan.observed_bytes(TrafficClass::IntraApp, Locality::SharedMemory),
            7
        );
        assert_eq!(plan.observed_bytes(TrafficClass::Dht, Locality::Network), 0);
    }
}
