//! The chaos harness: run fuzzed cases under injected faults and check
//! cross-layer invariants.
//!
//! Each case runs the threaded executor with a seeded [`FaultPlan`]
//! installed, then asserts properties that must hold *whatever* the
//! faults did:
//!
//! - delivered data always verifies against the field function,
//! - no operator error without an injected fault behind it,
//! - every fault surfaces as a typed [`CodsError`] (never a panic or a
//!   silent wrong answer), with timeouts naming the owning client,
//! - telemetry balances: `cods.put` = staged buffers + `cods.evictions`
//!   + dead-producer orphans,
//! - the ledger's observer tap agrees with its snapshot byte-for-byte,
//! - fault-free cases are ledger-equivalent to the modeled executor,
//! - link slowdowns never make a modeled retrieve *faster*.
//!
//! The whole run is a pure function of `(seed, cases, fault spec)`; the
//! rendered report is byte-identical across invocations, so CI can diff
//! two consecutive runs to prove replayability.

use crate::generator::{dag_round_trip, random_workflow, CaseSpec};
use crate::plan::{FaultKind, FaultPlan, FaultSpec};
use crate::shrink::{reproducer, shrink};
use insitu::{run_modeled, run_threaded_configured, MappingStrategy, ThreadedConfig};
use insitu_cods::CodsError;
use insitu_fabric::{
    estimate_retrieve_times_faulted, ClientRetrieve, FaultInjector, LinkFaults, Locality,
    NetworkModel, TorusTopology, TrafficClass, Transfer,
};
use insitu_obs::{EventKind, FlightRecorder};
use insitu_telemetry::Recorder;
use insitu_util::rng::SplitMix64;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Derive the per-case seed from the run seed and the case index.
pub fn case_seed(seed: u64, idx: u64) -> u64 {
    let mut rng = SplitMix64::new(seed ^ idx.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    rng.next_u64()
}

/// Everything one case produced: what was injected, what errored, which
/// invariants broke, and the deterministic telemetry slice.
#[derive(Clone, Debug)]
pub struct CaseOutcome {
    /// Case index within the run.
    pub idx: u64,
    /// The generated (or replayed) case.
    pub case: CaseSpec,
    /// Distinct fault sites triggered, per [`FaultKind::ALL`] entry.
    pub injected: [u64; FaultKind::ALL.len()],
    /// Typed operator errors, rendered `app/rank: message`, sorted.
    pub errors: Vec<String>,
    /// Invariant violations (empty means the case passed).
    pub violations: Vec<String>,
    /// Replay-stable counters (racy ones — schedule-cache hits, DHT
    /// traffic, transport tallies — are deliberately excluded).
    pub counters: BTreeMap<String, u64>,
}

impl CaseOutcome {
    /// `true` when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Total injected fault sites across all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected.iter().sum()
    }
}

/// Generate case `idx` of a run and execute it.
pub fn run_case(seed: u64, idx: u64, spec: &FaultSpec) -> CaseOutcome {
    let mut rng = SplitMix64::new(case_seed(seed, idx));
    // Standalone DAG-parser fuzzing rides along with every case.
    let dag_violation = dag_round_trip(&random_workflow(&mut rng)).err();
    let case = CaseSpec::generate(&mut rng);
    let mut outcome = run_case_spec(seed, idx, spec, &case);
    if let Some(v) = dag_violation {
        outcome.violations.insert(0, format!("random DAG: {v}"));
    }
    outcome
}

/// Execute one explicit case (the replay/shrink entry point): install the
/// fault plan, run the threaded executor, check every invariant.
pub fn run_case_spec(seed: u64, idx: u64, spec: &FaultSpec, case: &CaseSpec) -> CaseOutcome {
    let cseed = case_seed(seed, idx);
    let scenario = case.scenario();
    let mut violations = Vec::new();

    if let Err(v) = dag_round_trip(&scenario.workflow) {
        violations.push(format!("scenario DAG: {v}"));
    }

    let plan = Arc::new(FaultPlan::new(cseed, *spec));
    let recorder = Recorder::enabled();
    let flight = FlightRecorder::enabled();
    let cfg = ThreadedConfig {
        get_timeout: Duration::from_millis(400),
        injector: FaultInjector::new(plan.clone()),
        flight: flight.clone(),
        ..Default::default()
    };
    let outcome = run_threaded_configured(&scenario, MappingStrategy::DataCentric, &recorder, &cfg);
    let snap = recorder.metrics_snapshot();
    let ledger = &outcome.ledger;

    // Time-model faults: slowing links must never speed a retrieve up,
    // and an empty fault set must not perturb the estimate at all.
    let nodes = outcome.mapped.machine.nodes;
    let link_faults = plan.link_faults(nodes);
    let retrieves = synthesized_retrieves(cseed, nodes);
    let topo = TorusTopology::cubic_for(nodes);
    let model = NetworkModel::default();
    let healthy =
        estimate_retrieve_times_faulted(&model, &topo, &retrieves, &LinkFaults::default());
    let faulted = estimate_retrieve_times_faulted(&model, &topo, &retrieves, &link_faults);
    if link_faults.is_empty() {
        if healthy != faulted {
            violations.push("empty link-fault set changed time estimates".into());
        }
    } else {
        for (i, (h, f)) in healthy.iter().zip(&faulted).enumerate() {
            if *f < *h - 1e-9 {
                violations.push(format!(
                    "slowed links made retrieve {i} faster: {f:.6} < {h:.6} ms"
                ));
            }
        }
    }

    // Snapshot injections only after every fault site (including the
    // link-fault sweep above) has been consulted.
    let injected = plan.injected();
    let injected_total: u64 = injected.iter().sum();

    // Injected faults must be visible in the causal flight log: every
    // distinct data-plane site that fired left at least one typed fault
    // event (link-slow and DHT blackouts have no event site — the former
    // only biases the time model, the latter shows as missing DHT cores).
    let mut fault_events: BTreeMap<&str, u64> = BTreeMap::new();
    for e in flight.snapshot() {
        if let EventKind::Fault { kind } = e.kind {
            *fault_events.entry(kind).or_insert(0) += 1;
        }
    }
    for kind in [
        FaultKind::DeadProducer,
        FaultKind::DropPull,
        FaultKind::DelayPull,
        FaultKind::StageFull,
        FaultKind::SubPush,
    ] {
        let sites = injected[kind.idx()];
        let seen = fault_events.get(kind.slug()).copied().unwrap_or(0);
        if seen < sites {
            violations.push(format!(
                "flight log shows {seen} {} events but {sites} distinct sites fired",
                kind.slug()
            ));
        }
    }

    // Delivered data is never silently wrong, faulted or not.
    if outcome.verify_failures > 0 {
        violations.push(format!(
            "{} delivered cells failed verification",
            outcome.verify_failures
        ));
    }

    // Errors only ever happen because we injected something.
    if !outcome.errors.is_empty() && injected_total == 0 {
        violations.push(format!(
            "{} operator errors without any injected fault",
            outcome.errors.len()
        ));
    }

    // Every surfaced fault is a typed CodsError whose message carries
    // enough identity to debug it; timeouts must name the owner rank.
    for (app, rank, err) in &outcome.errors {
        let msg = err.to_string();
        if msg.is_empty() {
            violations.push(format!("app{app}/r{rank}: error with empty message"));
        }
        if matches!(err, CodsError::Timeout { .. }) && !msg.contains("from client") {
            violations.push(format!(
                "app{app}/r{rank}: timeout does not name the owning client: {msg}"
            ));
        }
    }

    // Telemetry balance: every successful put is still staged, was
    // evicted, or was orphaned by an injected dead producer.
    let puts = snap.counter("cods.put");
    let evictions = snap.counter("cods.evictions");
    let orphans = injected[FaultKind::DeadProducer.idx()];
    if puts != outcome.staged_buffers + evictions + orphans {
        violations.push(format!(
            "put/staging imbalance: puts={} staged={} evictions={} orphans={}",
            puts, outcome.staged_buffers, evictions, orphans
        ));
    }

    // The ledger's observer tap saw exactly what its snapshot reports.
    for class in TrafficClass::ALL {
        let pairs = [
            (Locality::SharedMemory, ledger.shm_bytes(class)),
            (Locality::Network, ledger.network_bytes(class)),
        ];
        for (loc, expect) in pairs {
            let seen = plan.observed_bytes(class, loc);
            if seen != expect {
                violations.push(format!(
                    "observer saw {seen} bytes of {class:?}/{loc:?}, ledger says {expect}"
                ));
            }
        }
    }

    // A case in which nothing fired must match the modeled executor's
    // coupled/halo byte accounting exactly.
    if injected_total == 0 {
        if !outcome.errors.is_empty() {
            violations.push("errors on a case with zero injected faults".into());
        }
        let modeled = run_modeled(&scenario, MappingStrategy::DataCentric);
        for class in [TrafficClass::InterApp, TrafficClass::IntraApp] {
            let (t_shm, m_shm) = (ledger.shm_bytes(class), modeled.ledger.shm_bytes(class));
            let (t_net, m_net) = (
                ledger.network_bytes(class),
                modeled.ledger.network_bytes(class),
            );
            if (t_shm, t_net) != (m_shm, m_net) {
                violations.push(format!(
                    "executor divergence on {class:?}: threaded shm/net {t_shm}/{t_net}, modeled {m_shm}/{m_net}"
                ));
            }
        }
    }

    let errors = outcome
        .errors
        .iter()
        .map(|(app, rank, e)| format!("app{app}/r{rank}: {e}"))
        .collect();

    let mut counters = BTreeMap::new();
    // `sub.deliveries` is deliberately excluded: a delivery degrades to a
    // timed-out take (healed by the resync get) under scheduler stalls,
    // so only the producer-side push tallies are replay-stable.
    for key in ["cods.put", "cods.get", "sub.pushes", "sub.push_drops"] {
        counters.insert(key.to_string(), snap.counter(key));
    }
    // Eviction tallies (and the staged-buffer remainder, which is
    // puts - evictions) are replay-stable only without a standing
    // query: a subscribed producer's reclaim wait races the monitor's
    // take-timeout -> resync-get path, so whether a version is
    // reclaimed before the deadline is wall-clock-dependent.
    if !(case.concurrent && case.sub_every >= 1) {
        counters.insert("cods.evictions".into(), snap.counter("cods.evictions"));
        counters.insert("staged_buffers".into(), outcome.staged_buffers);
    }
    for class in [
        TrafficClass::InterApp,
        TrafficClass::IntraApp,
        TrafficClass::Control,
    ] {
        counters.insert(
            format!("bytes.{}.shm", class.slug()),
            ledger.shm_bytes(class),
        );
        counters.insert(
            format!("bytes.{}.net", class.slug()),
            ledger.network_bytes(class),
        );
    }

    CaseOutcome {
        idx,
        case: case.clone(),
        injected,
        errors,
        violations,
        counters,
    }
}

/// A deterministic pull set for exercising the faulted time model on an
/// `nodes`-node torus.
fn synthesized_retrieves(cseed: u64, nodes: u32) -> Vec<ClientRetrieve> {
    let mut rng = SplitMix64::new(cseed ^ 0x11ce_0000_0000_0001);
    (0..6)
        .map(|_| ClientRetrieve {
            dst_node: rng.range_u32(0, nodes.max(1)),
            transfers: (0..rng.range_usize(1, 4))
                .map(|_| Transfer::new(rng.range_u32(0, nodes.max(1)), rng.range_u64(1, 1 << 20)))
                .collect(),
            dht_queries: rng.range_u32(0, 3),
        })
        .collect()
}

/// The result of a whole chaos run.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Run seed.
    pub seed: u64,
    /// Fault rates the run injected.
    pub spec: FaultSpec,
    /// Per-case outcomes, in case order.
    pub cases: Vec<CaseOutcome>,
    /// Ready-to-paste minimal reproducer for the first violating case.
    pub reproducer: Option<String>,
}

impl ChaosReport {
    /// Total invariant violations across all cases.
    pub fn violations(&self) -> usize {
        self.cases.iter().map(|c| c.violations.len()).sum()
    }

    /// Render the deterministic text report (byte-identical across runs
    /// of the same seed/cases/spec).
    pub fn render(&self) -> String {
        let mut out = format!(
            "insitu-chaos seed={} cases={} faults={}\n",
            self.seed,
            self.cases.len(),
            self.spec.canonical()
        );
        for c in &self.cases {
            let inj: Vec<String> = FaultKind::ALL
                .iter()
                .zip(&c.injected)
                .filter(|(_, &n)| n > 0)
                .map(|(k, n)| format!("{}={n}", k.slug()))
                .collect();
            let inj = if inj.is_empty() {
                "clean".to_string()
            } else {
                inj.join(",")
            };
            out.push_str(&format!(
                "case {:03} [{}] {} errors={} {}\n",
                c.idx,
                c.case.label(),
                inj,
                c.errors.len(),
                if c.ok() { "ok" } else { "VIOLATION" }
            ));
            for v in &c.violations {
                out.push_str(&format!("  violation: {v}\n"));
            }
        }
        // Replay-stable telemetry aggregate over all cases.
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        for c in &self.cases {
            for (k, v) in &c.counters {
                *totals.entry(k.clone()).or_insert(0) += v;
            }
        }
        out.push_str("telemetry (replay-stable aggregate):\n");
        for (k, v) in &totals {
            out.push_str(&format!("  {k} = {v}\n"));
        }
        let faulted = self.cases.iter().filter(|c| c.injected_total() > 0).count();
        let errors: usize = self.cases.iter().map(|c| c.errors.len()).sum();
        out.push_str(&format!(
            "summary: cases={} faulted={} errors={} violations={}\n",
            self.cases.len(),
            faulted,
            errors,
            self.violations()
        ));
        if let Some(rep) = &self.reproducer {
            out.push_str("minimal reproducer for first violation:\n");
            out.push_str(rep);
            if !rep.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }
}

/// Run `cases` fuzzed workflow cases from `seed` under `spec`, shrinking
/// the first violating case (if any) to a minimal reproducer.
pub fn run_chaos(seed: u64, cases: u64, spec: &FaultSpec) -> ChaosReport {
    let outcomes: Vec<CaseOutcome> = (0..cases).map(|idx| run_case(seed, idx, spec)).collect();
    let reproducer = outcomes
        .iter()
        .find(|c| !c.ok())
        .map(|bad| shrink_to_reproducer(seed, bad, spec));
    ChaosReport {
        seed,
        spec: *spec,
        cases: outcomes,
        reproducer,
    }
}

/// Shrink a violating case and render it as a paste-ready `#[test]`.
pub fn shrink_to_reproducer(seed: u64, bad: &CaseOutcome, spec: &FaultSpec) -> String {
    let idx = bad.idx;
    let minimal = shrink(&bad.case, &|cand| {
        !run_case_spec(seed, idx, spec, cand).violations.is_empty()
    });
    let witness = run_case_spec(seed, idx, spec, &minimal);
    let reason = witness
        .violations
        .first()
        .cloned()
        .unwrap_or_else(|| bad.violations.first().cloned().unwrap_or_default());
    reproducer(seed, idx, spec, &minimal, &reason)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seed_is_stable_and_spreads() {
        assert_eq!(case_seed(42, 3), case_seed(42, 3));
        assert_ne!(case_seed(42, 3), case_seed(42, 4));
        assert_ne!(case_seed(42, 3), case_seed(43, 3));
    }

    #[test]
    fn fault_free_cases_pass_all_invariants() {
        let spec = FaultSpec::none();
        for idx in 0..4 {
            let c = run_case(7, idx, &spec);
            assert!(c.ok(), "case {idx} violated: {:?}", c.violations);
            assert_eq!(c.injected_total(), 0);
            assert!(c.errors.is_empty());
        }
    }

    #[test]
    fn chaos_run_is_replayable() {
        let spec = FaultSpec::standard();
        let a = run_chaos(42, 4, &spec);
        let b = run_chaos(42, 4, &spec);
        assert_eq!(a.render(), b.render());
    }

    /// A standing query pulled into a fault-free case must keep every
    /// invariant — in particular the modeled executor now accounts the
    /// push fragments and verify gets, so the ledger comparison holds.
    #[test]
    fn fault_free_subscribed_case_matches_modeled_ledger() {
        let case = CaseSpec {
            concurrent: true,
            pgrid: vec![2, 1],
            cgrid: vec![1, 2],
            c2grid: vec![1, 1],
            region_side: 3,
            pattern: 0,
            iterations: 2,
            halo: 1,
            cores_per_node: 2,
            subregion: false,
            sub_every: 1,
        };
        let c = run_case_spec(9, 0, &FaultSpec::none(), &case);
        assert!(c.ok(), "violations: {:?}", c.violations);
        assert!(c.errors.is_empty());
        // 2 producer pieces x 2 on-stride versions reach the monitor.
        assert_eq!(c.counters["sub.pushes"], 4);
        assert_eq!(c.counters["sub.push_drops"], 0);
    }

    /// Killing every push leaves the subscriber on the resync-get path:
    /// drops are injected and recorded, data still verifies, and no
    /// invariant breaks.
    #[test]
    fn dropped_pushes_heal_through_resync_gets() {
        let spec = FaultSpec::none().with_rate(crate::FaultKind::SubPush, 1.0);
        let case = CaseSpec {
            concurrent: true,
            pgrid: vec![2, 1],
            cgrid: vec![1, 1],
            c2grid: vec![1, 1],
            region_side: 2,
            pattern: 0,
            iterations: 2,
            halo: 0,
            cores_per_node: 2,
            subregion: false,
            sub_every: 1,
        };
        let c = run_case_spec(4, 0, &spec, &case);
        assert!(c.ok(), "violations: {:?}", c.violations);
        assert!(c.injected[crate::FaultKind::SubPush.idx()] > 0);
        assert_eq!(c.counters["sub.pushes"], 0, "every push was dropped");
        assert_eq!(c.counters["sub.push_drops"], 4);
    }

    #[test]
    fn injected_faults_surface_as_typed_errors_not_panics() {
        // Kill every pull: consumers must report timeouts, not panic, and
        // the invariants must still hold.
        let spec = FaultSpec::none().with_rate(crate::FaultKind::DropPull, 1.0);
        let case = CaseSpec {
            concurrent: true,
            pgrid: vec![1, 1],
            cgrid: vec![1, 1],
            c2grid: vec![1, 1],
            region_side: 2,
            pattern: 0,
            iterations: 1,
            halo: 0,
            cores_per_node: 2,
            subregion: false,
            sub_every: 0,
        };
        let c = run_case_spec(1, 0, &spec, &case);
        assert!(c.ok(), "violations: {:?}", c.violations);
        assert!(!c.errors.is_empty(), "dropped pulls must surface");
        assert!(c.injected[crate::FaultKind::DropPull.idx()] > 0);
    }
}
