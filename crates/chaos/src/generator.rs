//! Randomized workflow cases: scenario fuzzing plus DAG-text round-trips.
//!
//! A [`CaseSpec`] is a small, fully-enumerable description of one fuzzed
//! workflow: coupling style (`*_cont` vs `*_seq`), process grids,
//! per-rank region size, distribution pattern pair, halo width, coupling
//! iterations, cores per node and an optional interface sub-region. It is
//! `Clone + PartialEq + Debug` so the shrinker can mutate and compare it,
//! and it renders itself as a Rust struct literal so a failing case can be
//! pasted straight into a `#[test]`.

use insitu::{
    concurrent_scenario_with_grids, pattern_pairs, sequential_scenario_with_grids, Scenario,
    SubscriptionSpec,
};
use insitu_domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_util::rng::SplitMix64;
use insitu_workflow::{parse_dag, AppSpec, WorkflowSpec};

/// One generated workflow case. All fields public so reproducers can be
/// written as plain struct literals.
#[derive(Clone, Debug, PartialEq)]
pub struct CaseSpec {
    /// `true` runs a 2-app concurrent (`*_cont`) coupling, `false` a
    /// 3-app sequential (`*_seq`) fan-out through the CoDS store.
    pub concurrent: bool,
    /// Producer process grid (1–3 dims of 1–2 ranks).
    pub pgrid: Vec<u64>,
    /// First consumer process grid (same rank count rules).
    pub cgrid: Vec<u64>,
    /// Second consumer grid, used only by sequential cases.
    pub c2grid: Vec<u64>,
    /// Cells per producer rank per dimension (domain = pgrid × side).
    pub region_side: u64,
    /// Index into [`pattern_pairs`] (0–4).
    pub pattern: usize,
    /// Coupling iterations (data versions).
    pub iterations: u64,
    /// Stencil halo width for intra-app exchanges.
    pub halo: u64,
    /// Cores per simulated node.
    pub cores_per_node: u32,
    /// Couple only the lower-corner half of the domain instead of all
    /// of it (the interface-region case).
    pub subregion: bool,
    /// Standing-query stride: `0` means no subscription; `k >= 1` adds a
    /// one-task monitor app holding a whole-domain subscription pushed
    /// every `k`-th version. Effective on concurrent cases only — a
    /// sequential case's monitor would sit in a later bundle, so its
    /// resync gets could never overlap the producers.
    pub sub_every: u64,
}

impl CaseSpec {
    /// Draw a random case from `rng`.
    pub fn generate(rng: &mut SplitMix64) -> CaseSpec {
        let ndim = rng.range_usize(2, 4); // 2-D or 3-D domains
        let grid =
            |rng: &mut SplitMix64| -> Vec<u64> { (0..ndim).map(|_| rng.range_u64(1, 3)).collect() };
        CaseSpec {
            concurrent: rng.bool(),
            pgrid: grid(rng),
            cgrid: grid(rng),
            c2grid: grid(rng),
            region_side: rng.range_u64(2, 5),
            pattern: rng.range_usize(0, 5),
            iterations: rng.range_u64(1, 3),
            halo: rng.range_u64(0, 3),
            cores_per_node: rng.range_u32(1, 3) * 2,
            subregion: rng.f64() < 0.25,
            sub_every: if rng.f64() < 0.4 {
                rng.range_u64(1, 3)
            } else {
                0
            },
        }
    }

    /// Materialize the full [`Scenario`] this case describes.
    pub fn scenario(&self) -> Scenario {
        let pattern = pattern_pairs(&vec![1; self.pgrid.len()])[self.pattern];
        let mut s = if self.concurrent {
            concurrent_scenario_with_grids(&self.pgrid, &self.cgrid, self.region_side, pattern)
        } else {
            sequential_scenario_with_grids(
                &self.pgrid,
                &self.cgrid,
                &self.c2grid,
                self.region_side,
                pattern,
            )
        };
        s.cores_per_node = self.cores_per_node;
        s.halo = self.halo;
        s = s.with_iterations(self.iterations);
        if self.subregion {
            let domain = *s.decomposition(1).domain();
            let lower = vec![0u64; domain.ndim()];
            let upper: Vec<u64> = (0..domain.ndim())
                .map(|d| domain.extent(d).div_ceil(2) - 1)
                .collect();
            let region = BoundingBox::new(&lower, &upper);
            for c in &mut s.couplings {
                c.region = Some(region);
            }
        }
        if self.concurrent && self.sub_every >= 1 {
            let domain = *s.decomposition(1).domain();
            let mdec = Decomposition::new(
                domain,
                ProcessGrid::new(&vec![1; self.pgrid.len()]),
                Distribution::Blocked,
            );
            s.workflow
                .apps
                .push(AppSpec::new(3, "MON", 1).with_decomposition(mdec));
            s.workflow.bundles[0].push(3);
            s.subscriptions.push(SubscriptionSpec {
                var: "coupled".into(),
                producer_app: 1,
                subscriber_app: 3,
                every_k: self.sub_every,
                region: None,
                queue_cap: 4,
            });
        }
        s
    }

    /// Render the case as a Rust struct literal for reproducers.
    pub fn literal(&self) -> String {
        format!(
            "insitu_chaos::CaseSpec {{\n        concurrent: {},\n        pgrid: vec!{:?},\n        cgrid: vec!{:?},\n        c2grid: vec!{:?},\n        region_side: {},\n        pattern: {},\n        iterations: {},\n        halo: {},\n        cores_per_node: {},\n        subregion: {},\n        sub_every: {},\n    }}",
            self.concurrent,
            self.pgrid,
            self.cgrid,
            self.c2grid,
            self.region_side,
            self.pattern,
            self.iterations,
            self.halo,
            self.cores_per_node,
            self.subregion,
            self.sub_every,
        )
    }

    /// A one-line human label for report lines.
    pub fn label(&self) -> String {
        let g = |v: &[u64]| v.iter().map(u64::to_string).collect::<Vec<_>>().join("x");
        let kind = if self.concurrent { "cont" } else { "seq" };
        let extra = if self.concurrent {
            String::new()
        } else {
            format!("+{}", g(&self.c2grid))
        };
        let sub = if self.concurrent && self.sub_every >= 1 {
            format!(" sub/k{}", self.sub_every)
        } else {
            String::new()
        };
        format!(
            "{kind} {}→{}{} side={} pat={} it={} halo={} cpn={}{}{}",
            g(&self.pgrid),
            g(&self.cgrid),
            extra,
            self.region_side,
            self.pattern,
            self.iterations,
            self.halo,
            self.cores_per_node,
            if self.subregion { " subregion" } else { "" },
            sub,
        )
    }
}

/// Render a workflow spec in the paper's Listing-1 DAG file syntax.
pub fn render_dag(w: &WorkflowSpec) -> String {
    let mut out = String::new();
    for a in &w.apps {
        out.push_str(&format!("APP_ID {}\n", a.id));
    }
    for (p, c) in &w.edges {
        out.push_str(&format!("PARENT_APPID {p} CHILD_APPID {c}\n"));
    }
    for b in &w.bundles {
        let ids: Vec<String> = b.iter().map(u32::to_string).collect();
        out.push_str(&format!("BUNDLE {}\n", ids.join(" ")));
    }
    out
}

/// Check that a workflow survives a DAG-text round-trip: render it in
/// Listing-1 syntax, re-parse, and compare ids, edges and bundles. Returns
/// a violation description on mismatch.
pub fn dag_round_trip(w: &WorkflowSpec) -> Result<(), String> {
    let text = render_dag(w);
    let parsed =
        parse_dag(&text).map_err(|e| format!("rendered DAG failed to parse: {e}\n{text}"))?;
    let ids = |w: &WorkflowSpec| w.apps.iter().map(|a| a.id).collect::<Vec<_>>();
    if ids(&parsed) != ids(w) {
        return Err(format!(
            "app ids changed in round-trip: {:?} vs {:?}",
            ids(&parsed),
            ids(w)
        ));
    }
    if parsed.edges != w.edges {
        return Err(format!(
            "edges changed in round-trip: {:?} vs {:?}",
            parsed.edges, w.edges
        ));
    }
    if parsed.bundles != w.bundles {
        return Err(format!(
            "bundles changed in round-trip: {:?} vs {:?}",
            parsed.bundles, w.bundles
        ));
    }
    parsed
        .validate()
        .map_err(|e| format!("round-tripped DAG fails validation: {e}"))
}

/// Generate a random *standalone* workflow DAG (apps, forward edges,
/// disjoint bundles) for parser fuzzing, independent of any scenario.
pub fn random_workflow(rng: &mut SplitMix64) -> WorkflowSpec {
    let n = rng.range_u32(1, 7);
    let apps: Vec<u32> = (1..=n).collect();
    let mut w = WorkflowSpec::default();
    for &id in &apps {
        w.apps
            .push(insitu_workflow::AppSpec::new(id, format!("app{id}"), 0));
    }
    // Forward edges only, so the DAG is acyclic by construction.
    let n = apps.len();
    let mut adj = vec![vec![false; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.f64() < 0.3 {
                w.edges.push((apps[i], apps[j]));
                adj[i][j] = true;
            }
        }
    }
    // Transitive closure (edges all point forward, so one pass works).
    for i in (0..n).rev() {
        for j in (i + 1)..n {
            if adj[i][j] {
                let reach_j = adj[j].clone();
                for (k, &reach) in reach_j.iter().enumerate() {
                    if reach {
                        adj[i][k] = true;
                    }
                }
            }
        }
    }
    // Greedy disjoint bundles of mutually independent apps: only bundle
    // an app with apps it neither reaches nor is reached by.
    let mut bundles: Vec<Vec<usize>> = Vec::new();
    for (i, row) in adj.iter().enumerate() {
        let fits = bundles
            .last()
            .is_some_and(|b| b.iter().all(|&m| !adj[m][i] && !row[m]));
        if fits && rng.bool() {
            bundles.last_mut().unwrap().push(i);
        } else {
            bundles.push(vec![i]);
        }
    }
    w.bundles = bundles
        .into_iter()
        .map(|b| b.into_iter().map(|i| apps[i]).collect())
        .collect();
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<CaseSpec> = {
            let mut rng = SplitMix64::new(5);
            (0..20).map(|_| CaseSpec::generate(&mut rng)).collect()
        };
        let b: Vec<CaseSpec> = {
            let mut rng = SplitMix64::new(5);
            (0..20).map(|_| CaseSpec::generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn generated_cases_build_scenarios() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..30 {
            let case = CaseSpec::generate(&mut rng);
            let s = case.scenario();
            assert_eq!(s.iterations, case.iterations);
            assert_eq!(s.cores_per_node, case.cores_per_node);
            s.workflow.validate().expect("generated workflow validates");
            let subscribed = case.concurrent && case.sub_every >= 1;
            let apps = if case.concurrent {
                2 + subscribed as usize
            } else {
                3
            };
            assert_eq!(s.workflow.apps.len(), apps);
            assert_eq!(s.subscriptions.len(), subscribed as usize);
            if let Some(sub) = s.subscriptions.first() {
                assert_eq!(sub.every_k, case.sub_every);
                assert!(s.coupling_of_subscription(sub).is_some());
            }
        }
    }

    #[test]
    fn scenario_workflows_round_trip_through_dag_text() {
        let mut rng = SplitMix64::new(23);
        for _ in 0..30 {
            let case = CaseSpec::generate(&mut rng);
            dag_round_trip(&case.scenario().workflow).unwrap();
        }
    }

    #[test]
    fn random_workflows_round_trip_and_validate() {
        let mut rng = SplitMix64::new(31);
        for _ in 0..200 {
            let w = random_workflow(&mut rng);
            w.validate().expect("forward-edge workflow is valid");
            dag_round_trip(&w).unwrap();
        }
    }

    #[test]
    fn literal_is_paste_ready() {
        let mut rng = SplitMix64::new(1);
        let case = CaseSpec::generate(&mut rng);
        let lit = case.literal();
        assert!(lit.starts_with("insitu_chaos::CaseSpec {"));
        assert!(lit.contains("pgrid: vec!["));
        assert!(lit.contains(&format!("region_side: {}", case.region_side)));
        assert!(lit.contains(&format!("sub_every: {}", case.sub_every)));
    }
}
