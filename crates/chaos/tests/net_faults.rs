//! Deterministic network fault injection against the distributed
//! runner: the wire transport consults the same seeded fault plan as
//! every other site, so a dropped frame is replayable from the seed and
//! surfaces as the ordinary CoDS timeout naming the owning client.

use insitu::{concurrent_scenario, pattern_pairs, Scenario};
use insitu::{join, serve, DistribOutcome, JoinOptions, MappingStrategy, ServeOptions};
use insitu_chaos::{FaultPlan, FaultSpec};
use insitu_fabric::FaultInjector;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

/// Two-node loopback scenario with a block-cyclic consumer: every
/// consumer reads pieces from every producer, so some pulls must cross
/// the wire no matter how the tasks are mapped.
fn two_node_scenario() -> Scenario {
    let mut s = concurrent_scenario(4, 4, 4, pattern_pairs(&[2, 2, 1])[2]);
    s.cores_per_node = 4;
    s
}

/// Run the scenario distributed over loopback with the given injector
/// wired into the server and every joiner.
fn run_with_faults(
    scenario: &Scenario,
    injector: &FaultInjector,
    get_timeout: Duration,
) -> (Result<DistribOutcome, String>, Vec<Result<(), String>>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let mut joiners = Vec::new();
    for node in 0..2 {
        let addr = addr.clone();
        let s = scenario.clone();
        let opts = JoinOptions {
            timeout: Duration::from_secs(10),
            injector: injector.clone(),
            ..JoinOptions::default()
        };
        joiners.push(std::thread::spawn(move || {
            join(&addr, node, move |_, _| Ok(s), &opts)
        }));
    }
    let served = serve(
        &listener,
        "",
        "",
        scenario,
        &ServeOptions {
            strategy: MappingStrategy::DataCentric,
            get_timeout,
            timeout: Duration::from_secs(10),
            injector: injector.clone(),
            ..ServeOptions::default()
        },
    );
    let join_results = joiners.into_iter().map(|j| j.join().unwrap()).collect();
    (served, join_results)
}

#[test]
fn dropped_pull_data_surfaces_as_timeout_naming_owner() {
    // Rate 1 on net-recv: every pull-data frame is discarded after the
    // read, so no cross-process pull can ever complete.
    let spec = FaultSpec::parse("net-recv:1").unwrap();
    let injector = FaultInjector::new(Arc::new(FaultPlan::new(7, spec)));
    let (served, join_results) =
        run_with_faults(&two_node_scenario(), &injector, Duration::from_millis(600));

    // The run still completes — waves, barriers and reports all use the
    // control plane, which faults never touch.
    let outcome = served.expect("run must complete despite dropped data frames");
    for r in join_results {
        r.expect("joiners must survive dropped data frames");
    }
    assert!(
        !outcome.errors.is_empty(),
        "every wire pull was dropped, yet no task reported an error"
    );
    // The failure mode is the *existing* pull timeout, and it names the
    // client that owns the missing piece.
    for e in &outcome.errors {
        assert!(
            e.contains("timed out waiting") && e.contains("from client"),
            "expected the CoDS pull timeout naming the owner, got: {e}"
        );
    }
}

#[test]
fn faulted_connect_fails_join_deterministically() {
    let spec = FaultSpec::parse("net-connect:1").unwrap();
    let injector = FaultInjector::new(Arc::new(FaultPlan::new(7, spec)));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let err = join(
        &addr,
        0,
        |_, _| -> Result<Scenario, String> { unreachable!("connect is faulted") },
        &JoinOptions {
            timeout: Duration::from_millis(300),
            injector,
            ..JoinOptions::default()
        },
    )
    .unwrap_err();
    assert!(
        err.contains("fault") || err.contains("dropped"),
        "connect fault must be named, got: {err}"
    );
}
