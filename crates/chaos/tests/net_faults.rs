//! Deterministic network fault injection against the distributed
//! runner: the wire transport consults the same seeded fault plan as
//! every other site, so a dropped frame is replayable from the seed and
//! surfaces as the ordinary CoDS timeout naming the owning client.
//!
//! Covered in both topologies: the star hub (every frame relayed) and
//! the p2p reactor data plane (`PullData` over direct node↔node links),
//! where the same `net.*` fault sites must keep firing even though the
//! frames never touch the hub.

use insitu::{concurrent_scenario, pattern_pairs, Scenario};
use insitu::{join, serve, DistribOutcome, JoinOptions, MappingStrategy, ServeOptions};
use insitu_chaos::{FaultPlan, FaultSpec};
use insitu_fabric::{FaultAction, FaultHooks, FaultInjector, NetOp};
use insitu_telemetry::Recorder;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Two-node loopback scenario with a block-cyclic consumer: every
/// consumer reads pieces from every producer, so some pulls must cross
/// the wire no matter how the tasks are mapped.
fn two_node_scenario() -> Scenario {
    let mut s = concurrent_scenario(4, 4, 4, pattern_pairs(&[2, 2, 1])[2]);
    s.cores_per_node = 4;
    s
}

/// Run the scenario distributed over loopback with the given injector
/// wired into the server and every joiner, in star or p2p topology.
fn run_with_faults(
    scenario: &Scenario,
    injector: &FaultInjector,
    get_timeout: Duration,
    p2p: bool,
    recorder: &Recorder,
    shm: bool,
) -> (Result<DistribOutcome, String>, Vec<Result<(), String>>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let mut joiners = Vec::new();
    for node in 0..2 {
        let addr = addr.clone();
        let s = scenario.clone();
        let opts = JoinOptions {
            timeout: Duration::from_secs(10),
            injector: injector.clone(),
            recorder: recorder.clone(),
            ..JoinOptions::default()
        };
        joiners.push(std::thread::spawn(move || {
            join(&addr, node, move |_, _| Ok(s), &opts)
        }));
    }
    let served = serve(
        &listener,
        "",
        "",
        scenario,
        &ServeOptions {
            strategy: MappingStrategy::DataCentric,
            get_timeout,
            timeout: Duration::from_secs(10),
            injector: injector.clone(),
            recorder: recorder.clone(),
            p2p,
            // The wire-fault tests pin what happens to frames on the
            // socket, so the payloads must actually ride the socket:
            // same-host shm would carry them around the fault site.
            shm,
            ..ServeOptions::default()
        },
    );
    let join_results = joiners.into_iter().map(|j| j.join().unwrap()).collect();
    (served, join_results)
}

#[test]
fn dropped_pull_data_surfaces_as_timeout_naming_owner() {
    // Rate 1 on net-recv: every pull-data frame is discarded after the
    // read, so no cross-process pull can ever complete.
    let spec = FaultSpec::parse("net-recv:1").unwrap();
    let injector = FaultInjector::new(Arc::new(FaultPlan::new(7, spec)));
    let (served, join_results) = run_with_faults(
        &two_node_scenario(),
        &injector,
        Duration::from_millis(600),
        false,
        &Recorder::disabled(),
        false,
    );

    // The run still completes — waves, barriers and reports all use the
    // control plane, which faults never touch.
    let outcome = served.expect("run must complete despite dropped data frames");
    for r in join_results {
        r.expect("joiners must survive dropped data frames");
    }
    assert!(
        !outcome.errors.is_empty(),
        "every wire pull was dropped, yet no task reported an error"
    );
    // The failure mode is the *existing* pull timeout, and it names the
    // client that owns the missing piece.
    for e in &outcome.errors {
        assert!(
            e.contains("timed out waiting") && e.contains("from client"),
            "expected the CoDS pull timeout naming the owner, got: {e}"
        );
    }
}

#[test]
fn p2p_dropped_pull_data_surfaces_as_timeout_naming_owner() {
    // Same fault plan as the star test, but the PullData frames it
    // drops now travel direct peer links — the failure mode (and its
    // error text) must not change with the topology.
    let spec = FaultSpec::parse("net-recv:1").unwrap();
    let injector = FaultInjector::new(Arc::new(FaultPlan::new(7, spec)));
    let recorder = Recorder::enabled();
    let (served, join_results) = run_with_faults(
        &two_node_scenario(),
        &injector,
        Duration::from_millis(600),
        true,
        &recorder,
        false,
    );

    let outcome = served.expect("p2p run must complete despite dropped data frames");
    for r in join_results {
        r.expect("joiners must survive dropped data frames");
    }
    assert!(
        !outcome.errors.is_empty(),
        "every wire pull was dropped, yet no task reported an error"
    );
    for e in &outcome.errors {
        assert!(
            e.contains("timed out waiting") && e.contains("from client"),
            "expected the CoDS pull timeout naming the owner, got: {e}"
        );
    }
    // The dropped frames were really on the direct links: owners staged
    // them peer-to-peer and none crossed the hub.
    let snap = recorder.metrics_snapshot();
    assert_eq!(
        snap.counter("net.pull_frames_hub"),
        0,
        "no PullData may traverse the hub in p2p mode"
    );
    assert!(
        snap.counter("net.pull_frames_p2p") > 0,
        "PullData must have been staged on direct peer links"
    );
}

#[test]
fn p2p_chaos_replays_bit_for_bit_from_seed() {
    // Seed 42, partial drop rates: some pulls die, some survive. Two
    // runs of the same seed must agree on *everything* observable —
    // the fault plan hashes sites, not wall-clock or arrival order.
    let run = || {
        let spec = FaultSpec::parse("net-send:0.4,net-recv:0.4").unwrap();
        let injector = FaultInjector::new(Arc::new(FaultPlan::new(42, spec)));
        let (served, join_results) = run_with_faults(
            &two_node_scenario(),
            &injector,
            Duration::from_millis(600),
            true,
            &Recorder::disabled(),
            false,
        );
        for r in join_results {
            r.expect("joiners must survive partial drops");
        }
        served.expect("p2p run must complete under partial drops")
    };
    let first = run();
    let second = run();
    assert_eq!(
        first.errors, second.errors,
        "seed-42 error set must replay bit-for-bit"
    );
    assert_eq!(first.ledger, second.ledger, "seed-42 ledger must replay");
    assert_eq!(first.verify_failures, second.verify_failures);
    assert_eq!(first.gets, second.gets);
}

/// Fault-free hooks that count every wire-site consultation, proving
/// the p2p data plane still reports its operations to the injector.
#[derive(Default)]
struct CountingHooks {
    connects: AtomicU64,
    sends: AtomicU64,
    recvs: AtomicU64,
}

impl FaultHooks for CountingHooks {
    fn on_net(&self, op: NetOp, _kind: u8, _a: u64, _b: u64) -> FaultAction {
        match op {
            NetOp::Connect => self.connects.fetch_add(1, Ordering::Relaxed),
            NetOp::Send => self.sends.fetch_add(1, Ordering::Relaxed),
            NetOp::Recv => self.recvs.fetch_add(1, Ordering::Relaxed),
        };
        FaultAction::Proceed
    }
}

#[test]
fn p2p_direct_links_still_consult_every_fault_site() {
    let hooks = Arc::new(CountingHooks::default());
    let injector = FaultInjector::new(Arc::clone(&hooks) as Arc<dyn FaultHooks>);
    let (served, join_results) = run_with_faults(
        &two_node_scenario(),
        &injector,
        Duration::from_secs(10),
        true,
        &Recorder::disabled(),
        false,
    );

    let outcome = served.expect("fault-free p2p run must succeed");
    for r in join_results {
        r.expect("fault-free joiners must succeed");
    }
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);

    // Both joiners connect to the hub, and at least one direct peer
    // dial happens on top — every one through the net.connect site.
    let connects = hooks.connects.load(Ordering::Relaxed);
    assert!(
        connects > 2,
        "expected hub connects plus peer dials, saw {connects}"
    );
    // PullData crossed direct links, and both the send-staging and the
    // post-decode receive site fired for it.
    let sends = hooks.sends.load(Ordering::Relaxed);
    let recvs = hooks.recvs.load(Ordering::Relaxed);
    assert!(sends > 0, "net.send must fire for p2p PullData");
    assert!(recvs > 0, "net.recv must fire for p2p PullData");
}

#[test]
fn shm_attach_fault_degrades_to_tcp_with_identical_ledger() {
    // Baseline: fault-free run with shm on — the payloads ride rings.
    let base_rec = Recorder::enabled();
    let (served, join_results) = run_with_faults(
        &two_node_scenario(),
        &FaultInjector::none(),
        Duration::from_secs(10),
        false,
        &base_rec,
        true,
    );
    let baseline = served.expect("fault-free shm run must succeed");
    for r in join_results {
        r.expect("fault-free joiners must succeed");
    }
    assert!(baseline.errors.is_empty(), "{:?}", baseline.errors);
    assert!(
        base_rec.metrics_snapshot().counter("net.shm_frames") > 0,
        "baseline must actually use shared memory"
    );

    // Rate 1 on shm-attach: every pair is doomed. Both ends roll the
    // same op-independent (creator, segment) hash, so the producer
    // never stages into a ring nobody will drain — the payloads fall
    // back to the socket transparently and the run is oblivious.
    let spec = FaultSpec::parse("shm-attach:1").unwrap();
    let injector = FaultInjector::new(Arc::new(FaultPlan::new(21, spec)));
    let rec = Recorder::enabled();
    let (served, join_results) = run_with_faults(
        &two_node_scenario(),
        &injector,
        Duration::from_secs(10),
        false,
        &rec,
        true,
    );
    let outcome = served.expect("run must complete despite shm-attach faults");
    for r in join_results {
        r.expect("joiners must survive shm-attach faults");
    }
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    assert_eq!(
        outcome.ledger, baseline.ledger,
        "the TCP fallback must leave the merged ledger byte-identical"
    );
    assert_eq!(outcome.gets, baseline.gets);
    let snap = rec.metrics_snapshot();
    assert_eq!(
        snap.counter("net.shm_frames"),
        0,
        "no record may ride a ring when every attach is doomed"
    );
    assert!(
        snap.counter("net.shm_fallbacks") > 0,
        "the degradations must be counted"
    );
    assert!(
        snap.counter("net.pull_frames_hub") > 0,
        "the payloads must have fallen back to the hub path"
    );
}

#[test]
fn shm_attach_chaos_replays_bit_for_bit_from_seed() {
    // Partial rate: some pairs degrade, some ride rings. The segment
    // identity hashes the directed pair (not a counter), so two runs of
    // one seed must agree on every fallback — and on every observable
    // the run produces.
    let run = |seed| {
        let spec = FaultSpec::parse("shm-attach:0.5").unwrap();
        let injector = FaultInjector::new(Arc::new(FaultPlan::new(seed, spec)));
        let rec = Recorder::enabled();
        let (served, join_results) = run_with_faults(
            &two_node_scenario(),
            &injector,
            Duration::from_secs(10),
            false,
            &rec,
            true,
        );
        for r in join_results {
            r.expect("joiners must survive partial shm faults");
        }
        let outcome = served.expect("run must complete under partial shm faults");
        let snap = rec.metrics_snapshot();
        (
            outcome,
            snap.counter("net.shm_frames"),
            snap.counter("net.shm_fallbacks"),
        )
    };
    let (a, a_frames, a_fallbacks) = run(33);
    let (b, b_frames, b_fallbacks) = run(33);
    assert_eq!(a.errors, b.errors, "seed-33 error set must replay");
    assert_eq!(a.ledger, b.ledger, "seed-33 ledger must replay");
    assert_eq!(a.verify_failures, b.verify_failures);
    assert_eq!(a.gets, b.gets);
    assert_eq!(a_frames, b_frames, "ring traffic must replay bit-for-bit");
    assert_eq!(
        a_fallbacks, b_fallbacks,
        "fallbacks must replay bit-for-bit"
    );
}

#[test]
fn faulted_connect_fails_join_deterministically() {
    let spec = FaultSpec::parse("net-connect:1").unwrap();
    let injector = FaultInjector::new(Arc::new(FaultPlan::new(7, spec)));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let err = join(
        &addr,
        0,
        |_, _| -> Result<Scenario, String> { unreachable!("connect is faulted") },
        &JoinOptions {
            timeout: Duration::from_millis(300),
            injector,
            ..JoinOptions::default()
        },
    )
    .unwrap_err();
    assert!(
        err.contains("fault") || err.contains("dropped"),
        "connect fault must be named, got: {err}"
    );
}
