//! Scenario assembly and execution for the command-line driver.

use crate::config::{parse_config, ConfigError, WorkloadConfig};
use insitu::{run_modeled, run_threaded, MappingStrategy, Scenario};
use insitu_domain::{BoundingBox, Decomposition, ProcessGrid};
use insitu_fabric::{NetworkModel, TrafficClass};
use insitu_workflow::{parse_dag, ParseError};

/// Command-line options (already parsed from `argv`).
#[derive(Clone, Debug)]
pub struct Options {
    /// DAG description file contents.
    pub dag: String,
    /// Workload configuration file contents.
    pub config: String,
    /// Mapping strategy.
    pub strategy: MappingStrategy,
    /// `true` = threaded executor (real data), `false` = modeled.
    pub threaded: bool,
}

/// Driver failures.
#[derive(Debug)]
pub enum CliError {
    /// DAG file problem.
    Dag(ParseError),
    /// Config file problem.
    Config(ConfigError),
    /// Structural mismatch between the two files.
    Mismatch(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Dag(e) => write!(f, "DAG file: {e}"),
            CliError::Config(e) => write!(f, "{e}"),
            CliError::Mismatch(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Assemble a [`Scenario`] from the two parsed files.
pub fn build_scenario(dag: &str, config: &str) -> Result<Scenario, CliError> {
    let mut workflow = parse_dag(dag).map_err(CliError::Dag)?;
    let cfg: WorkloadConfig = parse_config(config).map_err(CliError::Config)?;
    let domain = BoundingBox::from_sizes(&cfg.domain);
    for app in &mut workflow.apps {
        let ac = cfg
            .apps
            .iter()
            .find(|a| a.id == app.id)
            .ok_or_else(|| CliError::Mismatch(format!("app {} has no APP config", app.id)))?;
        let dec = Decomposition::new(domain, ProcessGrid::new(&ac.grid), ac.dist);
        app.ntasks = dec.num_ranks() as u32;
        app.decomposition = Some(dec);
    }
    for c in &cfg.couplings {
        for id in std::iter::once(c.producer_app).chain(c.consumer_apps.iter().copied()) {
            if workflow.app(id).is_none() {
                return Err(CliError::Mismatch(format!(
                    "coupling '{}' references app {id} not in the DAG",
                    c.var
                )));
            }
        }
    }
    let scenario = Scenario {
        name: "cli workflow".into(),
        cores_per_node: cfg.cores_per_node,
        workflow,
        couplings: cfg.couplings,
        halo: cfg.halo,
        elem_bytes: 8,
        model: NetworkModel::jaguar(),
        iterations: cfg.iterations,
    };
    scenario
        .workflow
        .validate()
        .map_err(|e| CliError::Mismatch(format!("invalid workflow: {e}")))?;
    Ok(scenario)
}

/// Run the workflow under *both* mapping strategies (modeled executor)
/// and return a side-by-side comparison — the quickest way to see what
/// in-situ placement buys a given workflow.
pub fn compare(dag: &str, config: &str) -> Result<String, CliError> {
    let scenario = build_scenario(dag, config)?;
    let rr = run_modeled(&scenario, MappingStrategy::RoundRobin);
    let dc = run_modeled(&scenario, MappingStrategy::DataCentric);
    let mut out = String::new();
    let net = |o: &insitu::ModeledOutcome| o.ledger.network_bytes(TrafficClass::InterApp);
    let total = rr.ledger.total_bytes(TrafficClass::InterApp);
    out.push_str(&format!("coupled data:        {total} B per iteration\n"));
    out.push_str(&format!(
        "over network:        round-robin {} B | data-centric {} B\n",
        net(&rr),
        net(&dc)
    ));
    if net(&rr) > 0 {
        out.push_str(&format!(
            "network reduction:   {:.1}%\n",
            100.0 * (1.0 - net(&dc) as f64 / net(&rr) as f64)
        ));
    }
    for (app, ms) in &rr.retrieve_ms {
        let dc_ms = dc.retrieve_ms.get(app).copied().unwrap_or(0.0);
        out.push_str(&format!(
            "retrieve (app {app}):    round-robin {ms:.2} ms | data-centric {dc_ms:.2} ms\n"
        ));
    }
    Ok(out)
}

/// Run per `options` and return the printable report.
pub fn run(options: &Options) -> Result<String, CliError> {
    let scenario = build_scenario(&options.dag, &options.config)?;
    let mut out = String::new();
    let push = |out: &mut String, s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    push(&mut out, format!("strategy:  {}", options.strategy.label()));
    push(
        &mut out,
        format!("executor:  {}", if options.threaded { "threaded" } else { "modeled" }),
    );
    push(&mut out, format!("waves:     {:?}", scenario.workflow.bundle_waves().unwrap()));

    if options.threaded {
        let o = run_threaded(&scenario, options.strategy);
        push(&mut out, format!("verified:  {} cell mismatches", o.verify_failures));
        push(
            &mut out,
            format!(
                "coupling:  {} B over network, {} B in-situ ({:.1}% in-situ)",
                o.ledger.network_bytes(TrafficClass::InterApp),
                o.ledger.shm_bytes(TrafficClass::InterApp),
                100.0 * (1.0 - o.ledger.network_fraction(TrafficClass::InterApp)),
            ),
        );
        push(
            &mut out,
            format!(
                "intra-app: {} B over network, {} B in-situ",
                o.ledger.network_bytes(TrafficClass::IntraApp),
                o.ledger.shm_bytes(TrafficClass::IntraApp),
            ),
        );
        push(&mut out, format!("gets:      {}", o.reports.len()));
    } else {
        let o = run_modeled(&scenario, options.strategy);
        push(
            &mut out,
            format!(
                "coupling:  {} B over network, {} B in-situ ({:.1}% in-situ)",
                o.ledger.network_bytes(TrafficClass::InterApp),
                o.ledger.shm_bytes(TrafficClass::InterApp),
                100.0 * (1.0 - o.ledger.network_fraction(TrafficClass::InterApp)),
            ),
        );
        for (app, ms) in &o.retrieve_ms {
            push(&mut out, format!("retrieve:  app {app}: {ms:.2} ms (max over tasks)"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_workflow::ONLINE_PROCESSING_DAG;

    const CONFIG: &str = "\
CORES_PER_NODE 4
DOMAIN 16 16 16
HALO 1
APP 1 GRID 2 2 2 DIST blocked
APP 2 GRID 4 1 1 DIST blocked
COUPLING VAR t PRODUCER 1 CONSUMERS 2 MODE concurrent
";

    #[test]
    fn builds_scenario_from_files() {
        let s = build_scenario(ONLINE_PROCESSING_DAG, CONFIG).unwrap();
        assert_eq!(s.workflow.apps.len(), 2);
        assert_eq!(s.workflow.app(1).unwrap().ntasks, 8);
        assert_eq!(s.workflow.app(2).unwrap().ntasks, 4);
        assert_eq!(s.cores_per_node, 4);
    }

    #[test]
    fn threaded_run_produces_report() {
        let opts = Options {
            dag: ONLINE_PROCESSING_DAG.into(),
            config: CONFIG.into(),
            strategy: MappingStrategy::DataCentric,
            threaded: true,
        };
        let report = run(&opts).unwrap();
        assert!(report.contains("verified:  0 cell mismatches"), "{report}");
        assert!(report.contains("coupling:"));
    }

    #[test]
    fn modeled_run_produces_report() {
        let opts = Options {
            dag: ONLINE_PROCESSING_DAG.into(),
            config: CONFIG.into(),
            strategy: MappingStrategy::RoundRobin,
            threaded: false,
        };
        let report = run(&opts).unwrap();
        assert!(report.contains("retrieve:  app 2"), "{report}");
    }

    #[test]
    fn compare_reports_reduction() {
        let report = compare(ONLINE_PROCESSING_DAG, CONFIG).unwrap();
        assert!(report.contains("network reduction"), "{report}");
        assert!(report.contains("retrieve (app 2)"));
    }

    #[test]
    fn missing_app_config_rejected() {
        let bad = "DOMAIN 16 16 16\nAPP 1 GRID 2 2 2 DIST blocked\n";
        let err = build_scenario(ONLINE_PROCESSING_DAG, bad).unwrap_err();
        assert!(matches!(err, CliError::Mismatch(_)));
        assert!(err.to_string().contains("app 2"));
    }

    #[test]
    fn coupling_to_unknown_app_rejected() {
        let bad = "\
DOMAIN 16 16 16
APP 1 GRID 2 2 2 DIST blocked
APP 2 GRID 4 1 1 DIST blocked
COUPLING VAR t PRODUCER 1 CONSUMERS 9 MODE concurrent
";
        let err = build_scenario(ONLINE_PROCESSING_DAG, bad).unwrap_err();
        assert!(err.to_string().contains("app 9"));
    }
}
