//! Scenario assembly and execution for the command-line driver.

use crate::config::{parse_config, ConfigError, WorkloadConfig};
use insitu::{
    map_scenario, run_modeled_configured, run_modeled_with, run_threaded_configured,
    run_threaded_with, MappingStrategy, ModeledConfig, Scenario, ThreadedConfig,
};
use insitu_chaos::{FaultPlan, FaultSpec};
use insitu_domain::{BoundingBox, Decomposition, ProcessGrid};
use insitu_fabric::{LinkFaults, NetworkModel, TrafficClass};
use insitu_obs::{
    chrome_trace_with_flows, gate_compare, profile_doc, FlightRecorder, GateConfig, ProfileReport,
};
use insitu_telemetry::{Json, MetricsSnapshot, Recorder};
use insitu_workflow::{parse_dag, ParseError};
use std::path::PathBuf;

/// Command-line options (already parsed from `argv`).
#[derive(Clone, Debug)]
pub struct Options {
    /// DAG description file contents.
    pub dag: String,
    /// Workload configuration file contents.
    pub config: String,
    /// Mapping strategy.
    pub strategy: MappingStrategy,
    /// `true` = threaded executor (real data), `false` = modeled.
    pub threaded: bool,
    /// Write a metrics-registry JSON snapshot here after the run.
    pub metrics_out: Option<PathBuf>,
    /// Write a chrome://tracing JSON trace here after the run.
    pub trace_out: Option<PathBuf>,
}

/// Driver failures.
#[derive(Debug)]
pub enum CliError {
    /// DAG file problem.
    Dag(ParseError),
    /// Config file problem.
    Config(ConfigError),
    /// Structural mismatch between the two files.
    Mismatch(String),
    /// Could not write a requested output file.
    Io(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Dag(e) => write!(f, "DAG file: {e}"),
            CliError::Config(e) => write!(f, "{e}"),
            CliError::Mismatch(m) => write!(f, "{m}"),
            CliError::Io(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Assemble a [`Scenario`] from the two parsed files.
pub fn build_scenario(dag: &str, config: &str) -> Result<Scenario, CliError> {
    let mut workflow = parse_dag(dag).map_err(CliError::Dag)?;
    let cfg: WorkloadConfig = parse_config(config).map_err(CliError::Config)?;
    let domain = BoundingBox::from_sizes(&cfg.domain);
    for app in &mut workflow.apps {
        let ac = cfg
            .apps
            .iter()
            .find(|a| a.id == app.id)
            .ok_or_else(|| CliError::Mismatch(format!("app {} has no APP config", app.id)))?;
        let dec = Decomposition::new(domain, ProcessGrid::new(&ac.grid), ac.dist);
        app.ntasks = dec.num_ranks() as u32;
        app.decomposition = Some(dec);
    }
    for c in &cfg.couplings {
        for id in std::iter::once(c.producer_app).chain(c.consumer_apps.iter().copied()) {
            if workflow.app(id).is_none() {
                return Err(CliError::Mismatch(format!(
                    "coupling '{}' references app {id} not in the DAG",
                    c.var
                )));
            }
        }
    }
    for s in &cfg.subscriptions {
        for id in [s.producer_app, s.subscriber_app] {
            if workflow.app(id).is_none() {
                return Err(CliError::Mismatch(format!(
                    "subscription '{}' references app {id} not in the DAG",
                    s.var
                )));
            }
        }
    }
    let scenario = Scenario {
        name: "cli workflow".into(),
        cores_per_node: cfg.cores_per_node,
        workflow,
        couplings: cfg.couplings,
        subscriptions: cfg.subscriptions,
        halo: cfg.halo,
        elem_bytes: 8,
        model: NetworkModel::jaguar(),
        iterations: cfg.iterations,
    };
    scenario
        .workflow
        .validate()
        .map_err(|e| CliError::Mismatch(format!("invalid workflow: {e}")))?;
    Ok(scenario)
}

fn write_file(path: &PathBuf, contents: &str) -> Result<(), CliError> {
    std::fs::write(path, contents)
        .map_err(|e| CliError::Io(format!("cannot write {}: {e}", path.display())))
}

/// Render a name | round-robin | data-centric | delta table over the
/// union of both snapshots' counters.
fn metrics_delta_table(rr: &MetricsSnapshot, dc: &MetricsSnapshot) -> String {
    let names: std::collections::BTreeSet<&String> =
        rr.counters.keys().chain(dc.counters.keys()).collect();
    let width = names.iter().map(|n| n.len()).max().unwrap_or(6).max(7);
    let mut out = String::new();
    out.push_str(&format!(
        "{:<width$}  {:>14}  {:>14}  {:>15}\n",
        "counter", "round-robin", "data-centric", "delta"
    ));
    for name in names {
        let a = rr.counter(name);
        let b = dc.counter(name);
        out.push_str(&format!(
            "{name:<width$}  {a:>14}  {b:>14}  {:>+15}\n",
            b as i64 - a as i64
        ));
    }
    out
}

/// Run the workflow under *both* mapping strategies (modeled executor)
/// and return a side-by-side comparison — the quickest way to see what
/// in-situ placement buys a given workflow. Includes a per-counter
/// metrics delta table; `metrics_out` gets both snapshots as one JSON
/// document and `trace_out` gets the data-centric run's trace.
pub fn compare(
    dag: &str,
    config: &str,
    metrics_out: Option<&PathBuf>,
    trace_out: Option<&PathBuf>,
) -> Result<String, CliError> {
    let scenario = build_scenario(dag, config)?;
    let rec_rr = Recorder::enabled();
    let rec_dc = Recorder::enabled();
    let rr = run_modeled_with(&scenario, MappingStrategy::RoundRobin, &rec_rr);
    let dc = run_modeled_with(&scenario, MappingStrategy::DataCentric, &rec_dc);
    let mut out = String::new();
    let net = |o: &insitu::ModeledOutcome| o.ledger.network_bytes(TrafficClass::InterApp);
    let total = rr.ledger.total_bytes(TrafficClass::InterApp);
    out.push_str(&format!("coupled data:        {total} B per iteration\n"));
    out.push_str(&format!(
        "over network:        round-robin {} B | data-centric {} B\n",
        net(&rr),
        net(&dc)
    ));
    if net(&rr) > 0 {
        out.push_str(&format!(
            "network reduction:   {:.1}%\n",
            100.0 * (1.0 - net(&dc) as f64 / net(&rr) as f64)
        ));
    }
    for (app, ms) in &rr.retrieve_ms {
        let dc_ms = dc.retrieve_ms.get(app).copied().unwrap_or(0.0);
        out.push_str(&format!(
            "retrieve (app {app}):    round-robin {ms:.2} ms | data-centric {dc_ms:.2} ms\n"
        ));
    }
    let (snap_rr, snap_dc) = (rec_rr.metrics_snapshot(), rec_dc.metrics_snapshot());
    out.push_str("\nmetrics delta (data-centric vs round-robin):\n");
    out.push_str(&metrics_delta_table(&snap_rr, &snap_dc));
    if let Some(path) = metrics_out {
        let doc = Json::obj()
            .field("round_robin", snap_rr.to_json())
            .field("data_centric", snap_dc.to_json());
        write_file(path, &(doc.render() + "\n"))?;
        out.push_str(&format!("metrics written to   {}\n", path.display()));
    }
    if let Some(path) = trace_out {
        write_file(path, &(rec_dc.trace_json() + "\n"))?;
        out.push_str(&format!("trace written to     {}\n", path.display()));
    }
    Ok(out)
}

/// Options of the `profile` subcommand.
#[derive(Clone, Debug)]
pub struct ProfileOptions {
    /// DAG description file contents.
    pub dag: String,
    /// Workload configuration file contents.
    pub config: String,
    /// Mapping strategy.
    pub strategy: MappingStrategy,
    /// `true` = threaded executor (measured), `false` = modeled.
    pub threaded: bool,
    /// Emit the report as a JSON document instead of text.
    pub json: bool,
    /// Write a chrome://tracing timeline — spans plus causal flow arrows
    /// from producer puts to consumer pulls — here after the run.
    pub trace_out: Option<PathBuf>,
}

/// Run the workflow with the flight recorder on and render the causal
/// critical-path profile: per-iteration category attribution (schedule /
/// shm / RDMA / wait), per-link-class queueing and size percentiles, and
/// the injected-fault tally. The same analysis reads threaded (measured)
/// and modeled (synthetic) runs.
pub fn profile(options: &ProfileOptions) -> Result<String, CliError> {
    let scenario = build_scenario(&options.dag, &options.config)?;
    let recorder = Recorder::enabled();
    let flight = FlightRecorder::enabled();
    if options.threaded {
        run_threaded_configured(
            &scenario,
            options.strategy,
            &recorder,
            &ThreadedConfig {
                flight: flight.clone(),
                ..Default::default()
            },
        );
    } else {
        run_modeled_configured(
            &scenario,
            options.strategy,
            &recorder,
            &ModeledConfig {
                flight: flight.clone(),
                ..Default::default()
            },
        );
    }
    let events = flight.snapshot();
    let report = ProfileReport::analyze(&events, flight.dropped());
    let mut out = if options.json {
        report.to_json().render() + "\n"
    } else {
        let mut s = format!(
            "profile: {} executor, {} mapping\n",
            if options.threaded {
                "threaded"
            } else {
                "modeled"
            },
            options.strategy.label()
        );
        s.push_str(&report.render());
        s
    };
    if let Some(path) = &options.trace_out {
        let doc =
            chrome_trace_with_flows(recorder.trace_sink().as_deref(), &events, flight.dropped());
        write_file(path, &(doc.render() + "\n"))?;
        if !options.json {
            out.push_str(&format!("trace written to {}\n", path.display()));
        }
    }
    if !options.json {
        let dropped_spans = recorder.trace_dropped();
        if dropped_spans > 0 {
            out.push_str(&format!(
                "warning: {dropped_spans} trace spans dropped (see the trace.dropped_spans counter)\n"
            ));
        }
        if flight.dropped() > 0 {
            out.push_str(&format!(
                "warning: {} flight events dropped; the profile is partial\n",
                flight.dropped()
            ));
        }
    }
    Ok(out)
}

/// Options of the `compare --gate` regression gate.
#[derive(Clone, Debug)]
pub struct GateOptions {
    /// Baseline gate document to compare against.
    pub baseline: Option<PathBuf>,
    /// Allowed regression percentage.
    pub threshold_pct: f64,
    /// Chaos fault spec whose `link-slow` faults degrade the modeled
    /// torus (used to exercise the gate with synthetic slowdowns).
    pub faults: Option<FaultSpec>,
    /// Seed for the fault plan.
    pub seed: u64,
    /// Write the current gate document here (creates/refreshes the
    /// checked-in baseline).
    pub write_baseline: Option<PathBuf>,
}

/// Build the deterministic gate document for a workflow: data-centric
/// modeled retrieve times per consumer app plus the critical-path
/// profiler's category totals, all lower-is-better.
fn gate_document(scenario: &Scenario, link_faults: &LinkFaults) -> Json {
    let flight = FlightRecorder::enabled();
    let o = run_modeled_configured(
        scenario,
        MappingStrategy::DataCentric,
        &Recorder::disabled(),
        &ModeledConfig {
            link_faults: link_faults.clone(),
            flight: flight.clone(),
        },
    );
    let report = ProfileReport::analyze(&flight.snapshot(), flight.dropped());
    let mut rows: Vec<(String, f64)> = Vec::new();
    for (app, ms) in &o.retrieve_ms {
        rows.push((format!("retrieve_ms.app{app}"), *ms));
    }
    let t = report.totals();
    rows.push(("profile.e2e_us".into(), report.end_to_end_total_us()));
    rows.push(("profile.schedule_us".into(), t.schedule_us));
    rows.push(("profile.shm_us".into(), t.shm_us));
    rows.push(("profile.rdma_us".into(), t.rdma_us));
    profile_doc("gate", "modeled critical-path gate", &rows)
}

/// Run the regression gate: evaluate the workflow on the modeled executor
/// (deterministic, so baselines are stable), optionally under injected
/// link slowdowns, and compare against a baseline document. Returns the
/// report and whether the gate passed.
pub fn gate(dag: &str, config: &str, opts: &GateOptions) -> Result<(String, bool), CliError> {
    let scenario = build_scenario(dag, config)?;
    let link_faults = match &opts.faults {
        Some(spec) => {
            let nodes = map_scenario(&scenario, MappingStrategy::DataCentric)
                .machine
                .nodes;
            FaultPlan::new(opts.seed, *spec).link_faults(nodes)
        }
        None => LinkFaults::default(),
    };
    let current = gate_document(&scenario, &link_faults);
    let mut out = String::new();
    let mut passed = true;
    if !link_faults.is_empty() {
        out.push_str(&format!(
            "gate: {} torus links degraded by injected faults\n",
            link_faults.len()
        ));
    }
    if let Some(path) = &opts.write_baseline {
        write_file(path, &(current.render() + "\n"))?;
        out.push_str(&format!("baseline written to {}\n", path.display()));
    }
    if let Some(path) = &opts.baseline {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("cannot read {}: {e}", path.display())))?;
        let baseline =
            Json::parse(&text).map_err(|e| CliError::Io(format!("{}: {e}", path.display())))?;
        let outcome = gate_compare(
            &current,
            &baseline,
            &GateConfig {
                threshold_pct: opts.threshold_pct,
            },
        )
        .map_err(CliError::Io)?;
        passed = outcome.passed();
        out.push_str(&outcome.render());
    }
    Ok((out, passed))
}

/// Run per `options` and return the printable report.
pub fn run(options: &Options) -> Result<String, CliError> {
    let scenario = build_scenario(&options.dag, &options.config)?;
    let mut out = String::new();
    let push = |out: &mut String, s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    push(&mut out, format!("strategy:  {}", options.strategy.label()));
    push(
        &mut out,
        format!(
            "executor:  {}",
            if options.threaded {
                "threaded"
            } else {
                "modeled"
            }
        ),
    );
    push(
        &mut out,
        format!("waves:     {:?}", scenario.workflow.bundle_waves().unwrap()),
    );

    // Telemetry costs nothing unless an output was requested: a disabled
    // recorder hands out detached handles and drops every span.
    let recorder = if options.metrics_out.is_some() || options.trace_out.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };
    if options.threaded {
        let o = run_threaded_with(&scenario, options.strategy, &recorder);
        push(
            &mut out,
            format!("verified:  {} cell mismatches", o.verify_failures),
        );
        push(
            &mut out,
            format!(
                "coupling:  {} B over network, {} B in-situ ({:.1}% in-situ)",
                o.ledger.network_bytes(TrafficClass::InterApp),
                o.ledger.shm_bytes(TrafficClass::InterApp),
                100.0 * (1.0 - o.ledger.network_fraction(TrafficClass::InterApp)),
            ),
        );
        push(
            &mut out,
            format!(
                "intra-app: {} B over network, {} B in-situ",
                o.ledger.network_bytes(TrafficClass::IntraApp),
                o.ledger.shm_bytes(TrafficClass::IntraApp),
            ),
        );
        push(&mut out, format!("gets:      {}", o.reports.len()));
    } else {
        let o = run_modeled_with(&scenario, options.strategy, &recorder);
        push(
            &mut out,
            format!(
                "coupling:  {} B over network, {} B in-situ ({:.1}% in-situ)",
                o.ledger.network_bytes(TrafficClass::InterApp),
                o.ledger.shm_bytes(TrafficClass::InterApp),
                100.0 * (1.0 - o.ledger.network_fraction(TrafficClass::InterApp)),
            ),
        );
        for (app, ms) in &o.retrieve_ms {
            push(
                &mut out,
                format!("retrieve:  app {app}: {ms:.2} ms (max over tasks)"),
            );
        }
    }
    if let Some(path) = &options.metrics_out {
        write_file(path, &(recorder.metrics_json() + "\n"))?;
        push(&mut out, format!("metrics:   wrote {}", path.display()));
    }
    if let Some(path) = &options.trace_out {
        write_file(path, &(recorder.trace_json() + "\n"))?;
        push(&mut out, format!("trace:     wrote {}", path.display()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_workflow::ONLINE_PROCESSING_DAG;

    const CONFIG: &str = "\
CORES_PER_NODE 4
DOMAIN 16 16 16
HALO 1
APP 1 GRID 2 2 2 DIST blocked
APP 2 GRID 4 1 1 DIST blocked
COUPLING VAR t PRODUCER 1 CONSUMERS 2 MODE concurrent
";

    #[test]
    fn builds_scenario_from_files() {
        let s = build_scenario(ONLINE_PROCESSING_DAG, CONFIG).unwrap();
        assert_eq!(s.workflow.apps.len(), 2);
        assert_eq!(s.workflow.app(1).unwrap().ntasks, 8);
        assert_eq!(s.workflow.app(2).unwrap().ntasks, 4);
        assert_eq!(s.cores_per_node, 4);
    }

    fn options(strategy: MappingStrategy, threaded: bool) -> Options {
        Options {
            dag: ONLINE_PROCESSING_DAG.into(),
            config: CONFIG.into(),
            strategy,
            threaded,
            metrics_out: None,
            trace_out: None,
        }
    }

    #[test]
    fn threaded_run_produces_report() {
        let report = run(&options(MappingStrategy::DataCentric, true)).unwrap();
        assert!(report.contains("verified:  0 cell mismatches"), "{report}");
        assert!(report.contains("coupling:"));
    }

    #[test]
    fn modeled_run_produces_report() {
        let report = run(&options(MappingStrategy::RoundRobin, false)).unwrap();
        assert!(report.contains("retrieve:  app 2"), "{report}");
    }

    #[test]
    fn run_writes_metrics_and_trace_files() {
        let dir = std::env::temp_dir();
        let metrics = dir.join("insitu_cli_test_metrics.json");
        let trace = dir.join("insitu_cli_test_trace.json");
        let mut opts = options(MappingStrategy::DataCentric, true);
        opts.metrics_out = Some(metrics.clone());
        opts.trace_out = Some(trace.clone());
        let report = run(&opts).unwrap();
        assert!(report.contains("metrics:   wrote"), "{report}");
        let m = std::fs::read_to_string(&metrics).unwrap();
        assert!(m.contains("\"counters\""), "{m}");
        assert!(m.contains("fabric.bytes.inter_app"), "{m}");
        let t = std::fs::read_to_string(&trace).unwrap();
        assert!(t.starts_with("{\"traceEvents\":["), "{t}");
        assert!(t.contains("workflow.execute"), "{t}");
        std::fs::remove_file(metrics).unwrap();
        std::fs::remove_file(trace).unwrap();
    }

    #[test]
    fn compare_reports_reduction_and_metric_deltas() {
        let report = compare(ONLINE_PROCESSING_DAG, CONFIG, None, None).unwrap();
        assert!(report.contains("network reduction"), "{report}");
        assert!(report.contains("retrieve (app 2)"));
        assert!(report.contains("metrics delta"), "{report}");
        assert!(report.contains("fabric.bytes.inter_app.net"), "{report}");
    }

    #[test]
    fn compare_writes_combined_metrics() {
        let path = std::env::temp_dir().join("insitu_cli_test_compare.json");
        let report = compare(ONLINE_PROCESSING_DAG, CONFIG, Some(&path), None).unwrap();
        assert!(report.contains("metrics written to"), "{report}");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("{\"round_robin\":{"), "{body}");
        assert!(body.contains("\"data_centric\":{"), "{body}");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_app_config_rejected() {
        let bad = "DOMAIN 16 16 16\nAPP 1 GRID 2 2 2 DIST blocked\n";
        let err = build_scenario(ONLINE_PROCESSING_DAG, bad).unwrap_err();
        assert!(matches!(err, CliError::Mismatch(_)));
        assert!(err.to_string().contains("app 2"));
    }

    #[test]
    fn coupling_to_unknown_app_rejected() {
        let bad = "\
DOMAIN 16 16 16
APP 1 GRID 2 2 2 DIST blocked
APP 2 GRID 4 1 1 DIST blocked
COUPLING VAR t PRODUCER 1 CONSUMERS 9 MODE concurrent
";
        let err = build_scenario(ONLINE_PROCESSING_DAG, bad).unwrap_err();
        assert!(err.to_string().contains("app 9"));
    }
}
