//! Workload configuration file parsing.

use insitu::{CouplingSpec, SubscriptionSpec};
use insitu_domain::Distribution;

/// Per-application workload settings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppConfig {
    /// Application id (must match an `APP_ID` of the DAG file).
    pub id: u32,
    /// Process grid over the shared domain.
    pub grid: Vec<u64>,
    /// Data distribution.
    pub dist: Distribution,
}

/// A parsed workload configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadConfig {
    /// Cores per compute node.
    pub cores_per_node: u32,
    /// Shared data domain sizes.
    pub domain: Vec<u64>,
    /// Stencil halo width.
    pub halo: u64,
    /// Coupling iterations.
    pub iterations: u64,
    /// Per-app settings.
    pub apps: Vec<AppConfig>,
    /// Couplings.
    pub couplings: Vec<CouplingSpec>,
    /// Standing queries layered over the couplings.
    pub subscriptions: Vec<SubscriptionSpec>,
}

/// A configuration parse failure with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn parse_u64s(toks: &[&str], line: usize) -> Result<Vec<u64>, ConfigError> {
    toks.iter()
        .map(|t| {
            t.parse::<u64>().map_err(|_| ConfigError {
                line,
                message: format!("invalid number '{t}'"),
            })
        })
        .collect()
}

/// Parse a workload configuration file.
pub fn parse_config(input: &str) -> Result<WorkloadConfig, ConfigError> {
    let mut cores_per_node = 12u32;
    let mut domain: Option<Vec<u64>> = None;
    let mut halo = 1u64;
    let mut iterations = 1u64;
    let mut apps: Vec<AppConfig> = Vec::new();
    let mut couplings: Vec<CouplingSpec> = Vec::new();
    // Each subscription keeps its source line so the cross-reference
    // checks after the loop can still point at the offending directive.
    let mut subscriptions: Vec<(usize, SubscriptionSpec)> = Vec::new();

    for (idx, raw) in input.lines().enumerate() {
        let line = idx + 1;
        let err = |m: String| ConfigError { line, message: m };
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let toks: Vec<&str> = text.split_whitespace().collect();
        match toks[0] {
            "CORES_PER_NODE" => {
                cores_per_node = toks
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("CORES_PER_NODE needs a positive integer".into()))?;
            }
            "DOMAIN" => {
                let sizes = parse_u64s(&toks[1..], line)?;
                if sizes.is_empty() || sizes.len() > 4 {
                    return Err(err("DOMAIN needs 1-4 sizes".into()));
                }
                domain = Some(sizes);
            }
            "HALO" => {
                halo = parse_u64s(&toks[1..], line)?
                    .first()
                    .copied()
                    .ok_or_else(|| err("HALO needs a width".into()))?;
            }
            "ITERATIONS" => {
                iterations = parse_u64s(&toks[1..], line)?
                    .first()
                    .copied()
                    .filter(|&i| i >= 1)
                    .ok_or_else(|| err("ITERATIONS needs a positive count".into()))?;
            }
            "APP" => {
                // APP <id> GRID g1.. DIST <blocked|cyclic|block-cyclic [b..]>
                let id = toks
                    .get(1)
                    .and_then(|t| t.parse::<u32>().ok())
                    .ok_or_else(|| err("APP needs an id".into()))?;
                let grid_pos = toks
                    .iter()
                    .position(|&t| t == "GRID")
                    .ok_or_else(|| err("APP needs GRID".into()))?;
                let dist_pos = toks
                    .iter()
                    .position(|&t| t == "DIST")
                    .ok_or_else(|| err("APP needs DIST".into()))?;
                if dist_pos < grid_pos {
                    return Err(err("GRID must precede DIST".into()));
                }
                let grid = parse_u64s(&toks[grid_pos + 1..dist_pos], line)?;
                if grid.is_empty() {
                    return Err(err("GRID needs at least one dimension".into()));
                }
                let dist = match toks.get(dist_pos + 1) {
                    Some(&"blocked") => Distribution::Blocked,
                    Some(&"cyclic") => Distribution::Cyclic,
                    Some(&"block-cyclic") => {
                        let blocks = parse_u64s(&toks[dist_pos + 2..], line)?;
                        if blocks.len() != grid.len() {
                            return Err(err(
                                "block-cyclic needs one block size per dimension".into()
                            ));
                        }
                        Distribution::block_cyclic(&blocks)
                    }
                    other => {
                        return Err(err(format!("unknown distribution {other:?}")));
                    }
                };
                if apps.iter().any(|a| a.id == id) {
                    return Err(err(format!("app {id} configured twice")));
                }
                apps.push(AppConfig { id, grid, dist });
            }
            "COUPLING" => {
                // COUPLING VAR <name> PRODUCER <id> CONSUMERS <id..>
                //          MODE <concurrent|sequential>
                //          [REGION lb.. UB ub..]
                let find = |key: &str| toks.iter().position(|&t| t == key);
                let var_pos = find("VAR").ok_or_else(|| err("COUPLING needs VAR".into()))?;
                let prod_pos =
                    find("PRODUCER").ok_or_else(|| err("COUPLING needs PRODUCER".into()))?;
                let cons_pos =
                    find("CONSUMERS").ok_or_else(|| err("COUPLING needs CONSUMERS".into()))?;
                let mode_pos = find("MODE").ok_or_else(|| err("COUPLING needs MODE".into()))?;
                let var = toks
                    .get(var_pos + 1)
                    .ok_or_else(|| err("VAR needs a name".into()))?
                    .to_string();
                let producer_app = toks
                    .get(prod_pos + 1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("PRODUCER needs an id".into()))?;
                let consumer_apps: Vec<u32> = toks[cons_pos + 1..mode_pos]
                    .iter()
                    .map(|t| {
                        t.parse::<u32>()
                            .map_err(|_| err(format!("invalid consumer id '{t}'")))
                    })
                    .collect::<Result<_, _>>()?;
                if consumer_apps.is_empty() {
                    return Err(err("CONSUMERS needs at least one id".into()));
                }
                let concurrent = match toks.get(mode_pos + 1) {
                    Some(&"concurrent") => true,
                    Some(&"sequential") => false,
                    other => return Err(err(format!("unknown MODE {other:?}"))),
                };
                let region = match find("REGION") {
                    None => None,
                    Some(rp) => {
                        let ub_pos =
                            find("UB").ok_or_else(|| err("REGION needs a matching UB".into()))?;
                        let lb = parse_u64s(&toks[rp + 1..ub_pos], line)?;
                        let ub = parse_u64s(&toks[ub_pos + 1..], line)?;
                        if lb.is_empty() || lb.len() != ub.len() {
                            return Err(err("REGION lb/ub rank mismatch".into()));
                        }
                        if let Some(d) = (0..lb.len()).find(|&d| lb[d] > ub[d]) {
                            return Err(err(format!(
                                "REGION is inverted in dimension {d}: lower bound {} exceeds upper bound {}",
                                lb[d], ub[d]
                            )));
                        }
                        Some(insitu_domain::BoundingBox::new(&lb, &ub))
                    }
                };
                couplings.push(CouplingSpec {
                    var,
                    producer_app,
                    consumer_apps,
                    concurrent,
                    region,
                });
            }
            "SUBSCRIBE" => {
                // SUBSCRIBE VAR <name> PRODUCER <id> SUBSCRIBER <id>
                //           EVERY <k> [REGION lb.. UB ub..] [QUEUE <cap>]
                let find = |key: &str| toks.iter().position(|&t| t == key);
                let var_pos = find("VAR").ok_or_else(|| err("SUBSCRIBE needs VAR".into()))?;
                let prod_pos =
                    find("PRODUCER").ok_or_else(|| err("SUBSCRIBE needs PRODUCER".into()))?;
                let sub_pos =
                    find("SUBSCRIBER").ok_or_else(|| err("SUBSCRIBE needs SUBSCRIBER".into()))?;
                let every_pos = find("EVERY").ok_or_else(|| err("SUBSCRIBE needs EVERY".into()))?;
                let var = toks
                    .get(var_pos + 1)
                    .ok_or_else(|| err("VAR needs a name".into()))?
                    .to_string();
                let producer_app = toks
                    .get(prod_pos + 1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("PRODUCER needs an id".into()))?;
                let subscriber_app = toks
                    .get(sub_pos + 1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("SUBSCRIBER needs an id".into()))?;
                let every_k: u64 = toks
                    .get(every_pos + 1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err("EVERY needs a version stride".into()))?;
                if every_k == 0 {
                    return Err(err(
                        "EVERY must be at least 1: a stride of 0 would match no version".into(),
                    ));
                }
                let queue_pos = find("QUEUE");
                let region = match find("REGION") {
                    None => None,
                    Some(rp) => {
                        let ub_pos =
                            find("UB").ok_or_else(|| err("REGION needs a matching UB".into()))?;
                        let ub_end = queue_pos.filter(|&q| q > ub_pos).unwrap_or(toks.len());
                        let lb = parse_u64s(&toks[rp + 1..ub_pos], line)?;
                        let ub = parse_u64s(&toks[ub_pos + 1..ub_end], line)?;
                        if lb.is_empty() || lb.len() != ub.len() {
                            return Err(err("REGION lb/ub rank mismatch".into()));
                        }
                        if let Some(d) = (0..lb.len()).find(|&d| lb[d] > ub[d]) {
                            return Err(err(format!(
                                "REGION is inverted in dimension {d}: lower bound {} exceeds upper bound {}",
                                lb[d], ub[d]
                            )));
                        }
                        Some(insitu_domain::BoundingBox::new(&lb, &ub))
                    }
                };
                let queue_cap = match queue_pos {
                    None => insitu::sub::DEFAULT_QUEUE_CAP,
                    Some(qp) => toks
                        .get(qp + 1)
                        .and_then(|t| t.parse::<usize>().ok())
                        .filter(|&c| c >= 1)
                        .ok_or_else(|| err("QUEUE needs a positive depth".into()))?,
                };
                subscriptions.push((
                    line,
                    SubscriptionSpec {
                        var,
                        producer_app,
                        subscriber_app,
                        every_k,
                        region,
                        queue_cap,
                    },
                ));
            }
            other => {
                return Err(ConfigError {
                    line,
                    message: format!("unknown directive '{other}'"),
                })
            }
        }
    }

    let domain = domain.ok_or(ConfigError {
        line: 0,
        message: "missing DOMAIN".into(),
    })?;
    for a in &apps {
        if a.grid.len() != domain.len() {
            return Err(ConfigError {
                line: 0,
                message: format!("app {} grid rank differs from DOMAIN", a.id),
            });
        }
    }
    // A subscription is a push overlay on an existing coupling: the
    // producer must already publish the variable or no put would ever
    // match the standing query.
    for (line, s) in &subscriptions {
        if !couplings
            .iter()
            .any(|c| c.var == s.var && c.producer_app == s.producer_app)
        {
            return Err(ConfigError {
                line: *line,
                message: format!(
                    "SUBSCRIBE references unknown variable '{}' from producer {}: no COUPLING declares it",
                    s.var, s.producer_app
                ),
            });
        }
    }
    Ok(WorkloadConfig {
        cores_per_node,
        domain,
        halo,
        iterations,
        apps,
        couplings,
        subscriptions: subscriptions.into_iter().map(|(_, s)| s).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# demo
CORES_PER_NODE 4
DOMAIN 16 16 16
HALO 2
ITERATIONS 3
APP 1 GRID 2 2 2 DIST blocked
APP 2 GRID 4 1 1 DIST block-cyclic 4 8 8
COUPLING VAR temperature PRODUCER 1 CONSUMERS 2 MODE concurrent
";

    #[test]
    fn parses_sample() {
        let c = parse_config(SAMPLE).unwrap();
        assert_eq!(c.cores_per_node, 4);
        assert_eq!(c.domain, vec![16, 16, 16]);
        assert_eq!(c.halo, 2);
        assert_eq!(c.iterations, 3);
        assert_eq!(c.apps.len(), 2);
        assert_eq!(c.apps[0].dist, Distribution::Blocked);
        assert!(matches!(c.apps[1].dist, Distribution::BlockCyclic(_)));
        assert_eq!(c.couplings.len(), 1);
        assert!(c.couplings[0].concurrent);
        assert_eq!(c.couplings[0].consumer_apps, vec![2]);
    }

    #[test]
    fn coupling_region_parsed() {
        let c = parse_config(
            "DOMAIN 16 16\nAPP 1 GRID 2 2 DIST blocked\nAPP 2 GRID 2 2 DIST blocked\nCOUPLING VAR f PRODUCER 1 CONSUMERS 2 MODE concurrent REGION 0 0 UB 15 1\n",
        )
        .unwrap();
        let r = c.couplings[0].region.unwrap();
        assert_eq!(r, insitu_domain::BoundingBox::new(&[0, 0], &[15, 1]));
    }

    #[test]
    fn coupling_region_requires_ub() {
        let err = parse_config(
            "DOMAIN 16 16\nAPP 1 GRID 2 2 DIST blocked\nCOUPLING VAR f PRODUCER 1 CONSUMERS 1 MODE concurrent REGION 0 0\n",
        )
        .unwrap_err();
        assert!(err.message.contains("UB"));
    }

    #[test]
    fn sequential_mode_and_multiple_consumers() {
        let c = parse_config(
            "DOMAIN 8 8\nAPP 1 GRID 2 2 DIST blocked\nAPP 2 GRID 2 1 DIST cyclic\nAPP 3 GRID 1 2 DIST cyclic\nCOUPLING VAR v PRODUCER 1 CONSUMERS 2 3 MODE sequential\n",
        )
        .unwrap();
        assert!(!c.couplings[0].concurrent);
        assert_eq!(c.couplings[0].consumer_apps, vec![2, 3]);
    }

    #[test]
    fn defaults_apply() {
        let c = parse_config("DOMAIN 8 8\n").unwrap();
        assert_eq!(c.cores_per_node, 12);
        assert_eq!(c.halo, 1);
        assert_eq!(c.iterations, 1);
    }

    #[test]
    fn missing_domain_rejected() {
        let err = parse_config("CORES_PER_NODE 4\n").unwrap_err();
        assert!(err.message.contains("DOMAIN"));
    }

    #[test]
    fn grid_rank_mismatch_rejected() {
        let err = parse_config("DOMAIN 8 8\nAPP 1 GRID 2 2 2 DIST blocked\n").unwrap_err();
        assert!(err.message.contains("grid rank"));
    }

    #[test]
    fn duplicate_app_rejected() {
        let err =
            parse_config("DOMAIN 8 8\nAPP 1 GRID 2 2 DIST blocked\nAPP 1 GRID 2 2 DIST blocked\n")
                .unwrap_err();
        assert!(err.message.contains("twice"));
    }

    #[test]
    fn bad_distribution_rejected() {
        let err = parse_config("DOMAIN 8 8\nAPP 1 GRID 2 2 DIST wavy\n").unwrap_err();
        assert!(err.message.contains("unknown distribution"));
    }

    #[test]
    fn block_cyclic_needs_blocks_per_dim() {
        let err = parse_config("DOMAIN 8 8\nAPP 1 GRID 2 2 DIST block-cyclic 4\n").unwrap_err();
        assert!(err.message.contains("one block size per dimension"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_config("DOMAIN 8 8\nNONSENSE\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    const SUB_BASE: &str = "\
DOMAIN 8 8
APP 1 GRID 2 2 DIST blocked
APP 2 GRID 2 1 DIST blocked
APP 3 GRID 1 1 DIST blocked
COUPLING VAR t PRODUCER 1 CONSUMERS 2 MODE concurrent
";

    #[test]
    fn subscribe_parsed_with_defaults() {
        let c = parse_config(&format!(
            "{SUB_BASE}SUBSCRIBE VAR t PRODUCER 1 SUBSCRIBER 3 EVERY 2\n"
        ))
        .unwrap();
        assert_eq!(c.subscriptions.len(), 1);
        let s = &c.subscriptions[0];
        assert_eq!(s.var, "t");
        assert_eq!((s.producer_app, s.subscriber_app), (1, 3));
        assert_eq!(s.every_k, 2);
        assert_eq!(s.region, None);
        assert_eq!(s.queue_cap, insitu::sub::DEFAULT_QUEUE_CAP);
    }

    #[test]
    fn subscribe_region_and_queue_parsed() {
        let c = parse_config(&format!(
            "{SUB_BASE}SUBSCRIBE VAR t PRODUCER 1 SUBSCRIBER 3 EVERY 1 REGION 0 0 UB 3 7 QUEUE 2\n"
        ))
        .unwrap();
        let s = &c.subscriptions[0];
        assert_eq!(
            s.region,
            Some(insitu_domain::BoundingBox::new(&[0, 0], &[3, 7]))
        );
        assert_eq!(s.queue_cap, 2);
    }

    #[test]
    fn subscribe_every_zero_rejected() {
        let err = parse_config(&format!(
            "{SUB_BASE}SUBSCRIBE VAR t PRODUCER 1 SUBSCRIBER 3 EVERY 0\n"
        ))
        .unwrap_err();
        assert_eq!(err.line, 6);
        assert!(err.message.contains("EVERY must be at least 1"), "{err}");
    }

    #[test]
    fn subscribe_inverted_region_rejected() {
        let err = parse_config(&format!(
            "{SUB_BASE}SUBSCRIBE VAR t PRODUCER 1 SUBSCRIBER 3 EVERY 1 REGION 5 0 UB 3 7\n"
        ))
        .unwrap_err();
        assert_eq!(err.line, 6);
        assert!(
            err.message.contains("inverted in dimension 0")
                && err.message.contains("lower bound 5 exceeds upper bound 3"),
            "{err}"
        );
    }

    #[test]
    fn subscribe_unknown_variable_rejected() {
        let err = parse_config(&format!(
            "{SUB_BASE}SUBSCRIBE VAR pressure PRODUCER 1 SUBSCRIBER 3 EVERY 1\n"
        ))
        .unwrap_err();
        assert_eq!(err.line, 6);
        assert!(
            err.message.contains("unknown variable 'pressure'")
                && err.message.contains("no COUPLING declares it"),
            "{err}"
        );
        // Same variable from the wrong producer is just as unknown.
        let err = parse_config(&format!(
            "{SUB_BASE}SUBSCRIBE VAR t PRODUCER 2 SUBSCRIBER 3 EVERY 1\n"
        ))
        .unwrap_err();
        assert!(err.message.contains("producer 2"), "{err}");
    }

    #[test]
    fn coupling_inverted_region_rejected() {
        let err = parse_config(
            "DOMAIN 8 8\nAPP 1 GRID 2 2 DIST blocked\nCOUPLING VAR f PRODUCER 1 CONSUMERS 1 MODE concurrent REGION 9 0 UB 3 7\n",
        )
        .unwrap_err();
        assert!(err.message.contains("inverted"), "{err}");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let c = parse_config("# hi\n\nDOMAIN 4 4  # inline\n").unwrap();
        assert_eq!(c.domain, vec![4, 4]);
    }
}
