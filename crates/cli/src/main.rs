//! `insitu` — run a coupled workflow from a DAG description file and a
//! workload configuration file.
//!
//! ```text
//! insitu run [--dag] workflow.dag --config workload.cfg \
//!     [--strategy data-centric|round-robin|node-cyclic] [--modeled] \
//!     [--metrics-out m.json] [--trace-out t.json]
//! ```

use insitu::MappingStrategy;
use insitu_chaos::FaultSpec;
use insitu_cli::{
    run, CancelCmd, GateOptions, JoinCmd, LaunchCmd, Options, ProfileOptions, ServeCmd, ServiceCmd,
    StatusCmd, SubmitCmd, SubmitSource, WatchCmd,
};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
usage: insitu run     [--dag] <file> --config <file>
              [--strategy data-centric|round-robin|node-cyclic] [--modeled]
              [--metrics-out <path>] [--trace-out <path>]
       insitu profile [--dag] <file> --config <file>
              [--strategy <s>] [--modeled] [--json] [--trace-out <path>]
       insitu compare [--dag] <file> --config <file>
              [--metrics-out <path>] [--trace-out <path>]
              [--gate <baseline.json>] [--threshold <pct>]
              [--faults <spec>] [--seed <n>] [--write-baseline <path>]
       insitu chaos   [--seed <n>] [--cases <n>] [--faults <spec>]
       insitu serve   [--dag] <file> --config <file> --listen <addr>
              [--strategy <s>] [--timeout-ms <n>] [--ledger-out <path>]
              [--trace-out <path>] [--profile-out <path>] [--p2p] [--no-shm]
       insitu serve   --listen <addr> [--max-runs <n>] [--queue-depth <n>]
              [--pool-nodes <n>] [--artifacts <dir>] [--p2p] [--no-shm]
              [--faults <spec>] [--seed <n>] [--stall-ms <n>]
       insitu join    --connect <addr> --node <n> [--timeout-ms <n>] [--no-shm]
       insitu launch  [--dag] <file> --config <file> --procs <k>
              [--strategy <s>] [--timeout-ms <n>] [--ledger-out <path>]
              [--trace-out <path>] [--profile-out <path>] [--p2p] [--no-shm]
       insitu launch  <workflow.toml> --procs <k> [...]
       insitu submit  --connect <addr> <workflow.toml> [--set k=v]...
              [--name <s>] [--strategy <s>] [--get-timeout-ms <n>]
              [--timeout-ms <n>] [--wait] [--priority <n>]
       insitu submit  --connect <addr> [--dag] <file> --config <file> ...
       insitu status  --connect <addr> [--run <id>] [--json]
       insitu watch   --connect <addr> --run <id> [--interval-ms <n>]
              [--once] [--json]
       insitu cancel  --connect <addr> --run <id>

`run` executes the workflow described by the DAG file (paper Listing-1
syntax) with the workload configuration (domains, grids, distributions,
couplings); default is data-centric mapping on the threaded executor.
`profile` runs the workflow with the causal flight recorder enabled and
prints the critical-path profile: per-iteration schedule/shm/RDMA/wait
attribution, queueing-delay and transfer-size percentiles per link class,
and the injected-fault tally; `--trace-out` writes a chrome://tracing
timeline whose flow arrows connect producer puts to consumer pulls.
`profile` is single-process; for a distributed run use `launch` with
`--trace-out`/`--profile-out`, which merge every joiner's shipped
telemetry into one cross-process trace and critical-path profile.
`compare` runs both mapping strategies on the modeled executor and prints
a side-by-side summary with a per-counter metrics delta table. With
`--gate` it instead checks the deterministic modeled profile against a
baseline document and exits nonzero on regression beyond `--threshold`
percent (default 10); `--faults` injects chaos link-slow faults into the
model and `--write-baseline` refreshes the baseline file.
`--metrics-out` writes the telemetry registry snapshot as JSON;
`--trace-out` writes a chrome://tracing span timeline.
`chaos` fuzzes randomized workflow cases under seeded fault injection
(defaults: --seed 42 --cases 25 --faults standard). `--faults` takes
'none', 'standard', or 'kind:rate,...' with kinds dead-producer,
drop-pull, delay-pull, dht-blackout, stage-full, link-slow. The report is
bit-for-bit replayable from the seed; the exit code is nonzero when an
invariant was violated, and the first violation is shrunk to a minimal
ready-to-paste #[test] reproducer.
`serve` runs the workflow management server on a TCP listener, waiting
up to `--timeout-ms` (default 30000) for one joiner process per node;
`join` runs one node process (no workflow files needed — the server
ships them in its Welcome frame); `launch` forks one joiner per node
over loopback, serves in-process, and exits nonzero unless the merged
distributed ledger is byte-identical to a single-process run. `serve`
and `launch` also accept a `workflow.toml` in place of the
`--dag`/`--config` pair, compiled client-side exactly like `submit`.
`--ledger-out` writes the merged transfer-ledger snapshot as JSON.
`--p2p` runs the data plane peer-to-peer: every joiner binds a direct
listener, `PullData` flows node-to-node, and the hub carries control
traffic only (`launch --p2p` additionally asserts zero data frames
traversed the hub).
Same-host `PullData` rides shared-memory segments by default — peers on
one host (matching kernel boot id) exchange payloads through `/dev/shm`
rings, with the socket carrying only the doorbell control frames.
`--no-shm` forces everything back onto the socket: on `serve`/`launch`
it disables the plane for the whole run, on `join` it opts one node
out. `launch` prints a greppable `shm:` census line, and `serve` sweeps
stale segments left by crashed earlier runs at startup.
`serve` *without* workflow files runs the multi-tenant service instead:
it executes up to `--max-runs` (default 4) concurrently submitted
workflows over a shared pool of `--pool-nodes` (default 8) joiner
threads, queueing up to `--queue-depth` (default 32) more, until the
process is killed. `submit` sends a workflow to a service — either a
parameterized workflow.toml (with `--set key=value` overrides) or a
plain `--dag`/`--config` pair — and with `--wait` blocks until the run
finishes; `--priority <n>` queues it ahead of every lower-priority
submission (default 0, plain FIFO within a level); `status` shows one run (`--json` includes its ledger, metrics
and critical-path profile artifacts plus the watchdog's link_stalls and
health events) or lists all runs; `cancel` stops a queued run
immediately or a running run at its next wave boundary. `watch` streams
a run's live progress — waves, pulls, per-link-class wait percentiles,
bytes in flight and health events — as a refreshing table (`--once`
prints a single frame for CI; `--json` emits one JSON line per frame).
Service-mode `serve` also takes `--faults`/`--seed` (chaos spec, same
syntax as `chaos`, injected into every run's wire traffic) and
`--stall-ms` (link-health watchdog stall threshold).";

#[derive(Debug)]
enum Command {
    Run(Options),
    Profile(ProfileOptions),
    Compare {
        dag: String,
        config: String,
        metrics_out: Option<PathBuf>,
        trace_out: Option<PathBuf>,
    },
    Gate {
        dag: String,
        config: String,
        opts: GateOptions,
    },
    Chaos {
        seed: u64,
        cases: u64,
        faults: FaultSpec,
    },
    Serve(ServeCmd),
    Join(JoinCmd),
    Launch(LaunchCmd),
    Service(ServiceCmd),
    Submit(SubmitCmd),
    Status(StatusCmd),
    Watch(WatchCmd),
    Cancel(CancelCmd),
}

fn parse_strategy(v: Option<&String>) -> Result<MappingStrategy, String> {
    let v = v.ok_or("--strategy needs a name")?;
    MappingStrategy::from_label(v).ok_or_else(|| format!("unknown strategy {v:?}"))
}

fn parse_distrib_args(sub: &str, args: &[String]) -> Result<Command, String> {
    let mut dag_path: Option<String> = None;
    let mut config_path: Option<String> = None;
    let mut listen = None;
    let mut connect = None;
    let mut node: Option<u32> = None;
    let mut procs: Option<u32> = None;
    let mut strategy = MappingStrategy::DataCentric;
    let mut timeout_ms = 30_000u64;
    let mut ledger_out = None;
    let mut max_runs: Option<usize> = None;
    let mut queue_depth: Option<usize> = None;
    let mut pool_nodes: Option<u32> = None;
    let mut artifacts: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut profile_out: Option<PathBuf> = None;
    let mut faults: Option<FaultSpec> = None;
    let mut seed = 42u64;
    let mut stall_ms: Option<u64> = None;
    let mut p2p = false;
    let mut no_shm = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--faults" if sub == "serve" => {
                faults = Some(FaultSpec::parse(it.next().ok_or("--faults needs a spec")?)?);
            }
            "--seed" if sub == "serve" => {
                let v = it.next().ok_or("--seed needs a number")?;
                seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--stall-ms" if sub == "serve" => {
                let v = it.next().ok_or("--stall-ms needs a number")?;
                stall_ms = Some(v.parse().map_err(|_| format!("bad threshold '{v}'"))?);
            }
            "--max-runs" if sub == "serve" => {
                let v = it.next().ok_or("--max-runs needs a count")?;
                max_runs = Some(v.parse().map_err(|_| format!("bad run count '{v}'"))?);
            }
            "--queue-depth" if sub == "serve" => {
                let v = it.next().ok_or("--queue-depth needs a count")?;
                queue_depth = Some(v.parse().map_err(|_| format!("bad queue depth '{v}'"))?);
            }
            "--pool-nodes" if sub == "serve" => {
                let v = it.next().ok_or("--pool-nodes needs a count")?;
                pool_nodes = Some(v.parse().map_err(|_| format!("bad pool size '{v}'"))?);
            }
            "--artifacts" if sub == "serve" => {
                artifacts = Some(PathBuf::from(it.next().ok_or("--artifacts needs a dir")?))
            }
            "--dag" if sub != "join" => {
                dag_path = Some(it.next().ok_or("--dag needs a path")?.clone())
            }
            "--config" if sub != "join" => {
                config_path = Some(it.next().ok_or("--config needs a path")?.clone())
            }
            "--listen" if sub == "serve" => {
                listen = Some(it.next().ok_or("--listen needs an address")?.clone())
            }
            "--connect" if sub == "join" => {
                connect = Some(it.next().ok_or("--connect needs an address")?.clone())
            }
            "--node" if sub == "join" => {
                let v = it.next().ok_or("--node needs a number")?;
                node = Some(v.parse().map_err(|_| format!("bad node '{v}'"))?);
            }
            "--procs" if sub == "launch" => {
                let v = it.next().ok_or("--procs needs a count")?;
                procs = Some(v.parse().map_err(|_| format!("bad process count '{v}'"))?);
            }
            "--p2p" if sub != "join" => p2p = true,
            "--no-shm" => no_shm = true,
            "--strategy" if sub != "join" => strategy = parse_strategy(it.next())?,
            "--timeout-ms" => {
                let v = it.next().ok_or("--timeout-ms needs a number")?;
                timeout_ms = v.parse().map_err(|_| format!("bad timeout '{v}'"))?;
            }
            "--ledger-out" if sub != "join" => {
                ledger_out = Some(PathBuf::from(it.next().ok_or("--ledger-out needs a path")?))
            }
            "--trace-out" if sub != "join" => {
                trace_out = Some(PathBuf::from(it.next().ok_or("--trace-out needs a path")?))
            }
            "--profile-out" if sub != "join" => {
                profile_out = Some(PathBuf::from(
                    it.next().ok_or("--profile-out needs a path")?,
                ))
            }
            other if !other.starts_with('-') && sub != "join" && dag_path.is_none() => {
                dag_path = Some(other.to_string())
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if sub == "join" {
        return Ok(Command::Join(JoinCmd {
            connect: connect.ok_or("missing --connect")?,
            node: node.ok_or("missing --node")?,
            timeout_ms,
            no_shm,
        }));
    }
    if sub == "serve" && dag_path.is_none() && config_path.is_none() {
        // No workflow files: run the multi-tenant service.
        return Ok(Command::Service(ServiceCmd {
            listen: listen.ok_or("missing --listen")?,
            max_runs: max_runs.unwrap_or(4),
            queue_depth: queue_depth.unwrap_or(32),
            pool_nodes: pool_nodes.unwrap_or(8),
            artifacts,
            p2p,
            faults,
            seed,
            stall_ms,
            no_shm,
        }));
    }
    if max_runs.is_some()
        || queue_depth.is_some()
        || pool_nodes.is_some()
        || artifacts.is_some()
        || faults.is_some()
        || stall_ms.is_some()
    {
        return Err(
            "--max-runs/--queue-depth/--pool-nodes/--artifacts/--faults/--stall-ms need \
             service mode (serve without --dag/--config)"
                .into(),
        );
    }
    let dag_path = dag_path.ok_or("missing --dag")?;
    // A workflow.toml stands in for the --dag/--config pair: compile it
    // client-side exactly as `submit` would.
    let (dag, config) = if dag_path.ends_with(".toml") {
        if config_path.is_some() {
            return Err("give either a workflow.toml or --dag/--config, not both".into());
        }
        let source = std::fs::read_to_string(&dag_path)
            .map_err(|e| format!("cannot read {dag_path}: {e}"))?;
        let authored =
            insitu_workflow::compile_workflow(&source, &[]).map_err(|e| e.to_string())?;
        (authored.dag, authored.config)
    } else {
        let config_path = config_path.ok_or("missing --config")?;
        let dag = std::fs::read_to_string(&dag_path)
            .map_err(|e| format!("cannot read {dag_path}: {e}"))?;
        let config = std::fs::read_to_string(&config_path)
            .map_err(|e| format!("cannot read {config_path}: {e}"))?;
        (dag, config)
    };
    if sub == "serve" {
        Ok(Command::Serve(ServeCmd {
            dag,
            config,
            listen: listen.ok_or("missing --listen")?,
            strategy,
            timeout_ms,
            ledger_out,
            trace_out,
            profile_out,
            p2p,
            no_shm,
        }))
    } else {
        Ok(Command::Launch(LaunchCmd {
            dag,
            config,
            procs: procs.ok_or("missing --procs")?,
            strategy,
            timeout_ms,
            ledger_out,
            trace_out,
            profile_out,
            p2p,
            no_shm,
        }))
    }
}

fn parse_client_args(sub: &str, args: &[String]) -> Result<Command, String> {
    let mut connect: Option<String> = None;
    let mut run: Option<u64> = None;
    let mut json = false;
    let mut timeout_ms = 30_000u64;
    let mut dag_path: Option<String> = None;
    let mut config_path: Option<String> = None;
    let mut toml_path: Option<String> = None;
    let mut sets: Vec<(String, String)> = Vec::new();
    let mut name: Option<String> = None;
    let mut strategy = MappingStrategy::DataCentric;
    let mut get_timeout_ms = 60_000u64;
    let mut wait = false;
    let mut priority = 0u32;
    let mut interval_ms = 500u64;
    let mut once = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--connect" => connect = Some(it.next().ok_or("--connect needs an address")?.clone()),
            "--timeout-ms" => {
                let v = it.next().ok_or("--timeout-ms needs a number")?;
                timeout_ms = v.parse().map_err(|_| format!("bad timeout '{v}'"))?;
            }
            "--run" if sub != "submit" => {
                let v = it.next().ok_or("--run needs an id")?;
                run = Some(v.parse().map_err(|_| format!("bad run id '{v}'"))?);
            }
            "--json" if sub == "status" || sub == "watch" => json = true,
            "--interval-ms" if sub == "watch" => {
                let v = it.next().ok_or("--interval-ms needs a number")?;
                interval_ms = v.parse().map_err(|_| format!("bad interval '{v}'"))?;
            }
            "--once" if sub == "watch" => once = true,
            "--dag" if sub == "submit" => {
                dag_path = Some(it.next().ok_or("--dag needs a path")?.clone())
            }
            "--config" if sub == "submit" => {
                config_path = Some(it.next().ok_or("--config needs a path")?.clone())
            }
            "--set" if sub == "submit" => {
                let v = it.next().ok_or("--set needs key=value")?;
                sets.push(insitu_workflow::parse_override(v).map_err(|e| e.to_string())?);
            }
            "--name" if sub == "submit" => {
                name = Some(it.next().ok_or("--name needs a string")?.clone())
            }
            "--strategy" if sub == "submit" => strategy = parse_strategy(it.next())?,
            "--get-timeout-ms" if sub == "submit" => {
                let v = it.next().ok_or("--get-timeout-ms needs a number")?;
                get_timeout_ms = v.parse().map_err(|_| format!("bad timeout '{v}'"))?;
            }
            "--wait" if sub == "submit" => wait = true,
            "--priority" if sub == "submit" => {
                let v = it.next().ok_or("--priority needs a number")?;
                priority = v.parse().map_err(|_| format!("bad priority '{v}'"))?;
            }
            other if !other.starts_with('-') && sub == "submit" => {
                if other.ends_with(".toml") {
                    toml_path = Some(other.to_string());
                } else if dag_path.is_none() {
                    dag_path = Some(other.to_string());
                } else {
                    return Err(format!("unexpected argument '{other}'"));
                }
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let connect = connect.ok_or("missing --connect")?;
    match sub {
        "status" => Ok(Command::Status(StatusCmd {
            connect,
            run,
            json,
            timeout_ms,
        })),
        "cancel" => Ok(Command::Cancel(CancelCmd {
            connect,
            run: run.ok_or("missing --run")?,
            timeout_ms,
        })),
        "watch" => Ok(Command::Watch(WatchCmd {
            connect,
            run: run.ok_or("missing --run")?,
            interval_ms,
            once,
            json,
            timeout_ms,
        })),
        _ => {
            let read = |p: &String| {
                std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))
            };
            let source = match (toml_path, dag_path, config_path) {
                (Some(t), None, None) => SubmitSource::Toml {
                    source: read(&t)?,
                    sets,
                },
                (None, Some(d), Some(c)) => {
                    if !sets.is_empty() {
                        return Err("--set needs a workflow.toml, not --dag/--config".into());
                    }
                    SubmitSource::Plain {
                        dag: read(&d)?,
                        config: read(&c)?,
                    }
                }
                (Some(_), _, _) => {
                    return Err("give either a workflow.toml or --dag/--config, not both".into())
                }
                _ => return Err("missing workflow: a .toml file or --dag/--config".into()),
            };
            Ok(Command::Submit(SubmitCmd {
                connect,
                source,
                name,
                strategy: strategy.label().to_string(),
                get_timeout_ms,
                timeout_ms,
                wait,
                priority,
            }))
        }
    }
}

fn parse_chaos_args(args: &[String]) -> Result<Command, String> {
    let mut seed = 42u64;
    let mut cases = 25u64;
    let mut faults = FaultSpec::standard();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                let v = it.next().ok_or("--seed needs a number")?;
                seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--cases" => {
                let v = it.next().ok_or("--cases needs a number")?;
                cases = v.parse().map_err(|_| format!("bad case count '{v}'"))?;
            }
            "--faults" => {
                faults = FaultSpec::parse(it.next().ok_or("--faults needs a spec")?)?;
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Command::Chaos {
        seed,
        cases,
        faults,
    })
}

fn parse_args(args: &[String]) -> Result<Command, String> {
    let sub = args.first().map(String::as_str);
    if sub == Some("chaos") {
        return parse_chaos_args(&args[1..]);
    }
    if let Some(s @ ("serve" | "join" | "launch")) = sub {
        return parse_distrib_args(s, &args[1..]);
    }
    if let Some(s @ ("submit" | "status" | "cancel" | "watch")) = sub {
        return parse_client_args(s, &args[1..]);
    }
    if sub != Some("run") && sub != Some("compare") && sub != Some("profile") {
        return Err(
            "expected the 'run', 'profile', 'compare', 'chaos', 'serve', 'join', 'launch', \
             'submit', 'status', 'watch' or 'cancel' subcommand"
                .into(),
        );
    }
    let mut dag_path: Option<String> = None;
    let mut config_path = None;
    let mut strategy = MappingStrategy::DataCentric;
    let mut threaded = true;
    let mut json = false;
    let mut metrics_out = None;
    let mut trace_out = None;
    let mut gate_baseline = None;
    let mut threshold_pct = 10.0f64;
    let mut gate_faults = None;
    let mut gate_seed = 42u64;
    let mut write_baseline = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dag" => dag_path = Some(it.next().ok_or("--dag needs a path")?.clone()),
            "--config" => config_path = Some(it.next().ok_or("--config needs a path")?.clone()),
            "--strategy" => strategy = parse_strategy(it.next())?,
            "--modeled" => threaded = false,
            "--json" if sub == Some("profile") => json = true,
            // A loud refusal, not a silent scope bug: single-process
            // profile output for a multi-process run would print a
            // plausible but wrong critical path.
            "--procs" if sub == Some("profile") => {
                return Err(
                    "profile is single-process: with --procs its trace would cover only this \
                     process and print a misleading critical path. Use `insitu launch --procs <k> \
                     --profile-out <p.json> --trace-out <t.json>` instead — the hub merges every \
                     joiner's shipped telemetry into one cross-process profile and trace"
                        .into(),
                )
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(
                    it.next().ok_or("--metrics-out needs a path")?,
                ))
            }
            "--trace-out" => {
                trace_out = Some(PathBuf::from(it.next().ok_or("--trace-out needs a path")?))
            }
            "--gate" if sub == Some("compare") => {
                gate_baseline = Some(PathBuf::from(it.next().ok_or("--gate needs a path")?))
            }
            "--threshold" if sub == Some("compare") => {
                let v = it.next().ok_or("--threshold needs a percentage")?;
                threshold_pct = v.parse().map_err(|_| format!("bad threshold '{v}'"))?;
            }
            "--faults" if sub == Some("compare") => {
                gate_faults = Some(FaultSpec::parse(it.next().ok_or("--faults needs a spec")?)?);
            }
            "--seed" if sub == Some("compare") => {
                let v = it.next().ok_or("--seed needs a number")?;
                gate_seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--write-baseline" if sub == Some("compare") => {
                write_baseline = Some(PathBuf::from(
                    it.next().ok_or("--write-baseline needs a path")?,
                ))
            }
            other if !other.starts_with('-') && dag_path.is_none() => {
                dag_path = Some(other.to_string())
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let dag_path = dag_path.ok_or("missing --dag")?;
    let config_path = config_path.ok_or("missing --config")?;
    let dag =
        std::fs::read_to_string(&dag_path).map_err(|e| format!("cannot read {dag_path}: {e}"))?;
    let config = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {config_path}: {e}"))?;
    if sub == Some("profile") {
        return Ok(Command::Profile(ProfileOptions {
            dag,
            config,
            strategy,
            threaded,
            json,
            trace_out,
        }));
    }
    if sub == Some("compare") {
        if gate_baseline.is_some() || write_baseline.is_some() {
            return Ok(Command::Gate {
                dag,
                config,
                opts: GateOptions {
                    baseline: gate_baseline,
                    threshold_pct,
                    faults: gate_faults,
                    seed: gate_seed,
                    write_baseline,
                },
            });
        }
        Ok(Command::Compare {
            dag,
            config,
            metrics_out,
            trace_out,
        })
    } else {
        Ok(Command::Run(Options {
            dag,
            config,
            strategy,
            threaded,
            metrics_out,
            trace_out,
        }))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &command {
        Command::Run(options) => run(options),
        Command::Profile(options) => insitu_cli::profile(options),
        Command::Compare {
            dag,
            config,
            metrics_out,
            trace_out,
        } => insitu_cli::driver::compare(dag, config, metrics_out.as_ref(), trace_out.as_ref()),
        Command::Gate { dag, config, opts } => match insitu_cli::gate(dag, config, opts) {
            Ok((report, passed)) => {
                print!("{report}");
                return if passed {
                    ExitCode::SUCCESS
                } else {
                    eprintln!("error: performance gate failed");
                    ExitCode::FAILURE
                };
            }
            Err(e) => Err(e),
        },
        Command::Chaos {
            seed,
            cases,
            faults,
        } => {
            let report = insitu_chaos::run_chaos(*seed, *cases, faults);
            let violations = report.violations();
            print!("{}", report.render());
            return if violations == 0 {
                ExitCode::SUCCESS
            } else {
                eprintln!("error: {violations} invariant violation(s)");
                ExitCode::FAILURE
            };
        }
        Command::Serve(cmd) => insitu_cli::serve_cmd(cmd),
        Command::Join(cmd) => insitu_cli::join_cmd(cmd),
        Command::Launch(cmd) => insitu_cli::launch_cmd(cmd),
        Command::Service(cmd) => insitu_cli::service_cmd(cmd),
        Command::Submit(cmd) => insitu_cli::submit_cmd(cmd),
        Command::Status(cmd) => insitu_cli::status_cmd(cmd),
        Command::Watch(cmd) => insitu_cli::watch_cmd(cmd),
        Command::Cancel(cmd) => insitu_cli::cancel_cmd(cmd),
    };
    match result {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    const DAG: &str = "../../workflows/online.dag";
    const CFG: &str = "../../workflows/online.cfg";

    #[test]
    fn parses_run_with_defaults() {
        let cmd = parse_args(&args(&["run", "--dag", DAG, "--config", CFG])).unwrap();
        match cmd {
            Command::Run(o) => {
                assert_eq!(o.strategy, MappingStrategy::DataCentric);
                assert!(o.threaded);
                assert!(o.dag.contains("APP_ID 1"));
            }
            _ => panic!("expected run"),
        }
    }

    #[test]
    fn parses_strategy_and_modeled() {
        let cmd = parse_args(&args(&[
            "run",
            "--dag",
            DAG,
            "--config",
            CFG,
            "--strategy",
            "round-robin",
            "--modeled",
        ]))
        .unwrap();
        match cmd {
            Command::Run(o) => {
                assert_eq!(o.strategy, MappingStrategy::RoundRobin);
                assert!(!o.threaded);
            }
            _ => panic!("expected run"),
        }
    }

    #[test]
    fn parses_compare() {
        let cmd = parse_args(&args(&["compare", "--dag", DAG, "--config", CFG])).unwrap();
        assert!(matches!(cmd, Command::Compare { .. }));
    }

    #[test]
    fn parses_positional_dag_and_telemetry_outputs() {
        let cmd = parse_args(&args(&[
            "run",
            DAG,
            "--config",
            CFG,
            "--metrics-out",
            "m.json",
            "--trace-out",
            "t.json",
        ]))
        .unwrap();
        match cmd {
            Command::Run(o) => {
                assert!(o.dag.contains("APP_ID 1"));
                assert_eq!(
                    o.metrics_out.as_deref(),
                    Some(std::path::Path::new("m.json"))
                );
                assert_eq!(o.trace_out.as_deref(), Some(std::path::Path::new("t.json")));
            }
            _ => panic!("expected run"),
        }
        let cmd = parse_args(&args(&[
            "compare",
            DAG,
            "--config",
            CFG,
            "--metrics-out",
            "m.json",
        ]))
        .unwrap();
        match cmd {
            Command::Compare {
                metrics_out,
                trace_out,
                ..
            } => {
                assert!(metrics_out.is_some() && trace_out.is_none());
            }
            _ => panic!("expected compare"),
        }
    }

    #[test]
    fn rejects_unknown_subcommand() {
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&[])).is_err());
    }

    #[test]
    fn parses_chaos_with_defaults() {
        let cmd = parse_args(&args(&["chaos"])).unwrap();
        match cmd {
            Command::Chaos {
                seed,
                cases,
                faults,
            } => {
                assert_eq!(seed, 42);
                assert_eq!(cases, 25);
                assert_eq!(faults, FaultSpec::standard());
            }
            _ => panic!("expected chaos"),
        }
    }

    #[test]
    fn parses_chaos_flags_and_fault_specs() {
        let cmd = parse_args(&args(&[
            "chaos",
            "--seed",
            "7",
            "--cases",
            "3",
            "--faults",
            "dead-producer:1,link-slow:0.5",
        ]))
        .unwrap();
        match cmd {
            Command::Chaos {
                seed,
                cases,
                faults,
            } => {
                assert_eq!((seed, cases), (7, 3));
                assert_eq!(faults.rate(insitu_chaos::FaultKind::DeadProducer), 1.0);
                assert_eq!(faults.rate(insitu_chaos::FaultKind::LinkSlow), 0.5);
            }
            _ => panic!("expected chaos"),
        }
    }

    #[test]
    fn rejects_bad_chaos_arguments() {
        assert!(parse_args(&args(&["chaos", "--seed", "pony"]))
            .unwrap_err()
            .contains("bad seed"));
        assert!(parse_args(&args(&["chaos", "--cases"]))
            .unwrap_err()
            .contains("needs a number"));
        assert!(parse_args(&args(&["chaos", "--faults", "gremlins:1"]))
            .unwrap_err()
            .contains("unknown fault kind"));
        assert!(parse_args(&args(&["chaos", "--dag", "x"]))
            .unwrap_err()
            .contains("unknown argument"));
    }

    #[test]
    fn parses_serve_join_and_launch() {
        let cmd = parse_args(&args(&[
            "serve",
            DAG,
            "--config",
            CFG,
            "--listen",
            "127.0.0.1:7001",
            "--timeout-ms",
            "5000",
            "--ledger-out",
            "l.json",
        ]))
        .unwrap();
        match cmd {
            Command::Serve(c) => {
                assert_eq!(c.listen, "127.0.0.1:7001");
                assert_eq!(c.timeout_ms, 5000);
                assert!(c.dag.contains("APP_ID 1"));
                assert_eq!(
                    c.ledger_out.as_deref(),
                    Some(std::path::Path::new("l.json"))
                );
                assert!(!c.p2p, "p2p defaults off");
            }
            _ => panic!("expected serve"),
        }
        let cmd = parse_args(&args(&[
            "join",
            "--connect",
            "127.0.0.1:7001",
            "--node",
            "1",
            "--timeout-ms",
            "250",
        ]))
        .unwrap();
        match cmd {
            Command::Join(c) => {
                assert_eq!(
                    (c.connect.as_str(), c.node, c.timeout_ms),
                    ("127.0.0.1:7001", 1, 250)
                );
            }
            _ => panic!("expected join"),
        }
        let cmd = parse_args(&args(&[
            "launch",
            "--dag",
            DAG,
            "--config",
            CFG,
            "--procs",
            "3",
            "--strategy",
            "round-robin",
            "--p2p",
        ]))
        .unwrap();
        match cmd {
            Command::Launch(c) => {
                assert_eq!(c.procs, 3);
                assert_eq!(c.strategy, MappingStrategy::RoundRobin);
                assert_eq!(c.timeout_ms, 30_000);
                assert!(c.p2p);
            }
            _ => panic!("expected launch"),
        }
        // --p2p is a topology choice for serve/launch; join learns it
        // from the Welcome frame and must reject the flag.
        assert!(
            parse_args(&args(&["join", "--connect", "h:1", "--node", "0", "--p2p"]))
                .unwrap_err()
                .contains("unknown argument")
        );
    }

    #[test]
    fn parses_no_shm_on_every_distrib_subcommand() {
        // Defaults: the shared-memory plane is on everywhere.
        match parse_args(&args(&["launch", DAG, "--config", CFG, "--procs", "3"])).unwrap() {
            Command::Launch(c) => assert!(!c.no_shm, "shm defaults on"),
            _ => panic!("expected launch"),
        }
        match parse_args(&args(&[
            "launch", DAG, "--config", CFG, "--procs", "3", "--no-shm",
        ]))
        .unwrap()
        {
            Command::Launch(c) => assert!(c.no_shm),
            _ => panic!("expected launch"),
        }
        match parse_args(&args(&[
            "serve", DAG, "--config", CFG, "--listen", "x:1", "--no-shm",
        ]))
        .unwrap()
        {
            Command::Serve(c) => assert!(c.no_shm),
            _ => panic!("expected serve"),
        }
        // Unlike --p2p (a hub topology choice), --no-shm is also a
        // per-node opt-out: a join without it still advertises a host
        // fingerprint, with it the node stays off the shm plane.
        match parse_args(&args(&["join", "--connect", "x:1", "--node", "0"])).unwrap() {
            Command::Join(c) => assert!(!c.no_shm),
            _ => panic!("expected join"),
        }
        match parse_args(&args(&[
            "join",
            "--connect",
            "x:1",
            "--node",
            "0",
            "--no-shm",
        ]))
        .unwrap()
        {
            Command::Join(c) => assert!(c.no_shm),
            _ => panic!("expected join"),
        }
        // Service mode forwards the knob to every hosted run.
        match parse_args(&args(&["serve", "--listen", "x:1", "--no-shm"])).unwrap() {
            Command::Service(c) => assert!(c.no_shm),
            _ => panic!("expected service mode"),
        }
    }

    #[test]
    fn serve_without_workflow_files_is_service_mode() {
        let cmd = parse_args(&args(&[
            "serve",
            "--listen",
            "127.0.0.1:7002",
            "--max-runs",
            "6",
            "--queue-depth",
            "9",
            "--pool-nodes",
            "12",
            "--artifacts",
            "artdir",
        ]))
        .unwrap();
        match cmd {
            Command::Service(c) => {
                assert_eq!(c.listen, "127.0.0.1:7002");
                assert_eq!((c.max_runs, c.queue_depth, c.pool_nodes), (6, 9, 12));
                assert_eq!(c.artifacts.as_deref(), Some(std::path::Path::new("artdir")));
            }
            _ => panic!("expected service mode"),
        }
        // Defaults apply when only --listen is given.
        match parse_args(&args(&["serve", "--listen", "127.0.0.1:7002"])).unwrap() {
            Command::Service(c) => {
                assert_eq!((c.max_runs, c.queue_depth, c.pool_nodes), (4, 32, 8));
                assert!(c.artifacts.is_none());
            }
            _ => panic!("expected service mode"),
        }
        // Service flags combined with workflow files are rejected.
        let err = parse_args(&args(&[
            "serve",
            DAG,
            "--config",
            CFG,
            "--listen",
            "x:1",
            "--max-runs",
            "2",
        ]))
        .unwrap_err();
        assert!(err.contains("service mode"), "{err}");
    }

    #[test]
    fn parses_submit_status_and_cancel() {
        let cmd = parse_args(&args(&[
            "submit",
            "--connect",
            "127.0.0.1:7002",
            "../../workflows/distrib.toml",
            "--set",
            "iters=4",
            "--set",
            "sim_grid=2 2 1",
            "--name",
            "my-run",
            "--strategy",
            "round-robin",
            "--wait",
        ]))
        .unwrap();
        match cmd {
            Command::Submit(c) => {
                assert_eq!(c.connect, "127.0.0.1:7002");
                assert_eq!(c.name.as_deref(), Some("my-run"));
                assert_eq!(c.strategy, "round-robin");
                assert!(c.wait);
                match c.source {
                    SubmitSource::Toml { source, sets } => {
                        assert!(source.contains("[workflow]"));
                        assert_eq!(sets.len(), 2);
                        assert_eq!(sets[0], ("iters".to_string(), "4".to_string()));
                    }
                    other => panic!("expected toml source, got {other:?}"),
                }
            }
            _ => panic!("expected submit"),
        }
        let cmd = parse_args(&args(&[
            "submit",
            "--connect",
            "x:1",
            "--dag",
            DAG,
            "--config",
            CFG,
        ]))
        .unwrap();
        match cmd {
            Command::Submit(c) => match c.source {
                SubmitSource::Plain { dag, .. } => assert!(dag.contains("APP_ID 1")),
                other => panic!("expected plain source, got {other:?}"),
            },
            _ => panic!("expected submit"),
        }
        match parse_args(&args(&[
            "status",
            "--connect",
            "x:1",
            "--run",
            "3",
            "--json",
        ]))
        .unwrap()
        {
            Command::Status(c) => {
                assert_eq!(c.run, Some(3));
                assert!(c.json);
            }
            _ => panic!("expected status"),
        }
        match parse_args(&args(&["status", "--connect", "x:1"])).unwrap() {
            Command::Status(c) => assert_eq!((c.run, c.json), (None, false)),
            _ => panic!("expected status"),
        }
        match parse_args(&args(&["cancel", "--connect", "x:1", "--run", "2"])).unwrap() {
            Command::Cancel(c) => assert_eq!(c.run, 2),
            _ => panic!("expected cancel"),
        }
    }

    #[test]
    fn parses_watch() {
        match parse_args(&args(&[
            "watch",
            "--connect",
            "x:1",
            "--run",
            "4",
            "--interval-ms",
            "250",
            "--once",
            "--json",
        ]))
        .unwrap()
        {
            Command::Watch(c) => {
                assert_eq!((c.run, c.interval_ms), (4, 250));
                assert!(c.once && c.json);
            }
            _ => panic!("expected watch"),
        }
        // Defaults: half-second interval, streaming table.
        match parse_args(&args(&["watch", "--connect", "x:1", "--run", "1"])).unwrap() {
            Command::Watch(c) => {
                assert_eq!(c.interval_ms, 500);
                assert!(!c.once && !c.json);
            }
            _ => panic!("expected watch"),
        }
        assert!(parse_args(&args(&["watch", "--connect", "x:1"]))
            .unwrap_err()
            .contains("--run"));
    }

    #[test]
    fn profile_refuses_procs_loudly() {
        let err =
            parse_args(&args(&["profile", DAG, "--config", CFG, "--procs", "3"])).unwrap_err();
        assert!(err.contains("single-process"), "{err}");
        assert!(err.contains("launch"), "{err}");
    }

    #[test]
    fn parses_launch_telemetry_outputs_and_service_faults() {
        match parse_args(&args(&[
            "launch",
            DAG,
            "--config",
            CFG,
            "--procs",
            "3",
            "--trace-out",
            "t.json",
            "--profile-out",
            "p.json",
        ]))
        .unwrap()
        {
            Command::Launch(c) => {
                assert_eq!(c.trace_out.as_deref(), Some(std::path::Path::new("t.json")));
                assert_eq!(
                    c.profile_out.as_deref(),
                    Some(std::path::Path::new("p.json"))
                );
            }
            _ => panic!("expected launch"),
        }
        match parse_args(&args(&[
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--faults",
            "link-slow:1",
            "--seed",
            "7",
            "--stall-ms",
            "10",
        ]))
        .unwrap()
        {
            Command::Service(c) => {
                let spec = c.faults.expect("fault spec parsed");
                assert_eq!(spec.rate(insitu_chaos::FaultKind::LinkSlow), 1.0);
                assert_eq!((c.seed, c.stall_ms), (7, Some(10)));
            }
            _ => panic!("expected service mode"),
        }
        // Chaos faults govern service runs only; workflow-mode serve
        // must reject them.
        let err = parse_args(&args(&[
            "serve",
            DAG,
            "--config",
            CFG,
            "--listen",
            "x:1",
            "--faults",
            "link-slow:1",
        ]))
        .unwrap_err();
        assert!(err.contains("service mode"), "{err}");
    }

    #[test]
    fn rejects_incomplete_client_commands() {
        assert!(parse_args(&args(&["submit", "x.toml"]))
            .unwrap_err()
            .contains("--connect"));
        assert!(parse_args(&args(&["submit", "--connect", "x:1"]))
            .unwrap_err()
            .contains("missing workflow"));
        assert!(parse_args(&args(&[
            "submit",
            "--connect",
            "x:1",
            "--dag",
            DAG,
            "--config",
            CFG,
            "--set",
            "a=1"
        ]))
        .unwrap_err()
        .contains("--set needs a workflow.toml"));
        assert!(parse_args(&args(&["cancel", "--connect", "x:1"]))
            .unwrap_err()
            .contains("--run"));
        assert!(
            parse_args(&args(&["status", "--connect", "x:1", "--run", "nope"]))
                .unwrap_err()
                .contains("bad run id")
        );
        assert!(
            parse_args(&args(&["submit", "--connect", "x:1", "--set", "junk"]))
                .unwrap_err()
                .contains("key=value")
        );
    }

    #[test]
    fn rejects_incomplete_distrib_commands() {
        assert!(parse_args(&args(&["serve", DAG, "--config", CFG]))
            .unwrap_err()
            .contains("--listen"));
        assert!(parse_args(&args(&["join", "--node", "0"]))
            .unwrap_err()
            .contains("--connect"));
        assert!(parse_args(&args(&["join", "--connect", "x:1"]))
            .unwrap_err()
            .contains("--node"));
        assert!(parse_args(&args(&["launch", DAG, "--config", CFG]))
            .unwrap_err()
            .contains("--procs"));
        // join takes no workflow files: the server ships them.
        assert!(parse_args(&args(&["join", "--dag", DAG]))
            .unwrap_err()
            .contains("unknown argument"));
        assert!(
            parse_args(&args(&["launch", DAG, "--config", CFG, "--procs", "two"]))
                .unwrap_err()
                .contains("bad process count")
        );
    }

    #[test]
    fn rejects_missing_paths_and_bad_strategy() {
        assert!(parse_args(&args(&["run", "--dag", DAG]))
            .unwrap_err()
            .contains("--config"));
        assert!(parse_args(&args(&["run", "--config", CFG]))
            .unwrap_err()
            .contains("--dag"));
        assert!(parse_args(&args(&[
            "run",
            "--dag",
            DAG,
            "--config",
            CFG,
            "--strategy",
            "psychic"
        ]))
        .unwrap_err()
        .contains("unknown strategy"));
        assert!(
            parse_args(&args(&["run", "--dag", "/no/such/file", "--config", CFG]))
                .unwrap_err()
                .contains("cannot read")
        );
    }
}
