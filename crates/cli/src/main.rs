//! `insitu` — run a coupled workflow from a DAG description file and a
//! workload configuration file.
//!
//! ```text
//! insitu run --dag workflow.dag --config workload.cfg \
//!     [--strategy data-centric|round-robin|node-cyclic] [--modeled]
//! ```

use insitu::MappingStrategy;
use insitu_cli::{run, Options};
use std::process::ExitCode;

const USAGE: &str = "\
usage: insitu run     --dag <file> --config <file>
              [--strategy data-centric|round-robin|node-cyclic] [--modeled]
       insitu compare --dag <file> --config <file>

`run` executes the workflow described by the DAG file (paper Listing-1
syntax) with the workload configuration (domains, grids, distributions,
couplings); default is data-centric mapping on the threaded executor.
`compare` runs both mapping strategies on the modeled executor and prints
a side-by-side summary.";

#[derive(Debug)]
enum Command {
    Run(Options),
    Compare { dag: String, config: String },
}

fn parse_args(args: &[String]) -> Result<Command, String> {
    let sub = args.first().map(String::as_str);
    if sub != Some("run") && sub != Some("compare") {
        return Err("expected the 'run' or 'compare' subcommand".into());
    }
    let mut dag_path = None;
    let mut config_path = None;
    let mut strategy = MappingStrategy::DataCentric;
    let mut threaded = true;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dag" => dag_path = Some(it.next().ok_or("--dag needs a path")?.clone()),
            "--config" => config_path = Some(it.next().ok_or("--config needs a path")?.clone()),
            "--strategy" => {
                strategy = match it.next().map(String::as_str) {
                    Some("data-centric") => MappingStrategy::DataCentric,
                    Some("round-robin") => MappingStrategy::RoundRobin,
                    Some("node-cyclic") => MappingStrategy::NodeCyclic,
                    other => return Err(format!("unknown strategy {other:?}")),
                }
            }
            "--modeled" => threaded = false,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    let dag_path = dag_path.ok_or("missing --dag")?;
    let config_path = config_path.ok_or("missing --config")?;
    let dag = std::fs::read_to_string(&dag_path)
        .map_err(|e| format!("cannot read {dag_path}: {e}"))?;
    let config = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {config_path}: {e}"))?;
    if sub == Some("compare") {
        Ok(Command::Compare { dag, config })
    } else {
        Ok(Command::Run(Options { dag, config, strategy, threaded }))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match &command {
        Command::Run(options) => run(options),
        Command::Compare { dag, config } => insitu_cli::driver::compare(dag, config),
    };
    match result {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    const DAG: &str = "../../workflows/online.dag";
    const CFG: &str = "../../workflows/online.cfg";

    #[test]
    fn parses_run_with_defaults() {
        let cmd = parse_args(&args(&["run", "--dag", DAG, "--config", CFG])).unwrap();
        match cmd {
            Command::Run(o) => {
                assert_eq!(o.strategy, MappingStrategy::DataCentric);
                assert!(o.threaded);
                assert!(o.dag.contains("APP_ID 1"));
            }
            _ => panic!("expected run"),
        }
    }

    #[test]
    fn parses_strategy_and_modeled() {
        let cmd = parse_args(&args(&[
            "run", "--dag", DAG, "--config", CFG, "--strategy", "round-robin", "--modeled",
        ]))
        .unwrap();
        match cmd {
            Command::Run(o) => {
                assert_eq!(o.strategy, MappingStrategy::RoundRobin);
                assert!(!o.threaded);
            }
            _ => panic!("expected run"),
        }
    }

    #[test]
    fn parses_compare() {
        let cmd = parse_args(&args(&["compare", "--dag", DAG, "--config", CFG])).unwrap();
        assert!(matches!(cmd, Command::Compare { .. }));
    }

    #[test]
    fn rejects_unknown_subcommand() {
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&[])).is_err());
    }

    #[test]
    fn rejects_missing_paths_and_bad_strategy() {
        assert!(parse_args(&args(&["run", "--dag", DAG])).unwrap_err().contains("--config"));
        assert!(parse_args(&args(&["run", "--config", CFG])).unwrap_err().contains("--dag"));
        assert!(parse_args(&args(&[
            "run", "--dag", DAG, "--config", CFG, "--strategy", "psychic"
        ]))
        .unwrap_err()
        .contains("unknown strategy"));
        assert!(parse_args(&args(&["run", "--dag", "/no/such/file", "--config", CFG]))
            .unwrap_err()
            .contains("cannot read"));
    }
}
