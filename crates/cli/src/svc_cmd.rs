//! The service-mode subcommands: `serve` without workflow files (the
//! multi-tenant service), plus the `submit`, `status` and `cancel`
//! RPC clients.

use crate::driver::{build_scenario, CliError};
use insitu_net::RunSummary;
use insitu_svc::{RpcClient, RunArtifacts, Service, SvcConfig};
use insitu_telemetry::Json;
use insitu_workflow::compile_workflow;
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Options of `insitu serve` in service mode (no `--dag`/`--config`).
#[derive(Clone, Debug)]
pub struct ServiceCmd {
    /// Address to listen on for RPC clients.
    pub listen: String,
    /// Maximum runs executing concurrently.
    pub max_runs: usize,
    /// Maximum queued runs before `submit` is refused.
    pub queue_depth: usize,
    /// Joiner-pool size in simulated nodes.
    pub pool_nodes: u32,
    /// Directory for per-run artifact files (optional).
    pub artifacts: Option<PathBuf>,
    /// Peer-to-peer data plane for every run the service executes.
    pub p2p: bool,
}

/// The workflow a `submit` ships: either a raw DAG/config text pair or
/// a `workflow.toml` source compiled client-side.
#[derive(Clone, Debug)]
pub enum SubmitSource {
    /// `--dag`/`--config` pair, submitted verbatim.
    Plain {
        /// DAG description file contents.
        dag: String,
        /// Workload configuration file contents.
        config: String,
    },
    /// `workflow.toml` contents, compiled with `--set` overrides.
    Toml {
        /// The TOML source.
        source: String,
        /// `--set key=value` parameter overrides.
        sets: Vec<(String, String)>,
    },
}

/// Options of the `submit` subcommand.
#[derive(Clone, Debug)]
pub struct SubmitCmd {
    /// Service address.
    pub connect: String,
    /// The workflow to submit.
    pub source: SubmitSource,
    /// Display name (defaults to the workflow's own name).
    pub name: Option<String>,
    /// Mapping-strategy slug.
    pub strategy: String,
    /// Get timeout for the run's replicas.
    pub get_timeout_ms: u64,
    /// Connect/poll timeout.
    pub timeout_ms: u64,
    /// Block until the run reaches a terminal state.
    pub wait: bool,
}

/// Options of the `status` subcommand.
#[derive(Clone, Debug)]
pub struct StatusCmd {
    /// Service address.
    pub connect: String,
    /// Specific run to describe; `None` lists every run.
    pub run: Option<u64>,
    /// Emit JSON (with a specific run: its full artifacts).
    pub json: bool,
    /// Connect timeout.
    pub timeout_ms: u64,
}

/// Options of the `cancel` subcommand.
#[derive(Clone, Debug)]
pub struct CancelCmd {
    /// Service address.
    pub connect: String,
    /// Run to cancel.
    pub run: u64,
    /// Connect timeout.
    pub timeout_ms: u64,
}

/// Run the multi-tenant service until the process is killed.
pub fn service_cmd(cmd: &ServiceCmd) -> Result<String, CliError> {
    let listener = TcpListener::bind(&cmd.listen)
        .map_err(|e| CliError::Io(format!("cannot listen on {}: {e}", cmd.listen)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError::Io(format!("cannot resolve {}: {e}", cmd.listen)))?;
    let svc = Service::start(
        listener,
        SvcConfig {
            max_runs: cmd.max_runs,
            queue_depth: cmd.queue_depth,
            pool_nodes: cmd.pool_nodes,
            artifacts_dir: cmd.artifacts.clone(),
            verbose: true,
            p2p: cmd.p2p,
            ..SvcConfig::default()
        },
        Arc::new(|dag, config| build_scenario(dag, config).map_err(|e| e.to_string())),
    )
    .map_err(CliError::Io)?;
    println!(
        "service:   listening on {addr} ({} run slots, {} pool nodes, queue depth {})",
        cmd.max_runs, cmd.pool_nodes, cmd.queue_depth
    );
    // Serve until killed; the Service owns every worker thread.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
        let _ = &svc;
    }
}

fn client(connect: &str, timeout_ms: u64) -> Result<RpcClient, CliError> {
    RpcClient::connect(connect, Duration::from_millis(timeout_ms))
        .map_err(|e| CliError::Io(format!("cannot reach service at {connect}: {e}")))
}

fn summary_line(s: &RunSummary) -> String {
    let detail = if s.detail.is_empty() {
        String::new()
    } else {
        format!(" — {}", s.detail)
    };
    format!(
        "run {:>3}  {:<10} {:>2} node(s)  {}{detail}\n",
        s.run, s.state, s.nodes, s.name
    )
}

fn summary_json(s: &RunSummary) -> Json {
    Json::obj()
        .field("run", s.run)
        .field("name", s.name.as_str())
        .field("state", s.state.slug())
        .field("nodes", s.nodes)
        .field("detail", s.detail.as_str())
}

/// Embed an artifact document: parsed JSON when present, null before
/// the run turns terminal.
fn artifact_json(body: &str) -> Json {
    if body.is_empty() {
        return Json::Null;
    }
    Json::parse(body).unwrap_or(Json::Null)
}

fn artifacts_json(s: &RunSummary, a: &RunArtifacts) -> Json {
    summary_json(s)
        .field("ledger", artifact_json(&a.ledger_json))
        .field("metrics", artifact_json(&a.metrics_json))
        .field("profile", artifact_json(&a.profile_json))
        .field(
            "errors",
            Json::Arr(a.errors.iter().map(|e| Json::from(e.as_str())).collect()),
        )
}

/// Submit a workflow to a running service.
pub fn submit_cmd(cmd: &SubmitCmd) -> Result<String, CliError> {
    let (default_name, dag, config) = match &cmd.source {
        SubmitSource::Plain { dag, config } => {
            // Validate locally first: a refusal should name the file
            // problem, not bounce off the service.
            build_scenario(dag, config)?;
            ("workflow".to_string(), dag.clone(), config.clone())
        }
        SubmitSource::Toml { source, sets } => {
            let w =
                compile_workflow(source, sets).map_err(|e| CliError::Mismatch(e.to_string()))?;
            build_scenario(&w.dag, &w.config)?;
            (w.name, w.dag, w.config)
        }
    };
    let name = cmd.name.clone().unwrap_or(default_name);
    let mut rpc = client(&cmd.connect, cmd.timeout_ms)?;
    let (run, queued_ahead) = rpc
        .submit(
            &name,
            &dag,
            &config,
            &cmd.strategy,
            Duration::from_millis(cmd.get_timeout_ms),
        )
        .map_err(CliError::Mismatch)?;
    let mut out = format!("submitted: run {run} ({name}), {queued_ahead} queued ahead\n");
    if cmd.wait {
        let s = rpc
            .wait_terminal(run, Duration::from_millis(cmd.timeout_ms))
            .map_err(CliError::Mismatch)?;
        out.push_str(&summary_line(&s));
        if s.state != insitu_net::RunState::Done {
            return Err(CliError::Mismatch(format!(
                "run {run} finished {}: {}",
                s.state, s.detail
            )));
        }
    }
    Ok(out)
}

/// Describe one run (with `--json`: full artifacts) or list every run.
pub fn status_cmd(cmd: &StatusCmd) -> Result<String, CliError> {
    let mut rpc = client(&cmd.connect, cmd.timeout_ms)?;
    match cmd.run {
        Some(run) => {
            let s = rpc.status(run).map_err(CliError::Mismatch)?;
            if cmd.json {
                let a = rpc.result(run).map_err(CliError::Mismatch)?;
                Ok(artifacts_json(&s, &a).render() + "\n")
            } else {
                Ok(summary_line(&s))
            }
        }
        None => {
            let runs = rpc.list().map_err(CliError::Mismatch)?;
            if cmd.json {
                Ok(Json::Arr(runs.iter().map(summary_json).collect()).render() + "\n")
            } else if runs.is_empty() {
                Ok("no runs submitted yet\n".to_string())
            } else {
                Ok(runs.iter().map(summary_line).collect())
            }
        }
    }
}

/// Cancel a queued or running run.
pub fn cancel_cmd(cmd: &CancelCmd) -> Result<String, CliError> {
    let mut rpc = client(&cmd.connect, cmd.timeout_ms)?;
    let s = rpc.cancel(cmd.run).map_err(CliError::Mismatch)?;
    Ok(summary_line(&s))
}
