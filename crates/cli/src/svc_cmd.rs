//! The service-mode subcommands: `serve` without workflow files (the
//! multi-tenant service), plus the `submit`, `status`, `cancel` and
//! `watch` RPC clients.

use crate::driver::{build_scenario, CliError};
use insitu_chaos::{FaultPlan, FaultSpec};
use insitu_fabric::FaultInjector;
use insitu_net::{Frame, RunSummary};
use insitu_svc::{RpcClient, RunArtifacts, Service, SvcConfig, WatchdogConfig};
use insitu_telemetry::Json;
use insitu_workflow::compile_workflow;
use std::io::{IsTerminal, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Options of `insitu serve` in service mode (no `--dag`/`--config`).
#[derive(Clone, Debug)]
pub struct ServiceCmd {
    /// Address to listen on for RPC clients.
    pub listen: String,
    /// Maximum runs executing concurrently.
    pub max_runs: usize,
    /// Maximum queued runs before `submit` is refused.
    pub queue_depth: usize,
    /// Joiner-pool size in simulated nodes.
    pub pool_nodes: u32,
    /// Directory for per-run artifact files (optional).
    pub artifacts: Option<PathBuf>,
    /// Peer-to-peer data plane for every run the service executes.
    pub p2p: bool,
    /// Chaos fault spec injected into every run's wire traffic (used to
    /// exercise the link-health watchdog; `None` = inert).
    pub faults: Option<FaultSpec>,
    /// Seed for the fault plan.
    pub seed: u64,
    /// Watchdog stall threshold override in milliseconds.
    pub stall_ms: Option<u64>,
    /// Force every run's `PullData` onto the socket (`--no-shm`).
    pub no_shm: bool,
}

/// The workflow a `submit` ships: either a raw DAG/config text pair or
/// a `workflow.toml` source compiled client-side.
#[derive(Clone, Debug)]
pub enum SubmitSource {
    /// `--dag`/`--config` pair, submitted verbatim.
    Plain {
        /// DAG description file contents.
        dag: String,
        /// Workload configuration file contents.
        config: String,
    },
    /// `workflow.toml` contents, compiled with `--set` overrides.
    Toml {
        /// The TOML source.
        source: String,
        /// `--set key=value` parameter overrides.
        sets: Vec<(String, String)>,
    },
}

/// Options of the `submit` subcommand.
#[derive(Clone, Debug)]
pub struct SubmitCmd {
    /// Service address.
    pub connect: String,
    /// The workflow to submit.
    pub source: SubmitSource,
    /// Display name (defaults to the workflow's own name).
    pub name: Option<String>,
    /// Mapping-strategy slug.
    pub strategy: String,
    /// Get timeout for the run's replicas.
    pub get_timeout_ms: u64,
    /// Connect/poll timeout.
    pub timeout_ms: u64,
    /// Block until the run reaches a terminal state.
    pub wait: bool,
    /// Admission priority: a higher value is queued ahead of every
    /// lower one, first-come-first-served within a level.
    pub priority: u32,
}

/// Options of the `status` subcommand.
#[derive(Clone, Debug)]
pub struct StatusCmd {
    /// Service address.
    pub connect: String,
    /// Specific run to describe; `None` lists every run.
    pub run: Option<u64>,
    /// Emit JSON (with a specific run: its full artifacts).
    pub json: bool,
    /// Connect timeout.
    pub timeout_ms: u64,
}

/// Options of the `cancel` subcommand.
#[derive(Clone, Debug)]
pub struct CancelCmd {
    /// Service address.
    pub connect: String,
    /// Run to cancel.
    pub run: u64,
    /// Connect timeout.
    pub timeout_ms: u64,
}

/// Options of the `watch` subcommand.
#[derive(Clone, Debug)]
pub struct WatchCmd {
    /// Service address.
    pub connect: String,
    /// Run to watch.
    pub run: u64,
    /// Sampling interval in milliseconds (the service floors it at its
    /// watchdog cadence).
    pub interval_ms: u64,
    /// Print exactly one progress frame and exit (CI mode).
    pub once: bool,
    /// Emit each progress frame as one JSON line instead of the table.
    pub json: bool,
    /// Connect timeout.
    pub timeout_ms: u64,
}

/// Run the multi-tenant service until the process is killed.
pub fn service_cmd(cmd: &ServiceCmd) -> Result<String, CliError> {
    let listener = TcpListener::bind(&cmd.listen)
        .map_err(|e| CliError::Io(format!("cannot listen on {}: {e}", cmd.listen)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError::Io(format!("cannot resolve {}: {e}", cmd.listen)))?;
    let injector = match &cmd.faults {
        Some(spec) => FaultInjector::new(Arc::new(FaultPlan::new(cmd.seed, *spec))),
        None => FaultInjector::none(),
    };
    let mut watchdog = WatchdogConfig::default();
    if let Some(ms) = cmd.stall_ms {
        watchdog.stall_ms = ms;
        // Keep several polls inside one stall window so a short
        // threshold still gets sampled before it trips.
        watchdog.poll_ms = watchdog.poll_ms.min(ms / 2).max(1);
    }
    // A killed earlier service never ran its segment teardown; reclaim
    // its /dev/shm space before taking submissions.
    let swept = insitu_util::shm::sweep_stale(&insitu_util::shm::segment_dir());
    if swept > 0 {
        println!("service:   swept {swept} stale shared-memory segment(s)");
    }
    let svc = Service::start(
        listener,
        SvcConfig {
            max_runs: cmd.max_runs,
            queue_depth: cmd.queue_depth,
            pool_nodes: cmd.pool_nodes,
            artifacts_dir: cmd.artifacts.clone(),
            verbose: true,
            p2p: cmd.p2p,
            shm: !cmd.no_shm,
            injector,
            watchdog,
            ..SvcConfig::default()
        },
        Arc::new(|dag, config| build_scenario(dag, config).map_err(|e| e.to_string())),
    )
    .map_err(CliError::Io)?;
    println!(
        "service:   listening on {addr} ({} run slots, {} pool nodes, queue depth {})",
        cmd.max_runs, cmd.pool_nodes, cmd.queue_depth
    );
    if cmd.faults.is_some() {
        println!("service:   chaos faults armed (seed {})", cmd.seed);
    }
    // Serve until killed; the Service owns every worker thread.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
        let _ = &svc;
    }
}

fn client(connect: &str, timeout_ms: u64) -> Result<RpcClient, CliError> {
    RpcClient::connect(connect, Duration::from_millis(timeout_ms))
        .map_err(|e| CliError::Io(format!("cannot reach service at {connect}: {e}")))
}

fn summary_line(s: &RunSummary) -> String {
    let detail = if s.detail.is_empty() {
        String::new()
    } else {
        format!(" — {}", s.detail)
    };
    let health = if s.link_stalls > 0 || !s.health.is_empty() {
        format!(
            "  [{} link-stall(s), {} health event(s)]",
            s.link_stalls,
            s.health.len()
        )
    } else {
        String::new()
    };
    format!(
        "run {:>3}  {:<10} {:>2} node(s)  {}{detail}{health}\n",
        s.run, s.state, s.nodes, s.name
    )
}

fn summary_json(s: &RunSummary) -> Json {
    Json::obj()
        .field("run", s.run)
        .field("name", s.name.as_str())
        .field("state", s.state.slug())
        .field("nodes", s.nodes)
        .field("detail", s.detail.as_str())
        .field("link_stalls", s.link_stalls)
        .field(
            "health",
            Json::Arr(s.health.iter().map(|h| Json::from(h.as_str())).collect()),
        )
}

/// Embed an artifact document: parsed JSON when present, null before
/// the run turns terminal.
fn artifact_json(body: &str) -> Json {
    if body.is_empty() {
        return Json::Null;
    }
    Json::parse(body).unwrap_or(Json::Null)
}

fn artifacts_json(s: &RunSummary, a: &RunArtifacts) -> Json {
    summary_json(s)
        .field("ledger", artifact_json(&a.ledger_json))
        .field("metrics", artifact_json(&a.metrics_json))
        .field("profile", artifact_json(&a.profile_json))
        .field(
            "errors",
            Json::Arr(a.errors.iter().map(|e| Json::from(e.as_str())).collect()),
        )
}

/// Submit a workflow to a running service.
pub fn submit_cmd(cmd: &SubmitCmd) -> Result<String, CliError> {
    let (default_name, dag, config) = match &cmd.source {
        SubmitSource::Plain { dag, config } => {
            // Validate locally first: a refusal should name the file
            // problem, not bounce off the service.
            build_scenario(dag, config)?;
            ("workflow".to_string(), dag.clone(), config.clone())
        }
        SubmitSource::Toml { source, sets } => {
            let w =
                compile_workflow(source, sets).map_err(|e| CliError::Mismatch(e.to_string()))?;
            build_scenario(&w.dag, &w.config)?;
            (w.name, w.dag, w.config)
        }
    };
    let name = cmd.name.clone().unwrap_or(default_name);
    let mut rpc = client(&cmd.connect, cmd.timeout_ms)?;
    let (run, queued_ahead) = rpc
        .submit_with_priority(
            &name,
            &dag,
            &config,
            &cmd.strategy,
            Duration::from_millis(cmd.get_timeout_ms),
            cmd.priority,
        )
        .map_err(CliError::Mismatch)?;
    let mut out = format!("submitted: run {run} ({name}), {queued_ahead} queued ahead\n");
    if cmd.wait {
        let s = rpc
            .wait_terminal(run, Duration::from_millis(cmd.timeout_ms))
            .map_err(CliError::Mismatch)?;
        out.push_str(&summary_line(&s));
        if s.state != insitu_net::RunState::Done {
            return Err(CliError::Mismatch(format!(
                "run {run} finished {}: {}",
                s.state, s.detail
            )));
        }
    }
    Ok(out)
}

/// Describe one run (with `--json`: full artifacts) or list every run.
pub fn status_cmd(cmd: &StatusCmd) -> Result<String, CliError> {
    let mut rpc = client(&cmd.connect, cmd.timeout_ms)?;
    match cmd.run {
        Some(run) => {
            let s = rpc.status(run).map_err(CliError::Mismatch)?;
            if cmd.json {
                let a = rpc.result(run).map_err(CliError::Mismatch)?;
                Ok(artifacts_json(&s, &a).render() + "\n")
            } else {
                Ok(summary_line(&s))
            }
        }
        None => {
            let runs = rpc.list().map_err(CliError::Mismatch)?;
            if cmd.json {
                Ok(Json::Arr(runs.iter().map(summary_json).collect()).render() + "\n")
            } else if runs.is_empty() {
                Ok("no runs submitted yet\n".to_string())
            } else {
                Ok(runs.iter().map(summary_line).collect())
            }
        }
    }
}

/// Cancel a queued or running run.
pub fn cancel_cmd(cmd: &CancelCmd) -> Result<String, CliError> {
    let mut rpc = client(&cmd.connect, cmd.timeout_ms)?;
    let s = rpc.cancel(cmd.run).map_err(CliError::Mismatch)?;
    Ok(summary_line(&s))
}

/// Lines in one rendered progress block; the live view rewinds the
/// cursor by exactly this much between frames.
const PROGRESS_LINES: usize = 5;

fn progress_block(f: &Frame) -> String {
    let Frame::Progress {
        run,
        state,
        done,
        wave,
        waves,
        pulls,
        pull_bytes,
        shm_wait_p50_us,
        shm_wait_p99_us,
        rdma_wait_p50_us,
        rdma_wait_p99_us,
        pulls_in_flight,
        bytes_in_flight,
        queue_depth,
        sub_active,
        sub_pushes,
        sub_lagged,
        link_stalls,
        health,
    } = f
    else {
        return String::new();
    };
    let health_line = match health.last() {
        None => "ok".to_string(),
        Some(last) => format!("{} event(s); last: {last}", health.len()),
    };
    format!(
        "run {run:>3}  {state:<10} wave {wave}/{waves}  pulls {pulls} ({pull_bytes} B){}\n  \
         wait-us  shm p50/p99 {shm_wait_p50_us}/{shm_wait_p99_us}  \
         rdma p50/p99 {rdma_wait_p50_us}/{rdma_wait_p99_us}\n  \
         flight   {pulls_in_flight} pull(s), {bytes_in_flight} B staged, \
         {queue_depth} B queued  link-stalls {link_stalls}\n  \
         subs     {sub_active} active, {sub_pushes} push(es), {sub_lagged} lagged\n  \
         health   {health_line}\n",
        if *done { "  [final]" } else { "" },
    )
}

fn progress_json(f: &Frame) -> Json {
    let Frame::Progress {
        run,
        state,
        done,
        wave,
        waves,
        pulls,
        pull_bytes,
        shm_wait_p50_us,
        shm_wait_p99_us,
        rdma_wait_p50_us,
        rdma_wait_p99_us,
        pulls_in_flight,
        bytes_in_flight,
        queue_depth,
        sub_active,
        sub_pushes,
        sub_lagged,
        link_stalls,
        health,
    } = f
    else {
        return Json::Null;
    };
    Json::obj()
        .field("run", *run)
        .field("state", state.slug())
        .field("done", *done)
        .field("wave", *wave)
        .field("waves", *waves)
        .field("pulls", *pulls)
        .field("pull_bytes", *pull_bytes)
        .field("shm_wait_p50_us", *shm_wait_p50_us)
        .field("shm_wait_p99_us", *shm_wait_p99_us)
        .field("rdma_wait_p50_us", *rdma_wait_p50_us)
        .field("rdma_wait_p99_us", *rdma_wait_p99_us)
        .field("pulls_in_flight", *pulls_in_flight)
        .field("bytes_in_flight", *bytes_in_flight)
        .field("queue_depth", *queue_depth)
        .field("sub_active", *sub_active)
        .field("sub_pushes", *sub_pushes)
        .field("sub_lagged", *sub_lagged)
        .field("link_stalls", *link_stalls)
        .field(
            "health",
            Json::Arr(health.iter().map(|h| Json::from(h.as_str())).collect()),
        )
}

/// Stream a run's live progress. Frames print as they arrive —
/// in-place (a refreshing table) on a terminal, appended otherwise,
/// one JSON line each with `--json`.
pub fn watch_cmd(cmd: &WatchCmd) -> Result<String, CliError> {
    let mut rpc = client(&cmd.connect, cmd.timeout_ms)?;
    let live = !cmd.once && !cmd.json && std::io::stdout().is_terminal();
    let mut printed = 0u64;
    let mut last_state = String::new();
    let frames = rpc
        .watch(
            cmd.run,
            Duration::from_millis(cmd.interval_ms),
            cmd.once,
            |frame| {
                if live && printed > 0 {
                    // Rewind over the previous block and clear below so
                    // the table refreshes in place.
                    print!("\x1b[{PROGRESS_LINES}A\x1b[J");
                }
                printed += 1;
                if cmd.json {
                    println!("{}", progress_json(frame).render());
                } else {
                    print!("{}", progress_block(frame));
                }
                let _ = std::io::stdout().flush();
                if let Frame::Progress { state, .. } = frame {
                    last_state = state.slug().to_string();
                }
            },
        )
        .map_err(CliError::Mismatch)?;
    if cmd.json {
        Ok(String::new())
    } else {
        Ok(format!(
            "watch:     {frames} progress frame(s), final state {last_state}\n"
        ))
    }
}
