//! The distributed subcommands: `serve`, `join` and `launch`.
//!
//! `serve` runs the workflow management server on a real TCP listener;
//! `join` runs one node process against it; `launch` is the one-command
//! demonstration — it forks one `join` child per node over loopback,
//! serves in-process, then re-runs the same workflow single-process and
//! verifies the merged transfer ledger is byte-identical.

use crate::driver::{build_scenario, CliError};
use insitu::{
    join, map_scenario, run_threaded, serve, DistribOutcome, JoinOptions, MappingStrategy,
    ServeOptions,
};
use insitu_fabric::TrafficClass;
use insitu_obs::{chrome_trace_merged, merge_traces, FlightRecorder, ProfileReport};
use insitu_telemetry::Recorder;
use insitu_util::shm;
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::Duration;

/// Options of the `serve` subcommand.
#[derive(Clone, Debug)]
pub struct ServeCmd {
    /// DAG description file contents.
    pub dag: String,
    /// Workload configuration file contents.
    pub config: String,
    /// Address to listen on, e.g. `127.0.0.1:7001`.
    pub listen: String,
    /// Mapping strategy, sent to every joiner.
    pub strategy: MappingStrategy,
    /// How long to wait for joiners before failing (never blocks past
    /// this).
    pub timeout_ms: u64,
    /// Write the merged ledger snapshot as JSON here after the run.
    pub ledger_out: Option<PathBuf>,
    /// Write the merged cross-process chrome trace here after the run.
    pub trace_out: Option<PathBuf>,
    /// Write the merged critical-path profile as JSON here.
    pub profile_out: Option<PathBuf>,
    /// Peer-to-peer data plane: joiners exchange `PullData` over direct
    /// links, the hub carries control traffic only.
    pub p2p: bool,
    /// Keep same-host `PullData` off the shared-memory plane and on the
    /// socket (`--no-shm`).
    pub no_shm: bool,
}

/// Options of the `join` subcommand. No workflow files: the server
/// ships the DAG and config text in its `Welcome` frame.
#[derive(Clone, Debug)]
pub struct JoinCmd {
    /// Server address to connect to.
    pub connect: String,
    /// Which simulated node this process claims.
    pub node: u32,
    /// How long to keep trying to reach the server before failing.
    pub timeout_ms: u64,
    /// Opt this node out of the shared-memory plane: its `Hello`
    /// carries no host fingerprint, so no peer ever offers it a segment.
    pub no_shm: bool,
}

/// Options of the `launch` subcommand.
#[derive(Clone, Debug)]
pub struct LaunchCmd {
    /// DAG description file contents.
    pub dag: String,
    /// Workload configuration file contents.
    pub config: String,
    /// Total process count: 1 server + one joiner per node.
    pub procs: u32,
    /// Mapping strategy.
    pub strategy: MappingStrategy,
    /// Joiner/server handshake timeout.
    pub timeout_ms: u64,
    /// Write the merged ledger snapshot as JSON here after the run.
    pub ledger_out: Option<PathBuf>,
    /// Write the merged cross-process chrome trace here after the run.
    pub trace_out: Option<PathBuf>,
    /// Write the merged critical-path profile as JSON here.
    pub profile_out: Option<PathBuf>,
    /// Peer-to-peer data plane (see [`ServeCmd::p2p`]). `launch`
    /// additionally asserts that zero `PullData` frames traversed the
    /// hub, via the `net.pull_frames_hub` counter.
    pub p2p: bool,
    /// Disable the shared-memory plane for the whole run: the hub ships
    /// no host table and every joiner is spawned with `--no-shm`.
    pub no_shm: bool,
}

fn render_outcome(o: &DistribOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!("strategy:  {}\n", o.strategy.label()));
    out.push_str(&format!("nodes:     {} joiner process(es)\n", o.nodes));
    out.push_str(&format!(
        "verified:  {} cell mismatches\n",
        o.verify_failures
    ));
    out.push_str(&format!(
        "coupling:  {} B over network, {} B in-situ\n",
        o.ledger.network_bytes(TrafficClass::InterApp),
        o.ledger.shm_bytes(TrafficClass::InterApp),
    ));
    out.push_str(&format!("gets:      {}\n", o.gets));
    for e in &o.errors {
        out.push_str(&format!("error:     {e}\n"));
    }
    out
}

fn write_ledger(path: &PathBuf, o: &DistribOutcome) -> Result<String, CliError> {
    std::fs::write(path, o.ledger.to_json().render() + "\n")
        .map_err(|e| CliError::Io(format!("cannot write {}: {e}", path.display())))?;
    Ok(format!("ledger:    wrote {}\n", path.display()))
}

/// Merge the joiners' shipped telemetry into one cross-process trace,
/// render its critical-path summary and degradation warnings, and write
/// the merged chrome trace / profile files when requested.
fn render_merged_telemetry(
    o: &DistribOutcome,
    trace_out: Option<&PathBuf>,
    profile_out: Option<&PathBuf>,
) -> Result<String, CliError> {
    let merged = merge_traces(o.telemetry.clone());
    let report = ProfileReport::analyze(&merged.events, merged.dropped);
    let t = report.totals();
    let mut out = format!(
        "telemetry: {} event(s) from {} process(es), {} cross-process edge(s) stitched\n",
        merged.events.len(),
        merged.processes,
        merged.stitched,
    );
    out.push_str(&format!(
        "critical:  {:.0} us end-to-end = schedule {:.0} + shm {:.0} + rdma {:.0} + wait {:.0}\n",
        report.end_to_end_total_us(),
        t.schedule_us,
        t.shm_us,
        t.rdma_us,
        t.wait_us,
    ));
    for w in merged.warnings() {
        out.push_str(&format!("warning:   telemetry: {w}\n"));
    }
    if let Some(path) = trace_out {
        std::fs::write(path, chrome_trace_merged(&merged).render() + "\n")
            .map_err(|e| CliError::Io(format!("cannot write {}: {e}", path.display())))?;
        out.push_str(&format!(
            "trace:     wrote {} (merged, per-process lanes)\n",
            path.display()
        ));
    }
    if let Some(path) = profile_out {
        std::fs::write(path, report.to_json().render() + "\n")
            .map_err(|e| CliError::Io(format!("cannot write {}: {e}", path.display())))?;
        out.push_str(&format!(
            "profile:   wrote {} (merged critical path)\n",
            path.display()
        ));
    }
    Ok(out)
}

/// Run the workflow server until the distributed run completes.
pub fn serve_cmd(cmd: &ServeCmd) -> Result<String, CliError> {
    let scenario = build_scenario(&cmd.dag, &cmd.config)?;
    // A crashed earlier run must not leak /dev/shm space forever: drop
    // any segment whose creator process is gone before serving.
    let swept = shm::sweep_stale(&shm::segment_dir());
    let listener = TcpListener::bind(&cmd.listen)
        .map_err(|e| CliError::Io(format!("cannot listen on {}: {e}", cmd.listen)))?;
    let opts = ServeOptions {
        strategy: cmd.strategy,
        timeout: Duration::from_millis(cmd.timeout_ms),
        p2p: cmd.p2p,
        shm: !cmd.no_shm,
        ..ServeOptions::default()
    };
    let outcome =
        serve(&listener, &cmd.dag, &cmd.config, &scenario, &opts).map_err(CliError::Mismatch)?;
    let mut out = String::new();
    if swept > 0 {
        out.push_str(&format!(
            "swept:     {swept} stale shared-memory segment(s) from dead runs\n"
        ));
    }
    out.push_str(&render_outcome(&outcome));
    out.push_str(&render_merged_telemetry(
        &outcome,
        cmd.trace_out.as_ref(),
        cmd.profile_out.as_ref(),
    )?);
    if let Some(path) = &cmd.ledger_out {
        out.push_str(&write_ledger(path, &outcome)?);
    }
    Ok(out)
}

/// Run one node process against a server. The recorder and flight
/// recorder are always on: the joiner ships its metrics snapshot and
/// causal event log to the hub at collect time, so the server side can
/// stitch the merged cross-process trace.
pub fn join_cmd(cmd: &JoinCmd) -> Result<String, CliError> {
    let opts = JoinOptions {
        timeout: Duration::from_millis(cmd.timeout_ms),
        recorder: Recorder::enabled(),
        flight: FlightRecorder::enabled(),
        shm: !cmd.no_shm,
        ..JoinOptions::default()
    };
    join(
        &cmd.connect,
        cmd.node,
        |dag, config| build_scenario(dag, config).map_err(|e| e.to_string()),
        &opts,
    )
    .map_err(CliError::Mismatch)?;
    Ok(format!("node {} completed all waves\n", cmd.node))
}

/// Kill and wait every joiner child. Used on launch error paths so a
/// failed run never leaves orphaned joiner processes behind; `kill` on
/// an already-exited child is a no-op error we ignore, and `wait` then
/// reaps it either way. A killed joiner never runs its own segment
/// teardown, so its shared-memory segments are reaped here by pid.
fn reap_joiners(children: Vec<(u32, std::process::Child)>) {
    for (_, mut child) in children {
        let pid = child.id();
        let _ = child.kill();
        let _ = child.wait();
        shm::reap_pid(&shm::segment_dir(), pid);
    }
}

/// Fork one joiner process per node over loopback, serve in-process,
/// then verify the merged ledger against a single-process run of the
/// same workflow. Errors (including a ledger mismatch) exit nonzero.
pub fn launch_cmd(cmd: &LaunchCmd) -> Result<String, CliError> {
    let scenario = build_scenario(&cmd.dag, &cmd.config)?;
    let nodes = map_scenario(&scenario, cmd.strategy).machine.nodes;
    if cmd.procs != nodes + 1 {
        return Err(CliError::Mismatch(format!(
            "--procs {} does not fit this workflow: it maps to {nodes} node(s), \
             so launch needs {} processes (1 server + {nodes} joiners)",
            cmd.procs,
            nodes + 1
        )));
    }
    let listener = TcpListener::bind("127.0.0.1:0")
        .map_err(|e| CliError::Io(format!("cannot bind loopback: {e}")))?;
    let addr = listener
        .local_addr()
        .map_err(|e| CliError::Io(format!("cannot resolve loopback address: {e}")))?
        .to_string();
    let exe = std::env::current_exe()
        .map_err(|e| CliError::Io(format!("cannot locate own executable: {e}")))?;

    let mut children = Vec::new();
    for node in 0..nodes {
        let mut join_args = vec![
            "join".to_string(),
            "--connect".to_string(),
            addr.clone(),
            "--node".to_string(),
            node.to_string(),
            "--timeout-ms".to_string(),
            cmd.timeout_ms.to_string(),
        ];
        if cmd.no_shm {
            join_args.push("--no-shm".to_string());
        }
        let spawned = std::process::Command::new(&exe)
            .args(&join_args)
            .stdout(std::process::Stdio::null())
            .spawn()
            .map_err(|e| CliError::Io(format!("cannot spawn joiner {node}: {e}")));
        match spawned {
            Ok(child) => children.push((node, child)),
            Err(e) => {
                // A joiner failed to start: the run cannot proceed, so
                // reap the ones already spawned instead of leaving them
                // waiting on a server that will never dispatch.
                reap_joiners(children);
                return Err(e);
            }
        }
    }

    // The hub always records metrics: the transport-topology claims —
    // no data-plane frames through the hub in p2p mode, same-host
    // PullData off the socket in shm mode — are checked, not assumed.
    let recorder = Recorder::enabled();
    let opts = ServeOptions {
        strategy: cmd.strategy,
        timeout: Duration::from_millis(cmd.timeout_ms),
        p2p: cmd.p2p,
        shm: !cmd.no_shm,
        recorder: recorder.clone(),
        ..ServeOptions::default()
    };
    let outcome = match serve(&listener, &cmd.dag, &cmd.config, &scenario, &opts) {
        Ok(outcome) => outcome,
        Err(e) => {
            // The server side failed; surviving joiners may be blocked
            // on a run that will never finish. Kill and reap them so no
            // orphan outlives the launcher.
            reap_joiners(children);
            return Err(CliError::Mismatch(e));
        }
    };
    let mut joiner_failures = Vec::new();
    for (node, mut child) in children {
        let pid = child.id();
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => joiner_failures.push(format!("joiner {node} exited with {status}")),
            Err(e) => joiner_failures.push(format!("joiner {node} did not exit cleanly: {e}")),
        }
        // A joiner that died mid-run never unlinked its segments; a
        // clean one already did, making this a cheap no-op.
        shm::reap_pid(&shm::segment_dir(), pid);
    }
    if let Some(fail) = joiner_failures.first() {
        return Err(CliError::Mismatch(fail.clone()));
    }

    let mut out = format!("launch:    1 server + {nodes} joiner process(es) over {addr}\n");
    out.push_str(&render_outcome(&outcome));
    out.push_str(&render_merged_telemetry(
        &outcome,
        cmd.trace_out.as_ref(),
        cmd.profile_out.as_ref(),
    )?);
    if !outcome.errors.is_empty() {
        return Err(CliError::Mismatch(format!(
            "distributed run hit {} task error(s)",
            outcome.errors.len()
        )));
    }

    // The correctness anchor: the merged distributed ledger must be
    // byte-identical to the single-process threaded run.
    let expected = run_threaded(&scenario, cmd.strategy);
    if outcome.ledger != expected.ledger {
        return Err(CliError::Mismatch(format!(
            "ledger mismatch: distributed run accounted {} inter-app bytes, \
             single-process run {}",
            outcome.ledger.total_bytes(TrafficClass::InterApp),
            expected.ledger.total_bytes(TrafficClass::InterApp),
        )));
    }
    out.push_str(&format!(
        "ledger:    byte-identical to the single-process run ({} B total inter-app)\n",
        outcome.ledger.total_bytes(TrafficClass::InterApp)
    ));
    if cmd.p2p {
        let through_hub = recorder.metrics_snapshot().counter("net.pull_frames_hub");
        if through_hub != 0 {
            return Err(CliError::Mismatch(format!(
                "p2p violation: {through_hub} PullData frame(s) traversed the hub"
            )));
        }
        let sub_through_hub = recorder.metrics_snapshot().counter("net.sub_push_hub");
        if sub_through_hub != 0 {
            return Err(CliError::Mismatch(format!(
                "p2p violation: {sub_through_hub} SubPush frame(s) traversed the hub"
            )));
        }
        out.push_str("p2p:       0 PullData / 0 SubPush frames through the hub\n");
    }
    // Transport census for the shared-memory plane. Every launch
    // process shares this host, so with shm on every PullData should
    // ride a segment; the counters make that greppable rather than
    // assumed (ring-full fallbacks legitimately shift frames back to
    // the socket, so the census reports rather than hard-fails).
    if cmd.no_shm {
        out.push_str("shm:       disabled (--no-shm), PullData on the socket\n");
    } else {
        let joiner_sum = |key: &str| -> u64 {
            outcome
                .telemetry
                .iter()
                .map(|t| t.counters.get(key).copied().unwrap_or(0))
                .sum()
        };
        // net.shm_frames ticks on both ends of a transfer, so the
        // joiner sum counts each frame at its producer and consumer.
        let shm_frames = joiner_sum("net.shm_frames");
        let fallbacks = joiner_sum("net.shm_fallbacks");
        let hub_pulls = recorder.metrics_snapshot().counter("net.pull_frames_hub");
        out.push_str(&format!(
            "shm:       {shm_frames} shared-memory frame event(s), \
             {hub_pulls} PullData through the hub, {fallbacks} fallback(s)\n"
        ));
    }
    // Standing-query census: how many subscriptions the workflow
    // declared and what the push plane actually did. Pushes and
    // deliveries tick in the joiner that performed them, so the joiner
    // sum is the run total; lagged > 0 means a subscriber queue
    // overflowed and a resync get healed the gap.
    if !scenario.subscriptions.is_empty() {
        let joiner_sum = |key: &str| -> u64 {
            outcome
                .telemetry
                .iter()
                .map(|t| t.counters.get(key).copied().unwrap_or(0))
                .sum()
        };
        out.push_str(&format!(
            "sub:       {} subscription(s), {} push(es), {} delivery(ies), {} lagged\n",
            scenario.subscriptions.len(),
            joiner_sum("sub.pushes"),
            joiner_sum("sub.deliveries"),
            joiner_sum("sub.lagged"),
        ));
    }
    if let Some(path) = &cmd.ledger_out {
        out.push_str(&write_ledger(path, &outcome)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAG: &str = "\
APP_ID 1
APP_ID 2
BUNDLE 1 2
";
    const CFG: &str = "\
CORES_PER_NODE 4
DOMAIN 8 8 8
HALO 1
APP 1 GRID 2 2 1 DIST blocked
APP 2 GRID 2 1 2 DIST blocked
COUPLING VAR t PRODUCER 1 CONSUMERS 2 MODE concurrent
";

    #[test]
    fn join_cmd_fails_fast_on_unreachable_address() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let err = join_cmd(&JoinCmd {
            connect: addr.clone(),
            node: 0,
            timeout_ms: 150,
            no_shm: false,
        })
        .unwrap_err();
        assert!(err.to_string().contains(&addr), "{err}");
    }

    #[test]
    fn serve_cmd_fails_fast_without_joiners() {
        let err = serve_cmd(&ServeCmd {
            dag: DAG.into(),
            config: CFG.into(),
            listen: "127.0.0.1:0".into(),
            strategy: MappingStrategy::DataCentric,
            timeout_ms: 150,
            ledger_out: None,
            trace_out: None,
            profile_out: None,
            p2p: false,
            no_shm: false,
        })
        .unwrap_err();
        assert!(err.to_string().contains("joiners"), "{err}");
    }

    #[test]
    fn serve_cmd_reports_busy_port_cleanly() {
        // Hold the port, then ask serve to bind it: the failure must be
        // a clean CLI error naming the address, not a panic.
        let holder = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = holder.local_addr().unwrap().to_string();
        let err = serve_cmd(&ServeCmd {
            dag: DAG.into(),
            config: CFG.into(),
            listen: addr.clone(),
            strategy: MappingStrategy::DataCentric,
            timeout_ms: 150,
            ledger_out: None,
            trace_out: None,
            profile_out: None,
            p2p: false,
            no_shm: false,
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            matches!(err, CliError::Io(_)) && msg.contains(&addr),
            "{msg}"
        );
    }

    #[test]
    fn reap_joiners_kills_stuck_children() {
        let child = std::process::Command::new("sleep")
            .arg("600")
            .spawn()
            .unwrap();
        let started = std::time::Instant::now();
        reap_joiners(vec![(0, child)]);
        // reap_joiners returns only after the child is dead and waited
        // on — far sooner than the sleep would have finished.
        assert!(started.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn launch_cmd_rejects_wrong_proc_count() {
        let err = launch_cmd(&LaunchCmd {
            dag: DAG.into(),
            config: CFG.into(),
            procs: 7,
            strategy: MappingStrategy::DataCentric,
            timeout_ms: 1000,
            ledger_out: None,
            trace_out: None,
            profile_out: None,
            p2p: false,
            no_shm: false,
        })
        .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("--procs 7") && msg.contains("3 processes"),
            "{msg}"
        );
    }
}
