//! Library half of the `insitu` command-line driver: workload
//! configuration parsing and scenario assembly, kept separate from
//! `main.rs` so it is unit-testable.
//!
//! The DAG structure comes from the paper's Listing-1 description file;
//! the workload configuration (task counts, decompositions, couplings,
//! machine shape) comes from a companion file in a similar line-oriented
//! format:
//!
//! ```text
//! # workload configuration
//! CORES_PER_NODE 12
//! DOMAIN 64 64 64
//! HALO 2
//! ITERATIONS 1
//! APP 1 GRID 2 2 2 DIST blocked
//! APP 2 GRID 4 1 1 DIST block-cyclic 8 8 8
//! COUPLING VAR temperature PRODUCER 1 CONSUMERS 2 MODE concurrent
//! ```
//!
//! Plain text keeps the driver free of serialization dependencies and
//! close to the paper's own file format.

#![warn(missing_docs)]

pub mod config;
pub mod distrib;
pub mod driver;
pub mod svc_cmd;

pub use config::{parse_config, ConfigError, WorkloadConfig};
pub use distrib::{join_cmd, launch_cmd, serve_cmd, JoinCmd, LaunchCmd, ServeCmd};
pub use driver::{
    build_scenario, gate, profile, run, CliError, GateOptions, Options, ProfileOptions,
};
pub use svc_cmd::{
    cancel_cmd, service_cmd, status_cmd, submit_cmd, watch_cmd, CancelCmd, ServiceCmd, StatusCmd,
    SubmitCmd, SubmitSource, WatchCmd,
};
