//! The joiner's peer table: lazy direct node↔node connections for the
//! p2p data plane.
//!
//! In reactor mode every joiner advertises a loopback listener in its
//! `Hello`, and the `Welcome` hands back the full address table. A
//! direct connection to an owner node is dialed on first use (the first
//! `PullRequest` routed to that node) and cached; both directions of
//! the pull protocol then ride that one socket, managed by the
//! joiner's reactor.
//!
//! Dialing goes through [`connect_with_retry`], so a refused peer —
//! e.g. one still binding its listener — is retried transparently
//! until the dial budget elapses, counting each failed attempt on the
//! `net.reconnects` counter. A connection that later drops is forgotten
//! on its `Closed` event, so the next pull re-dials from scratch.

use crate::conn::{connect_with_retry, NetError, NetMetrics};
use crate::reactor::{ReactorHandle, Sink, Token};
use insitu_fabric::FaultInjector;
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// Established (or establishable) direct connections to peer nodes.
pub(crate) struct PeerTable {
    /// Peer data-plane addresses indexed by node, from `Welcome`.
    addrs: Vec<String>,
    /// Live connections by owner node.
    conns: Mutex<HashMap<u32, Token>>,
    /// Per-dial retry budget.
    dial_timeout: Duration,
}

impl PeerTable {
    pub(crate) fn new(addrs: Vec<String>, dial_timeout: Duration) -> Self {
        PeerTable {
            addrs,
            conns: Mutex::new(HashMap::new()),
            dial_timeout,
        }
    }

    /// The token of the live connection to `node`, dialing it first if
    /// needed. `make_sink` builds the event sink for a freshly-dialed
    /// connection. The table lock is held across the dial so concurrent
    /// pulls to one owner share a single connection attempt.
    pub(crate) fn ensure(
        &self,
        node: u32,
        self_node: u32,
        handle: &ReactorHandle,
        injector: &FaultInjector,
        metrics: &NetMetrics,
        make_sink: impl FnOnce(Token) -> Sink,
    ) -> Result<Token, NetError> {
        let mut conns = self.conns.lock().unwrap();
        if let Some(token) = conns.get(&node) {
            return Ok(*token);
        }
        let addr = self
            .addrs
            .get(node as usize)
            .filter(|a| !a.is_empty())
            .ok_or_else(|| NetError::Protocol(format!("no peer address for node {node}")))?;
        let stream = connect_with_retry(addr, self_node, self.dial_timeout, injector, metrics)?;
        let token = handle.alloc_token();
        handle.add_stream(token, stream, make_sink(token));
        conns.insert(node, token);
        Ok(token)
    }

    /// Forget a dropped connection so the next pull re-dials.
    pub(crate) fn forget(&self, token: Token) {
        self.conns.lock().unwrap().retain(|_, t| *t != token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Frame;
    use crate::reactor::{ConnEvent, Reactor};
    use insitu_telemetry::Recorder;
    use std::net::TcpListener;
    use std::sync::mpsc;

    /// A refused-then-listening peer recovers transparently: the dial
    /// retries until the listener appears, `net.reconnects` counts the
    /// failed attempts, and the connection then carries frames.
    #[test]
    fn refused_peer_recovers_and_counts_reconnects() {
        let metrics = NetMetrics::new(&Recorder::enabled());
        let reactor = Reactor::spawn("dialer", FaultInjector::none(), metrics.clone()).unwrap();

        // Reserve a port, then close it so the first attempts are
        // refused; re-bind it shortly after from another thread.
        let placeholder = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = placeholder.local_addr().unwrap().to_string();
        drop(placeholder);
        let echo_addr = addr.clone();
        let (done_tx, done_rx) = mpsc::channel::<()>();
        let echo = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            let listener = TcpListener::bind(&echo_addr).expect("rebind peer port");
            let echo_reactor = Reactor::spawn(
                "echo",
                FaultInjector::none(),
                NetMetrics::new(&Recorder::enabled()),
            )
            .unwrap();
            let handle = echo_reactor.handle();
            echo_reactor.handle().add_listener(
                listener,
                Box::new(move |token, _| {
                    let h = handle.clone();
                    Box::new(move |ev| {
                        if let ConnEvent::Frame(f) = ev {
                            h.send(token, f);
                        }
                    })
                }),
            );
            // Keep the echo reactor alive until the exchange finished.
            let _ = done_rx.recv_timeout(Duration::from_secs(30));
            echo_reactor.shutdown();
        });

        let table = PeerTable::new(vec![addr], Duration::from_secs(10));
        let (tx, rx) = mpsc::channel();
        let token = table
            .ensure(
                0,
                1,
                &reactor.handle(),
                &FaultInjector::none(),
                &metrics,
                |_| {
                    Box::new(move |ev| {
                        if let ConnEvent::Frame(f) = ev {
                            let _ = tx.send(f);
                        }
                    })
                },
            )
            .expect("refused-then-listening peer should recover");
        assert!(
            metrics.reconnects.get() >= 1,
            "expected failed dial attempts to count, got {}",
            metrics.reconnects.get()
        );
        // The recovered connection really works end to end.
        reactor.handle().send(token, Frame::RunWave { wave: 42 });
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)).unwrap(),
            Frame::RunWave { wave: 42 }
        );
        // A second ensure reuses the cached connection (no new dial).
        let again = table
            .ensure(
                0,
                1,
                &reactor.handle(),
                &FaultInjector::none(),
                &metrics,
                |_| Box::new(|_| {}),
            )
            .unwrap();
        assert_eq!(again, token);
        // After forgetting, the entry is gone and a re-dial would start
        // fresh.
        table.forget(token);
        assert!(table.conns.lock().unwrap().is_empty());
        drop(done_tx);
        echo.join().unwrap();
    }

    #[test]
    fn missing_peer_address_is_a_protocol_error() {
        let metrics = NetMetrics::new(&Recorder::disabled());
        let reactor = Reactor::spawn("d", FaultInjector::none(), metrics.clone()).unwrap();
        let table = PeerTable::new(vec![String::new()], Duration::from_millis(50));
        let err = table
            .ensure(
                0,
                1,
                &reactor.handle(),
                &FaultInjector::none(),
                &metrics,
                |_| Box::new(|_| {}),
            )
            .unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err:?}");
        // Out-of-range node as well.
        let err = table
            .ensure(
                5,
                1,
                &reactor.handle(),
                &FaultInjector::none(),
                &metrics,
                |_| Box::new(|_| {}),
            )
            .unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err:?}");
    }
}
