//! The connection layer: counted, fault-gated frame I/O over
//! `std::net::TcpStream`, per-peer writer threads and retrying connect.
//!
//! Fault gating is by frame class, decided here (the caller of the
//! codec), not in the chaos plan: only fault-eligible frames — the
//! data plane ([`Frame::PullData`]) and the telemetry plane
//! ([`Frame::Telemetry`], whose loss degrades observability, never a
//! run) — are offered to the `net.send` / `net.recv` sites, because
//! dropping other control frames would model an unreliable management
//! server, which neither the paper's system nor this one has. Connect
//! attempts are offered to `net.connect` on every try.

use crate::frame::{Frame, FrameError};
use insitu_fabric::{FaultAction, FaultInjector, NetOp};
use insitu_telemetry::{Counter, Gauge, Recorder};
use insitu_util::channel::{unbounded, Receiver, Sender};
use std::io::Write;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Wire-transport failures, as seen by the hub and the link.
#[derive(Clone, Debug, PartialEq)]
pub enum NetError {
    /// Underlying socket error (includes a peer hanging up).
    Io(String),
    /// A deadline expired (connect retries, barrier or report waits).
    Timeout(String),
    /// The peer violated the protocol (bad handshake, out-of-range node).
    Protocol(String),
    /// The codec rejected a frame.
    Frame(FrameError),
    /// An injected `net.connect` fault forbade the operation.
    Fault(String),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "net i/o: {e}"),
            NetError::Timeout(e) => write!(f, "net timeout: {e}"),
            NetError::Protocol(e) => write!(f, "net protocol: {e}"),
            NetError::Frame(e) => write!(f, "net frame: {e}"),
            NetError::Fault(e) => write!(f, "net fault injected: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<FrameError> for NetError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(io) => NetError::Io(io),
            other => NetError::Frame(other),
        }
    }
}

/// The subsystem's telemetry counters, surfaced in the registry
/// snapshot as `net.*`.
#[derive(Clone)]
pub struct NetMetrics {
    /// Frame bytes written to sockets (length word included).
    pub bytes_sent: Counter,
    /// Frame bytes read from sockets (length word included).
    pub bytes_recv: Counter,
    /// Frames moved in either direction.
    pub frames: Counter,
    /// Connect attempts that failed and were retried.
    pub reconnects: Counter,
    /// PullData frames routed through the hub (star topology). The p2p
    /// acceptance gate asserts this stays zero in reactor mode: the hub
    /// must carry control traffic only.
    pub pull_hub: Counter,
    /// PullData frames staged on direct node↔node links (p2p topology).
    pub pull_p2p: Counter,
    /// SubPush frames routed through the hub (star topology). Like
    /// `pull_hub`, the p2p acceptance gate asserts this stays zero in
    /// reactor mode.
    pub sub_push_hub: Counter,
    /// SubPush frames staged on direct node↔node links (p2p topology).
    pub sub_push_p2p: Counter,
    /// Link-stall episodes declared by the service watchdog (no pull
    /// progress within its stall window, or p99 drift past its factor).
    pub link_stalls: Counter,
    /// Payload bytes moved through intra-host shared-memory rings
    /// (either direction), never touching a socket.
    pub shm_bytes: Counter,
    /// PullData records moved through intra-host shared-memory rings.
    pub shm_frames: Counter,
    /// Times a same-host pair degraded a record (or the whole pair) to
    /// the TCP path: attach failures, ring backpressure deadlines,
    /// payloads larger than the arena.
    pub shm_fallbacks: Counter,
    /// Pulls requested but not yet landed, kept current by the link.
    pub pulls_in_flight: Gauge,
    /// Bytes staged on this process's reactor send paths, encoded but
    /// not yet flushed to a socket — the wire-side queue depth. Stays 0
    /// in star mode, where the writer threads block instead of staging.
    pub bytes_in_flight: Gauge,
}

impl NetMetrics {
    /// Counters registered under `net.*` in `recorder`.
    pub fn new(recorder: &Recorder) -> Self {
        NetMetrics {
            bytes_sent: recorder.counter("net.bytes_sent"),
            bytes_recv: recorder.counter("net.bytes_recv"),
            frames: recorder.counter("net.frames"),
            reconnects: recorder.counter("net.reconnects"),
            pull_hub: recorder.counter("net.pull_frames_hub"),
            pull_p2p: recorder.counter("net.pull_frames_p2p"),
            sub_push_hub: recorder.counter("net.sub_push_hub"),
            sub_push_p2p: recorder.counter("net.sub_push_p2p"),
            link_stalls: recorder.counter("net.link_stalls"),
            shm_bytes: recorder.counter("net.shm_bytes"),
            shm_frames: recorder.counter("net.shm_frames"),
            shm_fallbacks: recorder.counter("net.shm_fallbacks"),
            pulls_in_flight: recorder.gauge("net.pulls_in_flight"),
            bytes_in_flight: recorder.gauge("net.bytes_in_flight"),
        }
    }
}

/// Write one frame, consulting the `net.send` fault site for
/// fault-eligible frames (pull data and telemetry batches). A dropped
/// frame is silently not written (the wire "lost" it); a delayed frame
/// sleeps first. Control-plane frames bypass the injector entirely.
pub fn send_frame(
    stream: &mut TcpStream,
    frame: &Frame,
    injector: &FaultInjector,
    metrics: &NetMetrics,
) -> Result<(), NetError> {
    if frame.fault_eligible() {
        let (a, b) = frame.fault_ids();
        match injector.on_net(NetOp::Send, frame.kind(), a, b) {
            FaultAction::Drop => return Ok(()),
            FaultAction::Delay(d) => std::thread::sleep(d),
            FaultAction::Proceed => {}
        }
    }
    let bytes = frame.encode();
    stream
        .write_all(&bytes)
        .and_then(|_| stream.flush())
        .map_err(|e| NetError::Io(e.to_string()))?;
    metrics.bytes_sent.add(bytes.len() as u64);
    metrics.frames.inc();
    Ok(())
}

/// Read frames until one survives the `net.recv` fault site. Bytes and
/// frames are counted on arrival (the wire carried them); a dropped
/// fault-eligible frame is then discarded and the read continues,
/// exactly as if the frame had been lost in flight.
pub fn recv_frame(
    stream: &mut TcpStream,
    injector: &FaultInjector,
    metrics: &NetMetrics,
) -> Result<Frame, NetError> {
    loop {
        let frame = Frame::read_from(stream)?;
        metrics.bytes_recv.add(frame.encode().len() as u64);
        metrics.frames.inc();
        if frame.fault_eligible() {
            let (a, b) = frame.fault_ids();
            match injector.on_net(NetOp::Recv, frame.kind(), a, b) {
                FaultAction::Drop => continue,
                FaultAction::Delay(d) => std::thread::sleep(d),
                FaultAction::Proceed => {}
            }
        }
        return Ok(frame);
    }
}

/// Connect to `addr`, retrying until `timeout` elapses.
///
/// Each attempt consults the `net.connect` fault site with ids
/// `(node, 0)`; a `Drop` verdict fails immediately — the site is
/// deterministic, so retrying would reroll the same refusal forever.
/// Unresolvable addresses fail immediately with a clear error; refused
/// or unreachable endpoints are retried (counting `net.reconnects`)
/// until the deadline, then fail with an error naming the address.
pub fn connect_with_retry(
    addr: &str,
    node: u32,
    timeout: Duration,
    injector: &FaultInjector,
    metrics: &NetMetrics,
) -> Result<TcpStream, NetError> {
    let deadline = Instant::now() + timeout;
    let targets: Vec<_> = addr
        .to_socket_addrs()
        .map_err(|e| NetError::Protocol(format!("cannot resolve {addr}: {e}")))?
        .collect();
    let target = *targets
        .first()
        .ok_or_else(|| NetError::Protocol(format!("{addr} resolves to no address")))?;
    let mut last_err = String::new();
    loop {
        match injector.on_net(NetOp::Connect, 0, node as u64, 0) {
            FaultAction::Drop => {
                return Err(NetError::Fault(format!(
                    "connect from node {node} to {addr} dropped"
                )));
            }
            FaultAction::Delay(d) => std::thread::sleep(d),
            FaultAction::Proceed => {}
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(NetError::Timeout(format!(
                "could not connect to {addr} within {}ms: {last_err}",
                timeout.as_millis()
            )));
        }
        let budget = (deadline - now).min(Duration::from_millis(250));
        match TcpStream::connect_timeout(&target, budget) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                last_err = e.to_string();
                metrics.reconnects.inc();
                std::thread::sleep(Duration::from_millis(30));
            }
        }
    }
}

/// What a writer thread dequeues.
enum Out {
    Frame(Frame),
    Close,
}

/// A cloneable handle that enqueues frames for a peer's writer thread.
/// FIFO per peer: frames hit the wire in enqueue order, which — over
/// TCP's own ordering — is what the wave barriers rely on.
#[derive(Clone)]
pub struct PeerHandle {
    tx: Sender<Out>,
}

impl PeerHandle {
    /// Enqueue `frame`; never blocks. Silently ignored after close or
    /// writer failure (the peer is gone either way, and the run-level
    /// barriers surface that).
    pub fn send(&self, frame: Frame) {
        let _ = self.tx.send(Out::Frame(frame));
    }
}

/// One peer's writer: a dedicated thread draining an unbounded queue
/// onto the socket, so protocol threads never block on peer sockets.
pub struct Peer {
    tx: Sender<Out>,
    writer: std::sync::Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Peer {
    /// Spawn the writer thread over its own clone of `stream`.
    pub fn spawn(
        stream: TcpStream,
        injector: FaultInjector,
        metrics: NetMetrics,
        label: String,
    ) -> std::io::Result<Peer> {
        let mut stream = stream;
        let (tx, rx): (Sender<Out>, Receiver<Out>) = unbounded();
        let writer = std::thread::Builder::new()
            .name(format!("net-writer-{label}"))
            .spawn(move || {
                while let Ok(Out::Frame(frame)) = rx.recv() {
                    if send_frame(&mut stream, &frame, &injector, &metrics).is_err() {
                        // The peer hung up; drain silently so senders
                        // never block. The run-level barriers report it.
                        break;
                    }
                }
            })?;
        Ok(Peer {
            tx,
            writer: std::sync::Mutex::new(Some(writer)),
        })
    }

    /// A cloneable enqueue handle for other threads.
    pub fn handle(&self) -> PeerHandle {
        PeerHandle {
            tx: self.tx.clone(),
        }
    }

    /// Enqueue `frame`.
    pub fn send(&self, frame: Frame) {
        let _ = self.tx.send(Out::Frame(frame));
    }

    /// Flush and stop: the writer drains every queued frame onto the
    /// wire, then exits; blocks until it has. Frames sent after close
    /// are silently discarded (the peer is gone).
    pub fn close(&self) {
        let _ = self.tx.send(Out::Close);
        if let Some(h) = self.writer.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Peer {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    #[test]
    fn frames_cross_a_socket_and_are_counted() {
        let (mut a, mut b) = pair();
        let inj = FaultInjector::none();
        let m = NetMetrics::new(&Recorder::disabled());
        let frame = Frame::Barrier { wave: 4, node: 1 };
        send_frame(&mut a, &frame, &inj, &m).unwrap();
        assert_eq!(recv_frame(&mut b, &inj, &m).unwrap(), frame);
        let wire = frame.encode().len() as u64;
        assert_eq!(m.bytes_sent.get(), wire);
        assert_eq!(m.bytes_recv.get(), wire);
        assert_eq!(m.frames.get(), 2);
    }

    #[test]
    fn writer_thread_preserves_fifo_and_flushes_on_close() {
        let (a, mut b) = pair();
        let inj = FaultInjector::none();
        let m = NetMetrics::new(&Recorder::disabled());
        let peer = Peer::spawn(a, inj.clone(), m.clone(), "test".into()).unwrap();
        for wave in 0..32 {
            peer.send(Frame::RunWave { wave });
        }
        peer.close();
        for wave in 0..32 {
            assert_eq!(
                recv_frame(&mut b, &inj, &m).unwrap(),
                Frame::RunWave { wave }
            );
        }
    }

    #[test]
    fn connect_retries_until_listener_appears() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        // Nothing is listening: a short budget times out with the
        // address in the error.
        let m = NetMetrics::new(&Recorder::disabled());
        let err = connect_with_retry(
            &addr,
            0,
            Duration::from_millis(120),
            &FaultInjector::none(),
            &m,
        )
        .unwrap_err();
        match err {
            NetError::Timeout(msg) => assert!(msg.contains(&addr), "{msg}"),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert!(m.reconnects.get() >= 1);
    }

    #[test]
    fn unresolvable_address_fails_immediately() {
        let err = connect_with_retry(
            "definitely-not-a-host.invalid:1",
            0,
            Duration::from_secs(30),
            &FaultInjector::none(),
            &NetMetrics::new(&Recorder::disabled()),
        )
        .unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err:?}");
    }
}
