//! The execution client's end of the wire: `NetLink` implements both
//! [`insitu_dart::Transport`] (mailbox forwarding, buffer publication,
//! pull requests) and [`insitu_cods::space::SpaceMirror`] (DHT-replica
//! maintenance), speaking frames to the hub over one TCP connection.
//!
//! Construction is two-phase because the link and the runtime need each
//! other: build the `NetLink` first (it only needs the socket), hand it
//! to `DartRuntime::with_transport` and `CodsSpace::with_mirror`, then
//! call [`NetLink::start_reader`] with both — it spawns the demux
//! reader and returns the control channel (`RunWave` / `Shutdown`)
//! that drives the joiner's wave loop.

use crate::conn::{recv_frame, NetError, NetMetrics, Peer};
use crate::frame::{Frame, FrameError, NodeReport};
use insitu_cods::space::SpaceMirror;
use insitu_cods::{CodsSpace, LocationEntry};
use insitu_dart::transport::Transport;
use insitu_dart::{BufKey, DartRuntime, Msg};
use insitu_domain::BoundingBox;
use insitu_fabric::{ClientId, FaultInjector};
use insitu_util::channel::{unbounded, Receiver, Sender};
use insitu_util::Bytes;
use std::collections::HashSet;
use std::net::TcpStream;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Control frames the reader surfaces to the joiner's wave loop.
#[derive(Clone, Debug, PartialEq)]
pub enum Ctl {
    /// Run the local tasks of this wave.
    RunWave(u32),
    /// The server ended the run.
    Shutdown {
        /// Whether the run completed successfully.
        ok: bool,
        /// Human-readable reason (empty on success).
        reason: String,
    },
}

/// One joiner process's connection to the hub.
pub struct NetLink {
    node: u32,
    cores_per_node: u32,
    peer: Peer,
    injector: FaultInjector,
    metrics: NetMetrics,
    /// The demux reader's own clone of the stream.
    stream: Mutex<Option<TcpStream>>,
    /// Keys with an outstanding `PullRequest`, so concurrent local
    /// waiters ask the owner once, not once per waiter.
    inflight: Mutex<HashSet<BufKey>>,
    /// How long the owner side waits for a requested buffer to be put
    /// before answering `PullNack`.
    get_timeout: Duration,
    dart: OnceLock<Arc<DartRuntime>>,
    space: OnceLock<Arc<CodsSpace>>,
}

impl NetLink {
    /// Wrap an established, greeted connection. `stream` must be past
    /// the Hello/Welcome handshake; `get_timeout` mirrors the space's
    /// get timeout (from `Welcome`).
    pub fn new(
        stream: TcpStream,
        node: u32,
        cores_per_node: u32,
        get_timeout: Duration,
        injector: FaultInjector,
        metrics: NetMetrics,
    ) -> Result<Arc<NetLink>, NetError> {
        let reader = stream
            .try_clone()
            .map_err(|e| NetError::Io(e.to_string()))?;
        let peer = Peer::spawn(
            stream,
            injector.clone(),
            metrics.clone(),
            format!("node-{node}"),
        )
        .map_err(|e| NetError::Io(e.to_string()))?;
        Ok(Arc::new(NetLink {
            node,
            cores_per_node,
            peer,
            injector,
            metrics,
            stream: Mutex::new(Some(reader)),
            inflight: Mutex::new(HashSet::new()),
            get_timeout,
            dart: OnceLock::new(),
            space: OnceLock::new(),
        }))
    }

    /// The simulated node this process hosts.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Spawn the demux reader thread and return the control channel it
    /// feeds. Must be called exactly once, after the runtime and space
    /// were built around this link.
    pub fn start_reader(
        self: &Arc<Self>,
        dart: Arc<DartRuntime>,
        space: Arc<CodsSpace>,
    ) -> Receiver<Ctl> {
        self.dart.set(dart).ok().expect("start_reader called twice");
        self.space
            .set(space)
            .ok()
            .expect("start_reader called twice");
        let (ctl_tx, ctl_rx) = unbounded();
        let link = Arc::clone(self);
        let mut stream = self
            .stream
            .lock()
            .unwrap()
            .take()
            .expect("start_reader called twice");
        std::thread::Builder::new()
            .name(format!("net-reader-{}", self.node))
            .spawn(move || link.read_loop(&mut stream, &ctl_tx))
            .expect("spawn net reader");
        ctl_rx
    }

    /// Tell the server this node finished a wave.
    pub fn barrier(&self, wave: u32) {
        self.peer.send(Frame::Barrier {
            wave,
            node: self.node,
        });
    }

    /// Send the final per-process report.
    pub fn report(&self, report: NodeReport) {
        self.peer.send(Frame::Report(report));
    }

    /// Flush every queued frame onto the wire and stop the writer.
    /// Call before process exit so the `Report` is not lost.
    pub fn close(&self) {
        self.peer.close();
    }

    fn read_loop(&self, stream: &mut TcpStream, ctl: &Sender<Ctl>) {
        let dart = self.dart.get().expect("reader after start").clone();
        let space = self.space.get().expect("reader after start").clone();
        loop {
            let frame = match recv_frame(stream, &self.injector, &self.metrics) {
                Ok(f) => f,
                Err(NetError::Frame(FrameError::Truncated)) => {
                    let _ = ctl.send(Ctl::Shutdown {
                        ok: false,
                        reason: "server closed the connection".into(),
                    });
                    return;
                }
                Err(e) => {
                    let _ = ctl.send(Ctl::Shutdown {
                        ok: false,
                        reason: format!("server connection lost: {e}"),
                    });
                    return;
                }
            };
            match frame {
                Frame::Relay {
                    to,
                    src,
                    tag,
                    payload,
                } => {
                    dart.deliver(
                        to,
                        Msg {
                            src,
                            tag,
                            payload: Bytes::copy_from_slice(&payload),
                        },
                    );
                }
                Frame::PullRequest {
                    name,
                    version,
                    piece,
                    from_node,
                } => self.answer_pull(name, version, piece, from_node, &dart),
                Frame::PullData {
                    name,
                    version,
                    piece,
                    owner,
                    data,
                    ..
                } => {
                    let key = BufKey {
                        name,
                        version,
                        piece,
                    };
                    self.inflight.lock().unwrap().remove(&key);
                    // Register directly (NOT through the runtime): the
                    // bytes were accounted by the puller's `pull` and
                    // must not be re-published as a local put.
                    if dart.registry().get(&key).is_none() {
                        dart.registry()
                            .register(key, owner, Bytes::copy_from_slice(&data));
                    }
                }
                Frame::PullNack {
                    name,
                    version,
                    piece,
                    ..
                } => {
                    // The owner gave up; our local wait will time out
                    // and surface the pull failure. Allow a retry to
                    // re-request.
                    self.inflight.lock().unwrap().remove(&BufKey {
                        name,
                        version,
                        piece,
                    });
                }
                Frame::DhtInsert {
                    var,
                    version,
                    owner,
                    piece,
                    lbs,
                    ubs,
                } => {
                    space.apply_remote_dht_insert(
                        var,
                        version,
                        LocationEntry {
                            bbox: BoundingBox::new(&lbs, &ubs),
                            owner,
                            piece,
                        },
                    );
                }
                Frame::GetDone { var, version } => space.apply_remote_get_done(var, version),
                Frame::Evict { var, version } => space.apply_remote_evict(var, version),
                Frame::RunWave { wave } => {
                    let _ = ctl.send(Ctl::RunWave(wave));
                }
                Frame::Shutdown { ok, reason } => {
                    let _ = ctl.send(Ctl::Shutdown { ok, reason });
                    return;
                }
                other => {
                    let _ = ctl.send(Ctl::Shutdown {
                        ok: false,
                        reason: format!("unexpected frame kind {} from server", other.kind()),
                    });
                    return;
                }
            }
        }
    }

    /// Serve one remote pull: wait (on a throwaway thread, so the demux
    /// loop never blocks) for the buffer to be put locally, then answer
    /// with its bytes — or `PullNack` if the producer never delivers
    /// within the get timeout.
    fn answer_pull(
        &self,
        name: u64,
        version: u64,
        piece: u64,
        from_node: u32,
        dart: &Arc<DartRuntime>,
    ) {
        let key = BufKey {
            name,
            version,
            piece,
        };
        let dart = Arc::clone(dart);
        let reply = self.peer.handle();
        let timeout = self.get_timeout;
        std::thread::Builder::new()
            .name("net-pull-wait".into())
            .spawn(move || match dart.registry().wait_for(&key, timeout) {
                Some(handle) => reply.send(Frame::PullData {
                    name,
                    version,
                    piece,
                    owner: handle.owner,
                    to_node: from_node,
                    data: handle.data.as_slice().to_vec(),
                }),
                None => reply.send(Frame::PullNack {
                    name,
                    version,
                    piece,
                    to_node: from_node,
                }),
            })
            .expect("spawn pull waiter");
    }
}

impl Transport for NetLink {
    fn hosts(&self, client: ClientId) -> bool {
        client / self.cores_per_node == self.node
    }

    fn forward(&self, to: ClientId, msg: &Msg) {
        self.peer.send(Frame::Relay {
            to,
            src: msg.src,
            tag: msg.tag,
            payload: msg.payload.as_slice().to_vec(),
        });
    }

    fn publish(&self, key: &BufKey, owner: ClientId, bytes: u64) {
        self.peer.send(Frame::PutNotify {
            name: key.name,
            version: key.version,
            piece: key.piece,
            owner,
            bytes,
        });
    }

    fn request(&self, key: &BufKey) {
        if !self.inflight.lock().unwrap().insert(*key) {
            return;
        }
        self.peer.send(Frame::PullRequest {
            name: key.name,
            version: key.version,
            piece: key.piece,
            from_node: self.node,
        });
    }
}

impl SpaceMirror for NetLink {
    fn dht_insert(&self, var: u64, version: u64, entry: &LocationEntry) {
        let nd = entry.bbox.ndim();
        self.peer.send(Frame::DhtInsert {
            var,
            version,
            owner: entry.owner,
            piece: entry.piece,
            lbs: (0..nd).map(|d| entry.bbox.lb(d)).collect(),
            ubs: (0..nd).map(|d| entry.bbox.ub(d)).collect(),
        });
    }

    fn get_done(&self, var: u64, version: u64) {
        self.peer.send(Frame::GetDone { var, version });
    }

    fn evict(&self, var: u64, version: u64) {
        self.peer.send(Frame::Evict { var, version });
    }
}
