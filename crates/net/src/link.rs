//! The execution client's end of the wire: `NetLink` implements both
//! [`insitu_dart::Transport`] (mailbox forwarding, buffer publication,
//! pull requests) and [`insitu_cods::space::SpaceMirror`] (DHT-replica
//! maintenance), speaking frames to the hub — and, in p2p mode,
//! directly to peer joiners.
//!
//! Two transports, chosen by the `Welcome`:
//!
//! - **Star** ([`NetLink::new`]): one hub connection with a FIFO writer
//!   thread and a blocking demux reader thread; every frame, including
//!   `PullData`, rides the hub.
//! - **Reactor/p2p** ([`NetLink::new_p2p`]): the hub connection, a
//!   local peer listener and every direct peer connection all live on
//!   one [`Reactor`] event-loop thread. `PullRequest` goes straight to
//!   the owner's node over a lazily-dialed direct connection (see
//!   [`PeerTable`]); the `PullData`/`PullNack` answer returns on the
//!   same socket. The hub carries only control traffic.
//!
//! Construction is two-phase because the link and the runtime need each
//! other: build the `NetLink` first (it only needs the socket), hand it
//! to `DartRuntime::with_transport` and `CodsSpace::with_mirror`, then
//! call [`NetLink::start_reader`] with both — it wires up the demux
//! (reader thread or reactor sinks) and returns the control channel
//! (`RunWave` / `Shutdown`) that drives the joiner's wave loop.
//!
//! The telemetry plane rides the same connections: with a flight
//! recorder attached ([`NetLink::set_flight`]) the link records a
//! `NetSend` event when it answers a remote pull and a `NetRecv` when
//! pulled bytes land, and at teardown [`NetLink::ship_telemetry`]
//! ships the recording to the hub in ack-paced batches for the
//! cross-process trace merge.

use crate::conn::{recv_frame, NetError, NetMetrics, Peer, PeerHandle};
use crate::frame::{Frame, FrameError, NodeReport};
use crate::peers::PeerTable;
use crate::reactor::{ConnEvent, Reactor, ReactorHandle, Sink, Token};
use insitu_cods::space::SpaceMirror;
use insitu_cods::{CodsSpace, LocationEntry};
use insitu_dart::transport::Transport;
use insitu_dart::{BufKey, DartRuntime, Msg};
use insitu_domain::BoundingBox;
use insitu_fabric::{ClientId, FaultInjector};
use insitu_obs::{Event, EventKind, FlightRecorder, LinkClass};
use insitu_sub::{SubId, SubSpec};
use insitu_util::channel::{unbounded, Receiver, Sender};
use insitu_util::shm::{self, MapRegion, PushError, RecordDesc, Ring, RingMem, ShmMap};
use insitu_util::Bytes;
use std::collections::{HashMap, HashSet};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Duration;

/// Control frames the reader surfaces to the joiner's wave loop.
#[derive(Clone, Debug, PartialEq)]
pub enum Ctl {
    /// Run the local tasks of this wave.
    RunWave(u32),
    /// The server ended the run.
    Shutdown {
        /// Whether the run completed successfully.
        ok: bool,
        /// Human-readable reason (empty on success).
        reason: String,
    },
}

/// The send path to the hub, by transport mode.
enum HubTx {
    /// FIFO writer thread over the hub socket.
    Star(Peer),
    /// The hub connection's token on this process's reactor.
    P2p(ReactorHandle, Token),
}

impl HubTx {
    fn send(&self, frame: Frame) {
        match self {
            HubTx::Star(peer) => peer.send(frame),
            HubTx::P2p(handle, token) => handle.send(*token, frame),
        }
    }
}

/// Where a pull answer goes: back up the hub (star) or out the same
/// direct connection the request arrived on (p2p).
#[derive(Clone)]
enum ReplyTx {
    Star(PeerHandle),
    Reactor(ReactorHandle, Token),
}

impl ReplyTx {
    fn send(&self, frame: Frame) {
        match self {
            ReplyTx::Star(handle) => handle.send(frame),
            ReplyTx::Reactor(handle, token) => handle.send(*token, frame),
        }
    }
}

/// Descriptor slots per directed shm pair.
const SHM_SLOTS: u32 = 256;

/// Payload arena bytes per directed shm pair. 4 MiB keeps a handful of
/// pairs inside a container's default 64 MiB `/dev/shm` while still
/// moving redistribution-sized pieces without falling back.
const SHM_ARENA: u64 = 4 << 20;

/// How long a producer spins on a full ring before degrading the
/// record to the wire. The wait itself is recorded as a shm-classed
/// `Pull` event, so backpressure shows up in the shm-wait quantiles.
const SHM_FULL_WAIT: Duration = Duration::from_millis(20);

/// Distinguishes segments created by different links in one process
/// (the in-process tests run every joiner as a thread, so pid alone
/// does not make names unique).
static SHM_NONCE: AtomicU64 = AtomicU64::new(1);

/// Fault/offer identity of the directed pair's segment. Derived from
/// the pair, not a counter, so a seeded chaos replay rolls the same
/// `shm-attach` verdicts run after run.
fn shm_segment_id(src: u32, dst: u32) -> u64 {
    ((src as u64) << 32) | dst as u64
}

/// The intra-host shared-memory data plane (DESIGN.md §13): host
/// fingerprints from the `Welcome` plus this link's producer and
/// consumer ring state. Present only after [`NetLink::set_shm`].
struct ShmPlane {
    /// Per-node host fingerprints, indexed by node id. An empty entry
    /// never matches (that joiner opted out or has no fingerprint); an
    /// empty table means the whole run opted out at the hub.
    hosts: Vec<String>,
    /// Producer side: outbound segment per consumer node. The per-pair
    /// inner lock serializes push/doorbell against the ack handler so a
    /// record is either in the ring when a nack resends `unconsumed`,
    /// or pushed after the pair flipped to TCP — never lost.
    out: Mutex<HashMap<u32, Arc<Mutex<ShmOut>>>>,
    /// Consumer side: attached ring per producer node.
    inbound: Mutex<HashMap<u32, Arc<Ring>>>,
}

/// Producer-side state of one directed pair.
enum ShmOut {
    /// Segment created and offered; pushes allowed. `path` is cleared
    /// by the early unlink once the consumer acks its attach.
    Live {
        ring: Arc<Ring>,
        segment: u64,
        path: Option<PathBuf>,
    },
    /// The pair degraded to the wire for good.
    Tcp,
}

/// One joiner process's connection(s) to the run.
pub struct NetLink {
    node: u32,
    cores_per_node: u32,
    hub: HubTx,
    injector: FaultInjector,
    metrics: NetMetrics,
    /// The hub stream, parked until `start_reader` wires up the demux.
    stream: Mutex<Option<TcpStream>>,
    /// The p2p peer listener, parked until `start_reader`.
    listener: Mutex<Option<TcpListener>>,
    /// The event loop (p2p mode only).
    reactor: Option<Reactor>,
    /// Direct connections to peer nodes (p2p mode only).
    peers: Option<PeerTable>,
    /// Back-reference for building reactor sinks from `&self` methods;
    /// `Weak` so sinks never keep the link (or its reactor) alive.
    self_ref: Mutex<Weak<NetLink>>,
    /// Keys with an outstanding `PullRequest`, so concurrent local
    /// waiters ask the owner once, not once per waiter.
    inflight: Mutex<HashSet<BufKey>>,
    /// How long the owner side waits for a requested buffer to be put
    /// before answering `PullNack`.
    get_timeout: Duration,
    dart: OnceLock<Arc<DartRuntime>>,
    space: OnceLock<Arc<CodsSpace>>,
    /// The process's flight recorder; wire send/recv events land here
    /// so the hub-side merge can stitch cross-process causal chains.
    /// Disabled until [`NetLink::set_flight`].
    flight: OnceLock<FlightRecorder>,
    /// Live only while [`NetLink::ship_telemetry`] runs: the demux
    /// forwards `TelemetryAck` batch indices here.
    telemetry_ack: Mutex<Option<Sender<u32>>>,
    /// The intra-host shared-memory data plane, armed by
    /// [`NetLink::set_shm`] after the `Welcome`. Unset means every pull
    /// answer rides the wire.
    shm: OnceLock<ShmPlane>,
}

/// Flight events per `Telemetry` frame. Bounds frame size (~100 B per
/// event) so a telemetry batch can never monopolise a writer queue or
/// the reactor loop against data-plane traffic.
const TELEMETRY_BATCH_EVENTS: usize = 2048;

impl NetLink {
    /// Wrap an established, greeted connection in star mode. `stream`
    /// must be past the Hello/Welcome handshake; `get_timeout` mirrors
    /// the space's get timeout (from `Welcome`).
    pub fn new(
        stream: TcpStream,
        node: u32,
        cores_per_node: u32,
        get_timeout: Duration,
        injector: FaultInjector,
        metrics: NetMetrics,
    ) -> Result<Arc<NetLink>, NetError> {
        let reader = stream
            .try_clone()
            .map_err(|e| NetError::Io(e.to_string()))?;
        let peer = Peer::spawn(
            stream,
            injector.clone(),
            metrics.clone(),
            format!("node-{node}"),
        )
        .map_err(|e| NetError::Io(e.to_string()))?;
        let link = Arc::new(NetLink {
            node,
            cores_per_node,
            hub: HubTx::Star(peer),
            injector,
            metrics,
            stream: Mutex::new(Some(reader)),
            listener: Mutex::new(None),
            reactor: None,
            peers: None,
            self_ref: Mutex::new(Weak::new()),
            inflight: Mutex::new(HashSet::new()),
            get_timeout,
            dart: OnceLock::new(),
            space: OnceLock::new(),
            flight: OnceLock::new(),
            telemetry_ack: Mutex::new(None),
            shm: OnceLock::new(),
        });
        *link.self_ref.lock().unwrap() = Arc::downgrade(&link);
        Ok(link)
    }

    /// Wrap an established, greeted connection in reactor/p2p mode.
    ///
    /// `peers` is the address table from the `Welcome`; `listener` is
    /// this process's own peer listener, already bound to the address
    /// it advertised in its `Hello`. `dial_timeout` bounds each direct
    /// peer dial (retried transparently while it lasts).
    #[allow(clippy::too_many_arguments)]
    pub fn new_p2p(
        stream: TcpStream,
        node: u32,
        cores_per_node: u32,
        get_timeout: Duration,
        injector: FaultInjector,
        metrics: NetMetrics,
        peers: Vec<String>,
        listener: TcpListener,
        dial_timeout: Duration,
    ) -> Result<Arc<NetLink>, NetError> {
        let reactor = Reactor::spawn(&format!("node-{node}"), injector.clone(), metrics.clone())
            .map_err(|e| NetError::Io(e.to_string()))?;
        let handle = reactor.handle();
        let hub_token = handle.alloc_token();
        let link = Arc::new(NetLink {
            node,
            cores_per_node,
            hub: HubTx::P2p(handle, hub_token),
            injector,
            metrics,
            stream: Mutex::new(Some(stream)),
            listener: Mutex::new(Some(listener)),
            reactor: Some(reactor),
            peers: Some(PeerTable::new(peers, dial_timeout)),
            self_ref: Mutex::new(Weak::new()),
            inflight: Mutex::new(HashSet::new()),
            get_timeout,
            dart: OnceLock::new(),
            space: OnceLock::new(),
            flight: OnceLock::new(),
            telemetry_ack: Mutex::new(None),
            shm: OnceLock::new(),
        });
        *link.self_ref.lock().unwrap() = Arc::downgrade(&link);
        Ok(link)
    }

    /// The simulated node this process hosts.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// Attach the process's flight recorder. Call before the run starts
    /// (alongside `start_reader`); until then wire events are not
    /// recorded. Setting it twice is a bug.
    pub fn set_flight(&self, flight: FlightRecorder) {
        assert!(self.flight.set(flight).is_ok(), "set_flight called twice");
    }

    fn flight(&self) -> FlightRecorder {
        self.flight.get().cloned().unwrap_or_default()
    }

    /// Arm the shared-memory data plane with the `Welcome`'s per-node
    /// host fingerprints. Call before the run starts (alongside
    /// `start_reader`); until then — or when `hosts` carries no match
    /// for this node — every pull answer rides the wire. Setting it
    /// twice is a bug.
    pub fn set_shm(&self, hosts: Vec<String>) {
        let plane = ShmPlane {
            hosts,
            out: Mutex::new(HashMap::new()),
            inbound: Mutex::new(HashMap::new()),
        };
        assert!(self.shm.set(plane).is_ok(), "set_shm called twice");
    }

    /// Whether pull answers to `dst` should ride a shared-memory ring:
    /// both ends advertised the same non-empty host fingerprint.
    fn shm_to(&self, dst: u32) -> bool {
        let Some(plane) = self.shm.get() else {
            return false;
        };
        let me = plane.hosts.get(self.node as usize);
        let them = plane.hosts.get(dst as usize);
        matches!((me, them), (Some(a), Some(b)) if !a.is_empty() && a == b)
    }

    /// Wire up the frame demux and return the control channel it feeds.
    /// Must be called exactly once, after the runtime and space were
    /// built around this link.
    pub fn start_reader(
        self: &Arc<Self>,
        dart: Arc<DartRuntime>,
        space: Arc<CodsSpace>,
    ) -> Receiver<Ctl> {
        self.dart.set(dart).ok().expect("start_reader called twice");
        self.space
            .set(space)
            .ok()
            .expect("start_reader called twice");
        let (ctl_tx, ctl_rx) = unbounded();
        let mut stream = self
            .stream
            .lock()
            .unwrap()
            .take()
            .expect("start_reader called twice");
        match (&self.hub, &self.reactor) {
            (HubTx::Star(_), _) => {
                let link = Arc::clone(self);
                std::thread::Builder::new()
                    .name(format!("net-reader-{}", self.node))
                    .spawn(move || link.read_loop(&mut stream, &ctl_tx))
                    .expect("spawn net reader");
            }
            (HubTx::P2p(handle, hub_token), Some(reactor)) => {
                // Hub connection: demux frames, surface lost-hub as
                // Shutdown to the wave loop.
                let weak = Arc::downgrade(self);
                let hub_reply = ReplyTx::Reactor(handle.clone(), *hub_token);
                let ctl_for_hub = ctl_tx.clone();
                handle.add_stream(
                    *hub_token,
                    stream,
                    Box::new(move |ev| match ev {
                        ConnEvent::Frame(frame) => {
                            if let Some(link) = weak.upgrade() {
                                link.on_frame(frame, &hub_reply, Some(&ctl_for_hub));
                            }
                        }
                        ConnEvent::Closed(reason) => {
                            let _ = ctl_for_hub.send(Ctl::Shutdown {
                                ok: false,
                                reason: if reason.is_empty() {
                                    "server closed the connection".into()
                                } else {
                                    format!("server connection lost: {reason}")
                                },
                            });
                        }
                    }),
                );
                // Peer listener: every inbound direct connection serves
                // pulls for this process's staged buffers.
                let listener = self
                    .listener
                    .lock()
                    .unwrap()
                    .take()
                    .expect("p2p listener present");
                let weak = Arc::downgrade(self);
                let accept_handle = handle.clone();
                reactor.handle().add_listener(
                    listener,
                    Box::new(move |token, _addr| {
                        let weak = weak.clone();
                        let reply = ReplyTx::Reactor(accept_handle.clone(), token);
                        Box::new(move |ev| {
                            if let ConnEvent::Frame(frame) = ev {
                                if let Some(link) = weak.upgrade() {
                                    link.on_frame(frame, &reply, None);
                                }
                            }
                            // Closed: an inbound peer vanished; its
                            // dialer re-establishes on the next pull.
                        })
                    }),
                );
            }
            _ => unreachable!("p2p HubTx implies a reactor"),
        }
        ctl_rx
    }

    /// Tell the server this node finished a wave.
    pub fn barrier(&self, wave: u32) {
        self.hub.send(Frame::Barrier {
            wave,
            node: self.node,
        });
    }

    /// Send the final per-process report.
    pub fn report(&self, report: NodeReport) {
        self.hub.send(Frame::Report(report));
    }

    /// Ship this process's flight recording and counter snapshot to the
    /// hub as bounded `Telemetry` batches. The shipper waits for the
    /// hub's `TelemetryAck` between batches — one batch in flight at a
    /// time — so telemetry can never build an unbounded queue behind
    /// the data plane. Call before [`NetLink::report`]: the hub
    /// connection is FIFO, so when the `Report` lands the hub already
    /// holds every batch that survived the wire.
    ///
    /// Returns `false` when an ack misses `ack_timeout` (e.g. the
    /// batch was chaos-dropped): the remainder is abandoned and the
    /// hub reports this node's trace incomplete — telemetry loss
    /// degrades the merge, never the run.
    pub fn ship_telemetry(
        &self,
        events: &[Event],
        dropped_events: u64,
        dropped_spans: u64,
        counters: Vec<(String, u64)>,
        ack_timeout: Duration,
    ) -> bool {
        let (tx, rx) = unbounded();
        *self.telemetry_ack.lock().unwrap() = Some(tx);
        // At least one batch even with zero events, so the counters and
        // drop tallies always travel and the hub sees a `last` marker.
        let total = events.len().div_ceil(TELEMETRY_BATCH_EVENTS).max(1);
        let mut chunks = events.chunks(TELEMETRY_BATCH_EVENTS);
        let mut ok = true;
        for batch in 0..total {
            let last = batch + 1 == total;
            self.hub.send(Frame::Telemetry {
                node: self.node,
                batch: batch as u32,
                last,
                dropped_events,
                dropped_spans,
                counters: if last { counters.clone() } else { Vec::new() },
                events: chunks.next().unwrap_or(&[]).to_vec(),
            });
            match rx.recv_timeout(ack_timeout) {
                Ok(acked) if acked == batch as u32 => {}
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        *self.telemetry_ack.lock().unwrap() = None;
        ok
    }

    /// Flush every queued frame onto the wire and stop the transport.
    /// Call before process exit so the `Report` is not lost.
    pub fn close(&self) {
        self.shm_teardown();
        match &self.hub {
            HubTx::Star(peer) => peer.close(),
            HubTx::P2p(..) => {
                if let Some(reactor) = &self.reactor {
                    reactor.shutdown();
                }
            }
        }
    }

    /// Star mode: the blocking demux reader.
    fn read_loop(&self, stream: &mut TcpStream, ctl: &Sender<Ctl>) {
        let reply = match &self.hub {
            HubTx::Star(peer) => ReplyTx::Star(peer.handle()),
            HubTx::P2p(..) => unreachable!("read_loop is star-only"),
        };
        loop {
            let frame = match recv_frame(stream, &self.injector, &self.metrics) {
                Ok(f) => f,
                Err(NetError::Frame(FrameError::Truncated)) => {
                    let _ = ctl.send(Ctl::Shutdown {
                        ok: false,
                        reason: "server closed the connection".into(),
                    });
                    return;
                }
                Err(e) => {
                    let _ = ctl.send(Ctl::Shutdown {
                        ok: false,
                        reason: format!("server connection lost: {e}"),
                    });
                    return;
                }
            };
            if !self.on_frame(frame, &reply, Some(ctl)) {
                return;
            }
        }
    }

    /// Demux one incoming frame. `reply` is where pull answers go —
    /// back up the connection the request arrived on. `ctl` is present
    /// on hub connections (which carry `RunWave`/`Shutdown`) and absent
    /// on direct peer connections. Returns `false` when the connection's
    /// demux should stop (shutdown or protocol violation).
    fn on_frame(&self, frame: Frame, reply: &ReplyTx, ctl: Option<&Sender<Ctl>>) -> bool {
        let dart = self.dart.get().expect("demux after start_reader");
        let space = self.space.get().expect("demux after start_reader");
        match frame {
            Frame::Relay {
                to,
                src,
                tag,
                payload,
            } => {
                dart.deliver(
                    to,
                    Msg {
                        src,
                        tag,
                        payload: Bytes::copy_from_slice(&payload),
                    },
                );
            }
            Frame::PullRequest {
                name,
                version,
                piece,
                from_node,
            } => self.answer_pull(name, version, piece, from_node, dart, reply.clone()),
            Frame::PullData {
                name,
                version,
                piece,
                owner,
                data,
                ..
            } => {
                let flight = self.flight();
                let t0 = flight.now_us();
                let key = BufKey {
                    name,
                    version,
                    piece,
                };
                {
                    let mut inflight = self.inflight.lock().unwrap();
                    inflight.remove(&key);
                    self.metrics.pulls_in_flight.set(inflight.len() as u64);
                }
                // Register directly (NOT through the runtime): the
                // bytes were accounted by the puller's `pull` and
                // must not be re-published as a local put.
                if dart.registry().get(&key).is_none() {
                    let bytes = data.len() as u64;
                    dart.registry()
                        .register(key, owner, Bytes::copy_from_slice(&data));
                    // The recv half of the wire hop. The merge matches
                    // it to the owner side's NetSend by
                    // (src, dst, var, version, piece); dst is the
                    // requesting node's representative client (its
                    // core 0) because the wire carries nodes, not the
                    // individual waiter.
                    flight.record(
                        Event::new(flight.next_seq(), EventKind::NetRecv)
                            .var(name)
                            .version(version)
                            .piece(piece)
                            .src(owner)
                            .dst(self.node * self.cores_per_node)
                            .link(LinkClass::Rdma)
                            .bytes(bytes)
                            .window(t0, flight.now_us().saturating_sub(t0).max(1)),
                    );
                }
            }
            Frame::PullNack {
                name,
                version,
                piece,
                ..
            } => {
                // The owner gave up; our local wait will time out
                // and surface the pull failure. Allow a retry to
                // re-request.
                let mut inflight = self.inflight.lock().unwrap();
                inflight.remove(&BufKey {
                    name,
                    version,
                    piece,
                });
                self.metrics.pulls_in_flight.set(inflight.len() as u64);
            }
            Frame::ShmOffer {
                src_node,
                segment,
                path,
                ..
            } => {
                let attached = self.shm_accept(src_node, segment, &path);
                reply.send(Frame::ShmAck {
                    src_node,
                    dst_node: self.node,
                    segment,
                    seq: 0,
                    attached,
                });
            }
            Frame::ShmDoorbell { src_node, .. } => self.shm_drain(src_node, dart),
            Frame::ShmAck {
                dst_node, attached, ..
            } => self.shm_on_ack(dst_node, attached, reply),
            Frame::TelemetryAck { batch, .. } => {
                // Flow control for an in-progress `ship_telemetry`;
                // a stray ack after the shipper gave up is dropped.
                if let Some(tx) = self.telemetry_ack.lock().unwrap().as_ref() {
                    let _ = tx.send(batch);
                }
            }
            Frame::DhtInsert {
                var,
                version,
                owner,
                piece,
                lbs,
                ubs,
            } => {
                space.apply_remote_dht_insert(
                    var,
                    version,
                    LocationEntry {
                        bbox: BoundingBox::new(&lbs, &ubs),
                        owner,
                        piece,
                    },
                );
            }
            Frame::GetDone { var, version } => space.apply_remote_get_done(var, version),
            Frame::Evict { var, version } => space.apply_remote_evict(var, version),
            Frame::Subscribe {
                var,
                every_k,
                subscriber,
                lbs,
                ubs,
                ..
            } => {
                space.apply_remote_subscribe(&SubSpec {
                    vid: var,
                    region: BoundingBox::new(&lbs, &ubs),
                    every_k,
                    subscriber,
                });
            }
            Frame::SubAck { .. } => {
                // Registration acknowledgement, for protocol symmetry
                // only: the registration race (a put landing before the
                // Subscribe broadcast) is healed by the subscriber's
                // deadline-driven resync, not by waiting on this ack.
            }
            Frame::SubCancel { sub_id } => space.apply_remote_sub_cancel(sub_id),
            Frame::SubPush {
                sub_id,
                var,
                version,
                src,
                subscriber,
                lbs,
                ubs,
                data,
            } => {
                let flight = self.flight();
                let t0 = flight.now_us();
                let frag = BoundingBox::new(&lbs, &ubs);
                let bytes = data.len() as u64;
                space.apply_remote_sub_push(sub_id, version, &frag, &data);
                // The recv half of the push's wire hop; the merge pairs
                // it with the producer side's NetSend by
                // (src, dst, var, version, piece = sub id).
                flight.record(
                    Event::new(flight.next_seq(), EventKind::NetRecv)
                        .var(var)
                        .version(version)
                        .piece(sub_id)
                        .src(src)
                        .dst(subscriber)
                        .link(LinkClass::Rdma)
                        .bytes(bytes)
                        .window(t0, flight.now_us().saturating_sub(t0).max(1)),
                );
            }
            Frame::SubLagged { .. } => {
                // Lag announcements are hub-side diagnostics; one
                // echoed down to a joiner is harmless.
            }
            Frame::RunWave { wave } => {
                if let Some(ctl) = ctl {
                    let _ = ctl.send(Ctl::RunWave(wave));
                }
            }
            Frame::Shutdown { ok, reason } => {
                if let Some(ctl) = ctl {
                    let _ = ctl.send(Ctl::Shutdown { ok, reason });
                }
                return false;
            }
            other => {
                if let Some(ctl) = ctl {
                    let _ = ctl.send(Ctl::Shutdown {
                        ok: false,
                        reason: format!("unexpected frame kind {} from server", other.kind()),
                    });
                    return false;
                }
                // A confused peer connection is ignored, not fatal to
                // the run: its pulls simply won't complete.
            }
        }
        true
    }

    /// Serve one remote pull: wait (on a throwaway thread, so the demux
    /// never blocks) for the buffer to be put locally, then answer with
    /// its bytes — or `PullNack` if the producer never delivers within
    /// the get timeout.
    fn answer_pull(
        &self,
        name: u64,
        version: u64,
        piece: u64,
        from_node: u32,
        dart: &Arc<DartRuntime>,
        reply: ReplyTx,
    ) {
        let key = BufKey {
            name,
            version,
            piece,
        };
        let dart = Arc::clone(dart);
        let timeout = self.get_timeout;
        let flight = self.flight();
        let requester = from_node * self.cores_per_node;
        let weak = self.self_ref.lock().unwrap().clone();
        std::thread::Builder::new()
            .name("net-pull-wait".into())
            .spawn(move || match dart.registry().wait_for(&key, timeout) {
                Some(handle) => {
                    // Same-host pairs go through the shared-memory ring
                    // instead of the socket; everything below is the
                    // wire path.
                    if let Some(link) = weak.upgrade() {
                        let desc = RecordDesc {
                            name,
                            version,
                            piece,
                            owner: handle.owner,
                        };
                        if link.shm_send(
                            from_node,
                            desc,
                            handle.data.as_slice(),
                            &reply,
                            &flight,
                            requester,
                        ) {
                            return;
                        }
                    }
                    // Record *before* enqueueing the answer: once the
                    // consumer can observe these bytes the send event
                    // is already in this process's recorder, so the
                    // collect wave snapshots with no wire event still
                    // unrecorded (zero unmatched pairs). The nominal
                    // 1µs window keeps `send.end <= recv.start` in
                    // real time, which the merge's clock alignment
                    // relaxes over.
                    let t0 = flight.now_us();
                    flight.record(
                        Event::new(flight.next_seq(), EventKind::NetSend)
                            .var(name)
                            .version(version)
                            .piece(piece)
                            .src(handle.owner)
                            .dst(requester)
                            .link(LinkClass::Rdma)
                            .bytes(handle.data.as_slice().len() as u64)
                            .window(t0, 1),
                    );
                    reply.send(Frame::PullData {
                        name,
                        version,
                        piece,
                        owner: handle.owner,
                        to_node: from_node,
                        data: handle.data.as_slice().to_vec(),
                    });
                }
                None => reply.send(Frame::PullNack {
                    name,
                    version,
                    piece,
                    to_node: from_node,
                }),
            })
            .expect("spawn pull waiter");
    }

    /// Create this pair's segment and offer it to the consumer. Run
    /// once per destination, on the first pull answer headed there.
    fn shm_create(&self, dst: u32, reply: &ReplyTx) -> ShmOut {
        let segment = shm_segment_id(self.node, dst);
        // Op-independent chaos verdict: the consumer rolls the same
        // (creator, segment) hash at attach, so a doomed pair skips
        // straight to the wire instead of staging records in a ring
        // nobody will ever drain.
        if self.injector.shm_attach_fails(self.node, segment) {
            self.metrics.shm_fallbacks.inc();
            return ShmOut::Tcp;
        }
        let nonce = SHM_NONCE.fetch_add(1, Ordering::Relaxed);
        let path =
            shm::segment_dir().join(shm::segment_name(std::process::id(), nonce, self.node, dst));
        let map = match ShmMap::create(&path, Ring::required_len(SHM_SLOTS, SHM_ARENA)) {
            Ok(m) => Arc::new(m),
            Err(_) => {
                // No mmap (non-unix), no space, no permission: the wire
                // still works.
                let _ = std::fs::remove_file(&path);
                self.metrics.shm_fallbacks.inc();
                return ShmOut::Tcp;
            }
        };
        let ring = Arc::new(Ring::create(RingMem::from_map(map), SHM_SLOTS, SHM_ARENA));
        reply.send(Frame::ShmOffer {
            src_node: self.node,
            dst_node: dst,
            segment,
            path: path.to_string_lossy().into_owned(),
            slots: SHM_SLOTS as u64,
            arena_bytes: SHM_ARENA,
        });
        ShmOut::Live {
            ring,
            segment,
            path: Some(path),
        }
    }

    /// Try to move one pull answer to `dst` through the pair's ring.
    /// Returns `true` when the record was published and doorbelled (the
    /// caller must not also send `PullData`), `false` when the caller
    /// must use the wire. Records the `NetSend` (between publish and
    /// doorbell, mirroring the wire path's record-before-send rule) and
    /// any backpressure wait.
    fn shm_send(
        &self,
        dst: u32,
        desc: RecordDesc,
        data: &[u8],
        reply: &ReplyTx,
        flight: &FlightRecorder,
        requester: u32,
    ) -> bool {
        if !self.shm_to(dst) {
            return false;
        }
        let plane = self.shm.get().expect("shm_to checked the plane");
        let slot = {
            let mut out = plane.out.lock().unwrap();
            match out.get(&dst) {
                Some(s) => Arc::clone(s),
                None => {
                    let s = Arc::new(Mutex::new(self.shm_create(dst, reply)));
                    out.insert(dst, Arc::clone(&s));
                    s
                }
            }
        };
        let slot = slot.lock().unwrap();
        let (ring, segment) = match &*slot {
            ShmOut::Tcp => return false,
            ShmOut::Live { ring, segment, .. } => (Arc::clone(ring), *segment),
        };
        let wait_t0 = flight.now_us();
        let mut waited = Duration::ZERO;
        loop {
            match ring.push(&desc, data) {
                Ok(seq) => {
                    if !waited.is_zero() {
                        self.record_shm_wait(flight, &desc, requester, wait_t0, waited);
                    }
                    let t0 = flight.now_us();
                    flight.record(
                        Event::new(flight.next_seq(), EventKind::NetSend)
                            .var(desc.name)
                            .version(desc.version)
                            .piece(desc.piece)
                            .src(desc.owner)
                            .dst(requester)
                            .link(LinkClass::Shm)
                            .bytes(data.len() as u64)
                            .window(t0, 1),
                    );
                    reply.send(Frame::ShmDoorbell {
                        src_node: self.node,
                        dst_node: dst,
                        segment,
                        seq,
                    });
                    self.metrics.shm_frames.inc();
                    self.metrics.shm_bytes.add(data.len() as u64);
                    return true;
                }
                Err(PushError::TooBig) => {
                    // This payload can never fit the arena; the pair
                    // itself stays live for smaller records.
                    self.metrics.shm_fallbacks.inc();
                    return false;
                }
                Err(PushError::SlotsFull | PushError::ArenaFull) => {
                    if waited >= SHM_FULL_WAIT {
                        self.record_shm_wait(flight, &desc, requester, wait_t0, waited);
                        self.metrics.shm_fallbacks.inc();
                        return false;
                    }
                    std::thread::sleep(Duration::from_micros(100));
                    waited += Duration::from_micros(100);
                }
            }
        }
    }

    /// Backpressure accounting: a ring-full wait surfaces as a
    /// shm-classed `Pull` event so the existing shm-wait quantiles (and
    /// the watchdog baseline built on them) see it.
    fn record_shm_wait(
        &self,
        flight: &FlightRecorder,
        desc: &RecordDesc,
        requester: u32,
        t0: u64,
        waited: Duration,
    ) {
        let wait_us = waited.as_micros() as u64;
        flight.record(
            Event::new(flight.next_seq(), EventKind::Pull { wait_us })
                .var(desc.name)
                .version(desc.version)
                .piece(desc.piece)
                .src(desc.owner)
                .dst(requester)
                .link(LinkClass::Shm)
                .window(t0, wait_us.max(1)),
        );
    }

    /// Consumer side of a `ShmOffer`: attach the producer's segment.
    /// Returns whether the attach succeeded (the `ShmAck` verdict).
    fn shm_accept(&self, src_node: u32, segment: u64, path: &str) -> bool {
        // Same hash the producer rolled at create; a one-sided chaos
        // plan still degrades cleanly through the nack.
        if self.injector.shm_attach_fails(src_node, segment) {
            self.metrics.shm_fallbacks.inc();
            return false;
        }
        let Some(plane) = self.shm.get() else {
            return false;
        };
        let map = match ShmMap::open(Path::new(path)) {
            Ok(m) => Arc::new(m),
            Err(_) => {
                self.metrics.shm_fallbacks.inc();
                return false;
            }
        };
        let ring = match Ring::attach(RingMem::from_map(map)) {
            Ok(r) => Arc::new(r),
            Err(_) => {
                self.metrics.shm_fallbacks.inc();
                return false;
            }
        };
        plane.inbound.lock().unwrap().insert(src_node, ring);
        true
    }

    /// Consumer side of a `ShmDoorbell`: drain every published record
    /// from the pair's ring into the registry. The payload is *not*
    /// copied — the registered [`Bytes`] borrows the mapping, and
    /// dropping its last clone releases the arena range back to the
    /// producer.
    fn shm_drain(&self, src_node: u32, dart: &Arc<DartRuntime>) {
        let ring = match self.shm.get() {
            Some(plane) => plane.inbound.lock().unwrap().get(&src_node).cloned(),
            None => None,
        };
        // No ring: the attach failed and our nack makes the producer
        // resend over the wire — the doorbell is moot.
        let Some(ring) = ring else { return };
        let flight = self.flight();
        while let Some(rec) = ring.pop() {
            let t0 = flight.now_us();
            let key = BufKey {
                name: rec.desc.name,
                version: rec.desc.version,
                piece: rec.desc.piece,
            };
            {
                let mut inflight = self.inflight.lock().unwrap();
                inflight.remove(&key);
                self.metrics.pulls_in_flight.set(inflight.len() as u64);
            }
            if dart.registry().get(&key).is_none() {
                let release_ring = Arc::clone(&ring);
                let range = rec.range;
                let region = MapRegion::new(
                    ring.mem().clone(),
                    rec.off,
                    rec.len,
                    Some(Box::new(move || release_ring.release(range))),
                );
                let bytes = rec.len as u64;
                // Register directly, like the PullData branch: the
                // puller's `pull` already accounted these bytes.
                dart.registry()
                    .register(key, rec.desc.owner, Bytes::from_map(Arc::new(region)));
                self.metrics.shm_frames.inc();
                self.metrics.shm_bytes.add(bytes);
                flight.record(
                    Event::new(flight.next_seq(), EventKind::NetRecv)
                        .var(key.name)
                        .version(key.version)
                        .piece(key.piece)
                        .src(rec.desc.owner)
                        .dst(self.node * self.cores_per_node)
                        .link(LinkClass::Shm)
                        .bytes(bytes)
                        .window(t0, flight.now_us().saturating_sub(t0).max(1)),
                );
            } else {
                // A wire copy beat this record in (pull retry, or the
                // pair degraded mid-flight); the space comes straight
                // back.
                ring.release(rec.range);
            }
        }
    }

    /// Producer side of a `ShmAck`. Attached: unlink the segment name
    /// early — the consumer holds its own mapping now, so a crash from
    /// here on leaks nothing. Refused: resend everything staged over
    /// the wire and degrade the pair for good.
    fn shm_on_ack(&self, dst_node: u32, attached: bool, reply: &ReplyTx) {
        let slot = match self.shm.get() {
            Some(plane) => plane.out.lock().unwrap().get(&dst_node).cloned(),
            None => None,
        };
        let Some(slot) = slot else { return };
        let mut slot = slot.lock().unwrap();
        match &mut *slot {
            ShmOut::Live { path, .. } if attached => {
                if let Some(p) = path.take() {
                    let _ = std::fs::remove_file(p);
                }
            }
            ShmOut::Live { ring, path, .. } => {
                // The consumer never attached, so nothing was popped:
                // every staged record is still in `unconsumed`. The
                // earlier shm-classed `NetSend`s match the `NetRecv`s
                // these wire copies will produce (the merge matches by
                // key, not link class).
                for rec in ring.unconsumed() {
                    self.metrics.shm_fallbacks.inc();
                    reply.send(Frame::PullData {
                        name: rec.desc.name,
                        version: rec.desc.version,
                        piece: rec.desc.piece,
                        owner: rec.desc.owner,
                        to_node: dst_node,
                        data: ring.mem().slice(rec.off, rec.len).to_vec(),
                    });
                }
                if let Some(p) = path.take() {
                    let _ = std::fs::remove_file(p);
                }
                *slot = ShmOut::Tcp;
            }
            ShmOut::Tcp => {}
        }
    }

    /// Unlink any segment whose ack never arrived. The early unlink
    /// handles the common case; this catches runs torn down between
    /// offer and ack.
    fn shm_teardown(&self) {
        if let Some(plane) = self.shm.get() {
            for slot in plane.out.lock().unwrap().values() {
                if let ShmOut::Live { path, .. } = &mut *slot.lock().unwrap() {
                    if let Some(p) = path.take() {
                        let _ = std::fs::remove_file(p);
                    }
                }
            }
        }
    }

    /// P2p: the live token for the direct connection to `node`, dialing
    /// it first if needed.
    fn ensure_peer(&self, owner_node: u32) -> Result<Token, NetError> {
        let (table, reactor) = match (&self.peers, &self.reactor) {
            (Some(t), Some(r)) => (t, r),
            _ => return Err(NetError::Protocol("not a p2p link".into())),
        };
        let handle = reactor.handle();
        let weak = self.self_ref.lock().unwrap().clone();
        table.ensure(
            owner_node,
            self.node,
            &handle,
            &self.injector,
            &self.metrics,
            |token| {
                let reply = ReplyTx::Reactor(handle.clone(), token);
                let weak2 = weak.clone();
                let sink: Sink = Box::new(move |ev| match ev {
                    ConnEvent::Frame(frame) => {
                        if let Some(link) = weak2.upgrade() {
                            link.on_frame(frame, &reply, None);
                        }
                    }
                    ConnEvent::Closed(_) => {
                        // Forget the dead connection so the next pull
                        // re-dials (transparent reconnect).
                        if let Some(link) = weak2.upgrade() {
                            if let Some(table) = &link.peers {
                                table.forget(token);
                            }
                        }
                    }
                });
                sink
            },
        )
    }
}

impl Transport for NetLink {
    fn hosts(&self, client: ClientId) -> bool {
        client / self.cores_per_node == self.node
    }

    fn forward(&self, to: ClientId, msg: &Msg) {
        self.hub.send(Frame::Relay {
            to,
            src: msg.src,
            tag: msg.tag,
            payload: msg.payload.as_slice().to_vec(),
        });
    }

    fn publish(&self, key: &BufKey, owner: ClientId, bytes: u64) {
        self.hub.send(Frame::PutNotify {
            name: key.name,
            version: key.version,
            piece: key.piece,
            owner,
            bytes,
        });
    }

    fn request(&self, key: &BufKey) {
        {
            let mut inflight = self.inflight.lock().unwrap();
            if !inflight.insert(*key) {
                return;
            }
            self.metrics.pulls_in_flight.set(inflight.len() as u64);
        }
        let req = Frame::PullRequest {
            name: key.name,
            version: key.version,
            piece: key.piece,
            from_node: self.node,
        };
        if self.peers.is_some() {
            // P2p: straight to the owner's node, dialing on first use.
            let owner_node = ((key.piece >> 32) as u32) / self.cores_per_node;
            match self.ensure_peer(owner_node) {
                Ok(token) => {
                    if let HubTx::P2p(handle, _) = &self.hub {
                        handle.send(token, req);
                    }
                }
                Err(_) => {
                    // Dial failed: release the inflight slot so the
                    // local wait times out naming the owner (and a
                    // retry may re-dial).
                    let mut inflight = self.inflight.lock().unwrap();
                    inflight.remove(key);
                    self.metrics.pulls_in_flight.set(inflight.len() as u64);
                }
            }
        } else {
            self.hub.send(req);
        }
    }

    fn dial_peer(&self, client: ClientId) -> bool {
        if self.peers.is_none() {
            return false;
        }
        self.ensure_peer(client / self.cores_per_node).is_ok()
    }
}

impl SpaceMirror for NetLink {
    fn dht_insert(&self, var: u64, version: u64, entry: &LocationEntry) {
        let nd = entry.bbox.ndim();
        self.hub.send(Frame::DhtInsert {
            var,
            version,
            owner: entry.owner,
            piece: entry.piece,
            lbs: (0..nd).map(|d| entry.bbox.lb(d)).collect(),
            ubs: (0..nd).map(|d| entry.bbox.ub(d)).collect(),
        });
    }

    fn get_done(&self, var: u64, version: u64) {
        self.hub.send(Frame::GetDone { var, version });
    }

    fn evict(&self, var: u64, version: u64) {
        self.hub.send(Frame::Evict { var, version });
    }

    fn sub_open(&self, spec: &SubSpec) {
        let nd = spec.region.ndim();
        self.hub.send(Frame::Subscribe {
            sub_id: spec.id(),
            var: spec.vid,
            every_k: spec.every_k,
            subscriber: spec.subscriber,
            lbs: (0..nd).map(|d| spec.region.lb(d)).collect(),
            ubs: (0..nd).map(|d| spec.region.ub(d)).collect(),
        });
    }

    fn sub_cancel(&self, id: SubId) {
        self.hub.send(Frame::SubCancel { sub_id: id });
    }

    fn sub_push(
        &self,
        id: SubId,
        var: u64,
        version: u64,
        src: ClientId,
        subscriber: ClientId,
        frag: &BoundingBox,
        data: &[u8],
    ) {
        let nd = frag.ndim();
        let frame = Frame::SubPush {
            sub_id: id,
            var,
            version,
            src,
            subscriber,
            lbs: (0..nd).map(|d| frag.lb(d)).collect(),
            ubs: (0..nd).map(|d| frag.ub(d)).collect(),
            data: data.to_vec(),
        };
        // Record the send half before the bytes become observable
        // remotely, mirroring the pull path's ordering guarantee.
        let flight = self.flight();
        let t0 = flight.now_us();
        flight.record(
            Event::new(flight.next_seq(), EventKind::NetSend)
                .var(var)
                .version(version)
                .piece(id)
                .src(src)
                .dst(subscriber)
                .link(LinkClass::Rdma)
                .bytes(data.len() as u64)
                .window(t0, 1),
        );
        if self.peers.is_some() {
            // P2p: straight to the subscriber's node, dialing on first
            // use; the hub stays control-only. A failed dial is a lost
            // push — the subscriber's deadline fires and it resyncs
            // with an ordinary get, so the loss is always healable.
            if let Ok(token) = self.ensure_peer(subscriber / self.cores_per_node) {
                if let HubTx::P2p(handle, _) = &self.hub {
                    self.metrics.sub_push_p2p.inc();
                    handle.send(token, frame);
                }
            }
            return;
        }
        self.hub.send(frame);
    }

    fn sub_lagged(&self, id: SubId, version: u64, subscriber: ClientId) {
        self.hub.send(Frame::SubLagged {
            sub_id: id,
            version,
            subscriber,
        });
    }
}
