//! The workflow-server hub: accepts one TCP connection per simulated
//! node, runs the Hello/Welcome handshake, and routes control traffic.
//!
//! Two transports, same protocol:
//!
//! - **Star** (`p2p: false`): one FIFO writer thread plus one routing
//!   reader thread per joiner; every frame — including bulk `PullData`
//!   — transits the hub.
//! - **Reactor** (`p2p: true`): all joiner connections live on one
//!   [`Reactor`] event-loop thread, and the `Welcome` carries each
//!   joiner's advertised peer address so `PullRequest`/`PullData`/
//!   `PullNack` flow directly node↔node. The hub carries only control
//!   traffic (registration, dispatch relays, wave barriers, DHT mirror
//!   broadcasts, reports, shutdown); `net.pull_frames_hub` counts any
//!   PullData that still shows up here, and the launch gate asserts it
//!   stays zero.
//!
//! Routing rules (both modes):
//!
//! - `Relay` goes to the node hosting the destination client
//!   (`to / cores_per_node`).
//! - `PullRequest` goes to the node of the owner client packed in the
//!   upper 32 bits of the piece id.
//! - `PullData` / `PullNack` go to the requesting node carried in the
//!   frame.
//! - `DhtInsert` / `GetDone` / `Evict` are broadcast to every node
//!   except the origin (each replica already applied its own change).
//! - `Barrier` and `Report` land in hub state for the wave engine;
//!   `PutNotify` feeds diagnostics counters only.
//! - `Telemetry` batches accumulate per node in hub state (drained by
//!   [`Hub::take_telemetry`] for the cross-process trace merge) and
//!   are answered with `TelemetryAck` — the shipper's one-in-flight
//!   flow control.
//!
//! Because each connection preserves FIFO order (writer queue or staged
//! reactor buffer) and TCP preserves order, forwarding a joiner's
//! mirror frames *before* the next wave's `RunWave` guarantees every
//! replica sees wave N's DHT state before any wave N+1 task runs — the
//! ordering the wave barriers rely on.

use crate::conn::{recv_frame, send_frame, NetError, NetMetrics, Peer, PeerHandle};
use crate::frame::{Frame, NodeReport};
use crate::reactor::{ConnEvent, Reactor, ReactorHandle, Token};
use insitu_fabric::FaultInjector;
use insitu_obs::{Event, ProcessTrace};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything the hub needs to accept and greet its joiners.
pub struct HubConfig {
    /// Number of joiner processes (= simulated nodes) to wait for.
    pub nodes: u32,
    /// Cores per node, for routing by client id.
    pub cores_per_node: u32,
    /// Mapping-strategy slug sent in `Welcome`.
    pub strategy: String,
    /// Get timeout every replica must use, in milliseconds.
    pub get_timeout_ms: u64,
    /// Workflow DAG text sent in `Welcome`.
    pub dag: String,
    /// Workload configuration text sent in `Welcome`.
    pub config: String,
    /// Run epoch sent in `Welcome`; salts every replica's DataSpace /
    /// BufferRegistry / DHT keys (0 = standalone run, no salting).
    pub run_epoch: u64,
    /// How long to wait for all joiners to connect and greet.
    pub accept_timeout: Duration,
    /// Reactor mode: serve all joiners from one event-loop thread and
    /// publish their peer addresses so PullData flows node↔node.
    pub p2p: bool,
    /// Publish the joiners' host fingerprints in `Welcome` so same-host
    /// pairs can carry PullData over shared-memory segments. When off,
    /// the `Welcome` ships no fingerprints and every pair stays on TCP.
    pub shm: bool,
}

/// State shared between the hub's readers and the wave engine.
struct Shared {
    nodes: u32,
    inner: Mutex<Inner>,
    changed: Condvar,
}

#[derive(Default)]
struct Inner {
    /// Nodes that reached each wave's barrier.
    barriers: HashMap<u32, HashSet<u32>>,
    /// Final per-node reports, indexed by node.
    reports: Vec<Option<NodeReport>>,
    /// Connection-level failures (peer hangups, protocol violations).
    failures: Vec<String>,
    /// Diagnostics from `PutNotify`: announced registrations and bytes.
    puts_announced: u64,
    put_bytes_announced: u64,
    /// Diagnostics from `SubLagged`: versions subscribers lost to their
    /// bounded queues across the run.
    subs_lagged_announced: u64,
    /// Flight-recorder shipments, accumulating per node until the
    /// `last` batch marks a trace complete.
    telemetry: HashMap<u32, NodeTelemetry>,
}

/// One node's telemetry shipment as it accumulates batch by batch.
#[derive(Default)]
struct NodeTelemetry {
    events: Vec<Event>,
    /// The batch index expected next; an out-of-order arrival (a batch
    /// lost to fault injection, with the shipper retrying nothing)
    /// marks the trace gapped and therefore incomplete.
    next_batch: u32,
    gap: bool,
    last_seen: bool,
    dropped_events: u64,
    dropped_spans: u64,
    counters: Vec<(String, u64)>,
}

impl Shared {
    fn fail(&self, why: String) {
        self.inner.lock().unwrap().failures.push(why);
        self.changed.notify_all();
    }
}

/// Per-node send paths, by transport mode.
enum Links {
    Star(Vec<Peer>),
    P2p {
        reactor: Reactor,
        tokens: Vec<Token>,
    },
}

/// A cheaply-clonable "enqueue for node N" fan-out used by the routing
/// code in both modes.
#[derive(Clone)]
enum TxSet {
    Star(Vec<PeerHandle>),
    P2p(ReactorHandle, Vec<Token>),
}

impl TxSet {
    fn send_to(&self, node: u32, frame: Frame) {
        match self {
            TxSet::Star(handles) => handles[node as usize].send(frame),
            TxSet::P2p(handle, tokens) => handle.send(tokens[node as usize], frame),
        }
    }
}

/// The server's end of every joiner connection.
pub struct Hub {
    links: Links,
    addrs: Vec<std::net::SocketAddr>,
    shared: Arc<Shared>,
}

impl Hub {
    /// Accept `cfg.nodes` joiners on `listener` and greet them.
    ///
    /// The handshake is two-phase: every joiner's `Hello` (with its
    /// advertised peer address) is collected first, then all `Welcome`s
    /// go out — in reactor mode the `Welcome` carries the complete peer
    /// address table, which only exists once everyone has arrived.
    /// Fails with a clear [`NetError::Timeout`] if the joiners do not
    /// all arrive within `cfg.accept_timeout`.
    pub fn accept(
        listener: &TcpListener,
        cfg: &HubConfig,
        injector: &FaultInjector,
        metrics: &NetMetrics,
    ) -> Result<Hub, NetError> {
        let deadline = Instant::now() + cfg.accept_timeout;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(e.to_string()))?;
        // Phase 1: collect every joiner's stream, advertised address and
        // host fingerprint.
        let mut slots: Vec<Option<(TcpStream, String, String)>> =
            (0..cfg.nodes).map(|_| None).collect();
        let mut joined = 0;
        while joined < cfg.nodes {
            if Instant::now() >= deadline {
                return Err(NetError::Timeout(format!(
                    "only {joined} of {} joiners connected within {}ms",
                    cfg.nodes,
                    cfg.accept_timeout.as_millis()
                )));
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    read_hello(stream, cfg, injector, metrics, &mut slots)?;
                    joined += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(NetError::Io(e.to_string())),
            }
        }
        let mut streams = Vec::new();
        let mut peer_addrs = Vec::new();
        let mut hosts = Vec::new();
        for (node, slot) in slots.into_iter().enumerate() {
            let (stream, peer_addr, host) = slot.expect("all joiners greeted");
            if cfg.p2p && peer_addr.is_empty() {
                return Err(NetError::Protocol(format!(
                    "p2p run, but node {node} advertises no peer address"
                )));
            }
            streams.push(stream);
            peer_addrs.push(peer_addr);
            hosts.push(host);
        }

        // Phase 2: everyone is here — greet them all.
        let peers_field = if cfg.p2p { peer_addrs } else { Vec::new() };
        // An opted-out run ships no fingerprints, so no joiner ever
        // offers a segment — one knob, decided at the hub.
        let hosts_field = if cfg.shm { hosts } else { Vec::new() };
        for stream in &mut streams {
            send_frame(
                stream,
                &Frame::Welcome {
                    nodes: cfg.nodes,
                    strategy: cfg.strategy.clone(),
                    get_timeout_ms: cfg.get_timeout_ms,
                    dag: cfg.dag.clone(),
                    config: cfg.config.clone(),
                    run_epoch: cfg.run_epoch,
                    peers: peers_field.clone(),
                    hosts: hosts_field.clone(),
                },
                injector,
                metrics,
            )?;
            stream
                .set_read_timeout(None)
                .map_err(|e| NetError::Io(e.to_string()))?;
        }

        let shared = Arc::new(Shared {
            nodes: cfg.nodes,
            inner: Mutex::new(Inner {
                reports: (0..cfg.nodes).map(|_| None).collect(),
                ..Inner::default()
            }),
            changed: Condvar::new(),
        });
        let mut addrs = Vec::new();
        for stream in &streams {
            addrs.push(
                stream
                    .peer_addr()
                    .map_err(|e| NetError::Io(e.to_string()))?,
            );
        }

        let links = if cfg.p2p {
            let reactor = Reactor::spawn("hub", injector.clone(), metrics.clone())
                .map_err(|e| NetError::Io(e.to_string()))?;
            let handle = reactor.handle();
            let tokens: Vec<Token> = (0..cfg.nodes).map(|_| handle.alloc_token()).collect();
            let tx = TxSet::P2p(handle.clone(), tokens.clone());
            for (node, stream) in streams.into_iter().enumerate() {
                let node = node as u32;
                let tx = tx.clone();
                let shared = Arc::clone(&shared);
                let cores_per_node = cfg.cores_per_node;
                let metrics = metrics.clone();
                handle.add_stream(
                    tokens[node as usize],
                    stream,
                    Box::new(move |ev| match ev {
                        ConnEvent::Frame(frame) => {
                            route(node, frame, cores_per_node, &shared, &tx, &metrics);
                        }
                        ConnEvent::Closed(reason) => {
                            let reported =
                                shared.inner.lock().unwrap().reports[node as usize].is_some();
                            if reason.is_empty() {
                                if !reported {
                                    shared.fail(format!("node {node} hung up before reporting"));
                                }
                            } else {
                                shared.fail(format!("connection to node {node}: {reason}"));
                            }
                        }
                    }),
                );
            }
            Links::P2p { reactor, tokens }
        } else {
            let mut peers = Vec::new();
            for (node, stream) in streams.iter().enumerate() {
                let clone = stream
                    .try_clone()
                    .map_err(|e| NetError::Io(e.to_string()))?;
                peers.push(
                    Peer::spawn(
                        clone,
                        injector.clone(),
                        metrics.clone(),
                        format!("hub-to-{node}"),
                    )
                    .map_err(|e| NetError::Io(e.to_string()))?,
                );
            }
            let tx = TxSet::Star(peers.iter().map(Peer::handle).collect());
            for (node, stream) in streams.into_iter().enumerate() {
                spawn_reader(
                    node as u32,
                    stream,
                    cfg.cores_per_node,
                    tx.clone(),
                    Arc::clone(&shared),
                    injector.clone(),
                    metrics.clone(),
                )
                .map_err(|e| NetError::Io(e.to_string()))?;
            }
            Links::Star(peers)
        };
        Ok(Hub {
            links,
            addrs,
            shared,
        })
    }

    /// Enqueue a frame for one node.
    pub fn send_to(&self, node: u32, frame: Frame) {
        match &self.links {
            Links::Star(peers) => peers[node as usize].send(frame),
            Links::P2p { reactor, tokens } => reactor.handle().send(tokens[node as usize], frame),
        }
    }

    /// The socket address the joiner hosting `node` connected from —
    /// the real network address the client registry records.
    pub fn peer_addr(&self, node: u32) -> std::net::SocketAddr {
        self.addrs[node as usize]
    }

    /// Enqueue a frame for every node.
    pub fn broadcast(&self, frame: Frame) {
        for node in 0..self.addrs.len() as u32 {
            self.send_to(node, frame.clone());
        }
    }

    /// Block until every node reported wave `wave`'s barrier. Fails if
    /// a peer failure is recorded or `timeout` expires first.
    pub fn wait_barrier(&self, wave: u32, timeout: Duration) -> Result<(), NetError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if !inner.failures.is_empty() {
                return Err(NetError::Io(inner.failures.join("; ")));
            }
            if inner
                .barriers
                .get(&wave)
                .is_some_and(|s| s.len() as u32 == self.shared.nodes)
            {
                inner.barriers.remove(&wave);
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                let arrived = inner.barriers.get(&wave).map_or(0, HashSet::len);
                return Err(NetError::Timeout(format!(
                    "wave {wave} barrier: {arrived} of {} nodes within {}ms",
                    self.shared.nodes,
                    timeout.as_millis()
                )));
            }
            inner = self
                .shared
                .changed
                .wait_timeout(inner, deadline - now)
                .unwrap()
                .0;
        }
    }

    /// Block until every node's final [`NodeReport`] arrived.
    pub fn collect_reports(&self, timeout: Duration) -> Result<Vec<NodeReport>, NetError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if !inner.failures.is_empty() {
                return Err(NetError::Io(inner.failures.join("; ")));
            }
            if inner.reports.iter().all(Option::is_some) {
                return Ok(inner.reports.iter().flatten().cloned().collect());
            }
            let now = Instant::now();
            if now >= deadline {
                let arrived = inner.reports.iter().flatten().count();
                return Err(NetError::Timeout(format!(
                    "reports: {arrived} of {} nodes within {}ms",
                    self.shared.nodes,
                    timeout.as_millis()
                )));
            }
            inner = self
                .shared
                .changed
                .wait_timeout(inner, deadline - now)
                .unwrap()
                .0;
        }
    }

    /// Drain the telemetry the joiners shipped, as merge inputs: one
    /// [`ProcessTrace`] per node `0..nodes`, marked complete only when
    /// that node's `last` batch arrived with no gaps. A node whose
    /// shipment was lost entirely yields an empty, incomplete trace —
    /// the merge degrades to the processes that reported.
    ///
    /// Call after [`Hub::collect_reports`]: each hub connection is
    /// FIFO and joiners ship telemetry before their `Report`, so every
    /// batch that survived the wire has landed by then.
    pub fn take_telemetry(&self) -> Vec<ProcessTrace> {
        let mut inner = self.shared.inner.lock().unwrap();
        let mut shipped = std::mem::take(&mut inner.telemetry);
        (0..self.shared.nodes)
            .map(|node| match shipped.remove(&node) {
                Some(t) => ProcessTrace {
                    node,
                    events: t.events,
                    dropped: t.dropped_events,
                    dropped_spans: t.dropped_spans,
                    counters: t.counters.into_iter().collect::<BTreeMap<_, _>>(),
                    complete: t.last_seen && !t.gap,
                },
                None => ProcessTrace {
                    node,
                    events: Vec::new(),
                    dropped: 0,
                    dropped_spans: 0,
                    counters: BTreeMap::new(),
                    complete: false,
                },
            })
            .collect()
    }

    /// Buffer registrations announced via `PutNotify`: `(count, bytes)`.
    pub fn puts_announced(&self) -> (u64, u64) {
        let inner = self.shared.inner.lock().unwrap();
        (inner.puts_announced, inner.put_bytes_announced)
    }

    /// Versions announced lost to bounded subscriber queues (`SubLagged`).
    pub fn subs_lagged(&self) -> u64 {
        self.shared.inner.lock().unwrap().subs_lagged_announced
    }

    /// Connection-level failures recorded so far.
    pub fn failures(&self) -> Vec<String> {
        self.shared.inner.lock().unwrap().failures.clone()
    }

    /// Broadcast `Shutdown`, flush every staged frame onto the wire and
    /// stop the transport. Reader threads (star) exit on their own when
    /// the joiners close their sockets.
    pub fn shutdown(mut self, ok: bool, reason: &str) {
        self.broadcast(Frame::Shutdown {
            ok,
            reason: reason.to_string(),
        });
        match &mut self.links {
            Links::Star(peers) => {
                for peer in peers {
                    peer.close();
                }
            }
            Links::P2p { reactor, .. } => reactor.shutdown(),
        }
    }
}

/// Read one accepted connection's `Hello` (with a read timeout so a
/// silent connection cannot stall the accept loop), validate the node
/// id, and park the stream in its node slot. The `Welcome` goes out in
/// phase 2, once the full peer table exists.
fn read_hello(
    stream: TcpStream,
    cfg: &HubConfig,
    injector: &FaultInjector,
    metrics: &NetMetrics,
    slots: &mut [Option<(TcpStream, String, String)>],
) -> Result<u32, NetError> {
    let mut stream = stream;
    stream
        .set_nonblocking(false)
        .and_then(|_| stream.set_read_timeout(Some(Duration::from_secs(10))))
        .and_then(|_| stream.set_nodelay(true))
        .map_err(|e| NetError::Io(e.to_string()))?;
    let (node, peer_addr, host) = match recv_frame(&mut stream, injector, metrics)? {
        Frame::Hello {
            node,
            peer_addr,
            host,
        } => (node, peer_addr, host),
        other => {
            return Err(NetError::Protocol(format!(
                "expected Hello, got frame kind {}",
                other.kind()
            )))
        }
    };
    if node >= cfg.nodes {
        return Err(NetError::Protocol(format!(
            "joiner claims node {node}, but the run has {} nodes",
            cfg.nodes
        )));
    }
    if slots[node as usize].is_some() {
        return Err(NetError::Protocol(format!("two joiners claim node {node}")));
    }
    slots[node as usize] = Some((stream, peer_addr, host));
    Ok(node)
}

/// Route one frame arriving from `node`. Shared by the star reader
/// threads and the reactor sinks. Returns `false` when the frame was a
/// protocol violation (recorded in `shared`); the star reader stops on
/// that, the reactor keeps the loop alive for the other connections.
fn route(
    node: u32,
    frame: Frame,
    cores_per_node: u32,
    shared: &Shared,
    tx: &TxSet,
    metrics: &NetMetrics,
) -> bool {
    match frame {
        Frame::Relay { to, .. } => {
            tx.send_to(to / cores_per_node, frame);
        }
        Frame::PullRequest { piece, .. } => {
            let owner_node = ((piece >> 32) as u32) / cores_per_node;
            tx.send_to(owner_node, frame);
        }
        Frame::PullData { to_node, .. } => {
            // Data plane through the control plane. Expected in star
            // mode; the p2p acceptance gate asserts this counter stays
            // zero in reactor mode.
            metrics.pull_hub.inc();
            tx.send_to(to_node, frame);
        }
        Frame::PullNack { to_node, .. } => {
            tx.send_to(to_node, frame);
        }
        // Shm control frames ride the hub in star mode exactly like the
        // pull frames they replace — offers and doorbells go to the
        // consumer, acks back to the producer. The payloads themselves
        // never transit here: they sit in the pair's segment.
        Frame::ShmOffer { dst_node, .. } | Frame::ShmDoorbell { dst_node, .. } => {
            tx.send_to(dst_node, frame);
        }
        Frame::ShmAck { src_node, .. } => {
            tx.send_to(src_node, frame);
        }
        Frame::DhtInsert { .. } | Frame::GetDone { .. } | Frame::Evict { .. } => {
            for n in 0..shared.nodes {
                if n != node {
                    tx.send_to(n, frame.clone());
                }
            }
        }
        Frame::Subscribe { sub_id, .. } => {
            // Replicate the standing query everywhere, then release the
            // origin's registration rendezvous with an ack.
            for n in 0..shared.nodes {
                if n != node {
                    tx.send_to(n, frame.clone());
                }
            }
            tx.send_to(
                node,
                Frame::SubAck {
                    sub_id,
                    to_node: node,
                },
            );
        }
        Frame::SubCancel { .. } => {
            for n in 0..shared.nodes {
                if n != node {
                    tx.send_to(n, frame.clone());
                }
            }
        }
        Frame::SubPush { subscriber, .. } => {
            // Push plane through the control plane. Expected in star
            // mode; the p2p acceptance gate asserts this counter stays
            // zero in reactor mode.
            metrics.sub_push_hub.inc();
            tx.send_to(subscriber / cores_per_node, frame);
        }
        Frame::SubLagged { .. } => {
            shared.inner.lock().unwrap().subs_lagged_announced += 1;
        }
        Frame::PutNotify { bytes, .. } => {
            let mut inner = shared.inner.lock().unwrap();
            inner.puts_announced += 1;
            inner.put_bytes_announced += bytes;
        }
        Frame::Barrier { wave, node: from } => {
            shared
                .inner
                .lock()
                .unwrap()
                .barriers
                .entry(wave)
                .or_default()
                .insert(from);
            shared.changed.notify_all();
        }
        Frame::Report(report) => {
            let slot = report.node as usize;
            shared.inner.lock().unwrap().reports[slot] = Some(report);
            shared.changed.notify_all();
        }
        Frame::Telemetry {
            batch,
            last,
            dropped_events,
            dropped_spans,
            counters,
            events,
            ..
        } => {
            {
                let mut inner = shared.inner.lock().unwrap();
                // Keyed by the connection's node, not the frame field:
                // the connection identity is authenticated by the
                // handshake, the payload is not.
                let t = inner.telemetry.entry(node).or_default();
                if batch != t.next_batch {
                    t.gap = true;
                }
                t.next_batch = batch.saturating_add(1);
                t.events.extend(events);
                if last {
                    t.last_seen = true;
                    t.dropped_events = dropped_events;
                    t.dropped_spans = dropped_spans;
                    t.counters = counters;
                }
            }
            // The ack releases the shipper's next batch — one batch in
            // flight per node, so telemetry cannot flood the hub.
            tx.send_to(node, Frame::TelemetryAck { node, batch });
        }
        other => {
            shared.fail(format!(
                "node {node} sent unexpected frame kind {}",
                other.kind()
            ));
            return false;
        }
    }
    true
}

/// Spawn the routing reader for one joiner connection (star mode).
fn spawn_reader(
    node: u32,
    mut stream: TcpStream,
    cores_per_node: u32,
    tx: TxSet,
    shared: Arc<Shared>,
    injector: FaultInjector,
    metrics: NetMetrics,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("net-hub-from-{node}"))
        .spawn(move || loop {
            let frame = match recv_frame(&mut stream, &injector, &metrics) {
                Ok(f) => f,
                Err(NetError::Frame(crate::frame::FrameError::Truncated)) => {
                    // EOF is a clean hangup only after the node reported;
                    // mid-run it is a crashed joiner.
                    let reported = shared.inner.lock().unwrap().reports[node as usize].is_some();
                    if !reported {
                        shared.fail(format!("node {node} hung up before reporting"));
                    }
                    return;
                }
                Err(e) => {
                    shared.fail(format!("connection to node {node}: {e}"));
                    return;
                }
            };
            if !route(node, frame, cores_per_node, &shared, &tx, &metrics) {
                return;
            }
        })
}
