//! The workflow-server hub: accepts one TCP connection per simulated
//! node, runs the Hello/Welcome handshake, and routes every frame of
//! the star topology (joiners never talk to each other directly).
//!
//! Routing rules:
//!
//! - `Relay` goes to the node hosting the destination client
//!   (`to / cores_per_node`).
//! - `PullRequest` goes to the node of the owner client packed in the
//!   upper 32 bits of the piece id.
//! - `PullData` / `PullNack` go to the requesting node carried in the
//!   frame.
//! - `DhtInsert` / `GetDone` / `Evict` are broadcast to every node
//!   except the origin (each replica already applied its own change).
//! - `Barrier` and `Report` land in hub state for the wave engine;
//!   `PutNotify` feeds diagnostics counters only.
//!
//! Because each peer has one FIFO writer queue and TCP preserves order,
//! forwarding a joiner's mirror frames *before* the next wave's
//! `RunWave` guarantees every replica sees wave N's DHT state before
//! any wave N+1 task runs — the ordering the wave barriers rely on.

use crate::conn::{recv_frame, send_frame, NetError, NetMetrics, Peer, PeerHandle};
use crate::frame::{Frame, NodeReport};
use insitu_fabric::FaultInjector;
use std::collections::{HashMap, HashSet};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything the hub needs to accept and greet its joiners.
pub struct HubConfig {
    /// Number of joiner processes (= simulated nodes) to wait for.
    pub nodes: u32,
    /// Cores per node, for routing by client id.
    pub cores_per_node: u32,
    /// Mapping-strategy slug sent in `Welcome`.
    pub strategy: String,
    /// Get timeout every replica must use, in milliseconds.
    pub get_timeout_ms: u64,
    /// Workflow DAG text sent in `Welcome`.
    pub dag: String,
    /// Workload configuration text sent in `Welcome`.
    pub config: String,
    /// Run epoch sent in `Welcome`; salts every replica's DataSpace /
    /// BufferRegistry / DHT keys (0 = standalone run, no salting).
    pub run_epoch: u64,
    /// How long to wait for all joiners to connect and greet.
    pub accept_timeout: Duration,
}

/// State shared between the hub's reader threads and the wave engine.
struct Shared {
    nodes: u32,
    inner: Mutex<Inner>,
    changed: Condvar,
}

#[derive(Default)]
struct Inner {
    /// Nodes that reached each wave's barrier.
    barriers: HashMap<u32, HashSet<u32>>,
    /// Final per-node reports, indexed by node.
    reports: Vec<Option<NodeReport>>,
    /// Connection-level failures (peer hangups, protocol violations).
    failures: Vec<String>,
    /// Diagnostics from `PutNotify`: announced registrations and bytes.
    puts_announced: u64,
    put_bytes_announced: u64,
}

impl Shared {
    fn fail(&self, why: String) {
        self.inner.lock().unwrap().failures.push(why);
        self.changed.notify_all();
    }
}

/// The server's end of every joiner connection.
pub struct Hub {
    peers: Vec<Peer>,
    addrs: Vec<std::net::SocketAddr>,
    shared: Arc<Shared>,
}

impl Hub {
    /// Accept `cfg.nodes` joiners on `listener`, handshake each
    /// (`Hello` in, `Welcome` out) and spawn the writer and routing
    /// reader threads. Fails with a clear [`NetError::Timeout`] if the
    /// joiners do not all arrive within `cfg.accept_timeout`.
    pub fn accept(
        listener: &TcpListener,
        cfg: &HubConfig,
        injector: &FaultInjector,
        metrics: &NetMetrics,
    ) -> Result<Hub, NetError> {
        let deadline = Instant::now() + cfg.accept_timeout;
        listener
            .set_nonblocking(true)
            .map_err(|e| NetError::Io(e.to_string()))?;
        let mut streams: Vec<Option<TcpStream>> = (0..cfg.nodes).map(|_| None).collect();
        let mut joined = 0;
        while joined < cfg.nodes {
            if Instant::now() >= deadline {
                return Err(NetError::Timeout(format!(
                    "only {joined} of {} joiners connected within {}ms",
                    cfg.nodes,
                    cfg.accept_timeout.as_millis()
                )));
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let node = handshake(stream, cfg, injector, metrics, &mut streams)?;
                    joined += 1;
                    let _ = node;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(NetError::Io(e.to_string())),
            }
        }

        let shared = Arc::new(Shared {
            nodes: cfg.nodes,
            inner: Mutex::new(Inner {
                reports: (0..cfg.nodes).map(|_| None).collect(),
                ..Inner::default()
            }),
            changed: Condvar::new(),
        });

        let mut peers = Vec::new();
        let mut addrs = Vec::new();
        for (node, stream) in streams.iter().enumerate() {
            let stream = stream.as_ref().expect("all joiners greeted");
            addrs.push(
                stream
                    .peer_addr()
                    .map_err(|e| NetError::Io(e.to_string()))?,
            );
            let clone = stream
                .try_clone()
                .map_err(|e| NetError::Io(e.to_string()))?;
            peers.push(
                Peer::spawn(
                    clone,
                    injector.clone(),
                    metrics.clone(),
                    format!("hub-to-{node}"),
                )
                .map_err(|e| NetError::Io(e.to_string()))?,
            );
        }
        let handles: Vec<PeerHandle> = peers.iter().map(Peer::handle).collect();
        for (node, stream) in streams.into_iter().enumerate() {
            let stream = stream.expect("all joiners greeted");
            spawn_reader(
                node as u32,
                stream,
                cfg.cores_per_node,
                handles.clone(),
                Arc::clone(&shared),
                injector.clone(),
                metrics.clone(),
            )
            .map_err(|e| NetError::Io(e.to_string()))?;
        }
        Ok(Hub {
            peers,
            addrs,
            shared,
        })
    }

    /// Enqueue a frame for one node.
    pub fn send_to(&self, node: u32, frame: Frame) {
        self.peers[node as usize].send(frame);
    }

    /// The socket address the joiner hosting `node` connected from —
    /// the real network address the client registry records.
    pub fn peer_addr(&self, node: u32) -> std::net::SocketAddr {
        self.addrs[node as usize]
    }

    /// Enqueue a frame for every node.
    pub fn broadcast(&self, frame: Frame) {
        for peer in &self.peers {
            peer.send(frame.clone());
        }
    }

    /// Block until every node reported wave `wave`'s barrier. Fails if
    /// a peer failure is recorded or `timeout` expires first.
    pub fn wait_barrier(&self, wave: u32, timeout: Duration) -> Result<(), NetError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if !inner.failures.is_empty() {
                return Err(NetError::Io(inner.failures.join("; ")));
            }
            if inner
                .barriers
                .get(&wave)
                .is_some_and(|s| s.len() as u32 == self.shared.nodes)
            {
                inner.barriers.remove(&wave);
                return Ok(());
            }
            let now = Instant::now();
            if now >= deadline {
                let arrived = inner.barriers.get(&wave).map_or(0, HashSet::len);
                return Err(NetError::Timeout(format!(
                    "wave {wave} barrier: {arrived} of {} nodes within {}ms",
                    self.shared.nodes,
                    timeout.as_millis()
                )));
            }
            inner = self
                .shared
                .changed
                .wait_timeout(inner, deadline - now)
                .unwrap()
                .0;
        }
    }

    /// Block until every node's final [`NodeReport`] arrived.
    pub fn collect_reports(&self, timeout: Duration) -> Result<Vec<NodeReport>, NetError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.inner.lock().unwrap();
        loop {
            if !inner.failures.is_empty() {
                return Err(NetError::Io(inner.failures.join("; ")));
            }
            if inner.reports.iter().all(Option::is_some) {
                return Ok(inner.reports.iter().flatten().cloned().collect());
            }
            let now = Instant::now();
            if now >= deadline {
                let arrived = inner.reports.iter().flatten().count();
                return Err(NetError::Timeout(format!(
                    "reports: {arrived} of {} nodes within {}ms",
                    self.shared.nodes,
                    timeout.as_millis()
                )));
            }
            inner = self
                .shared
                .changed
                .wait_timeout(inner, deadline - now)
                .unwrap()
                .0;
        }
    }

    /// Buffer registrations announced via `PutNotify`: `(count, bytes)`.
    pub fn puts_announced(&self) -> (u64, u64) {
        let inner = self.shared.inner.lock().unwrap();
        (inner.puts_announced, inner.put_bytes_announced)
    }

    /// Connection-level failures recorded so far.
    pub fn failures(&self) -> Vec<String> {
        self.shared.inner.lock().unwrap().failures.clone()
    }

    /// Broadcast `Shutdown`, flush every writer queue onto the wire and
    /// stop the writers. Reader threads exit on their own when the
    /// joiners close their sockets.
    pub fn shutdown(mut self, ok: bool, reason: &str) {
        self.broadcast(Frame::Shutdown {
            ok,
            reason: reason.to_string(),
        });
        for peer in &mut self.peers {
            peer.close();
        }
    }
}

/// Greet one accepted connection: read `Hello` (with a read timeout so
/// a silent connection cannot stall the accept loop), validate the
/// node id, write `Welcome`, and park the stream in its node slot.
fn handshake(
    stream: TcpStream,
    cfg: &HubConfig,
    injector: &FaultInjector,
    metrics: &NetMetrics,
    streams: &mut [Option<TcpStream>],
) -> Result<u32, NetError> {
    let mut stream = stream;
    stream
        .set_nonblocking(false)
        .and_then(|_| stream.set_read_timeout(Some(Duration::from_secs(10))))
        .and_then(|_| stream.set_nodelay(true))
        .map_err(|e| NetError::Io(e.to_string()))?;
    let node = match recv_frame(&mut stream, injector, metrics)? {
        Frame::Hello { node } => node,
        other => {
            return Err(NetError::Protocol(format!(
                "expected Hello, got frame kind {}",
                other.kind()
            )))
        }
    };
    if node >= cfg.nodes {
        return Err(NetError::Protocol(format!(
            "joiner claims node {node}, but the run has {} nodes",
            cfg.nodes
        )));
    }
    if streams[node as usize].is_some() {
        return Err(NetError::Protocol(format!("two joiners claim node {node}")));
    }
    send_frame(
        &mut stream,
        &Frame::Welcome {
            nodes: cfg.nodes,
            strategy: cfg.strategy.clone(),
            get_timeout_ms: cfg.get_timeout_ms,
            dag: cfg.dag.clone(),
            config: cfg.config.clone(),
            run_epoch: cfg.run_epoch,
        },
        injector,
        metrics,
    )?;
    stream
        .set_read_timeout(None)
        .map_err(|e| NetError::Io(e.to_string()))?;
    streams[node as usize] = Some(stream);
    Ok(node)
}

/// Spawn the routing reader for one joiner connection.
fn spawn_reader(
    node: u32,
    mut stream: TcpStream,
    cores_per_node: u32,
    peers: Vec<PeerHandle>,
    shared: Arc<Shared>,
    injector: FaultInjector,
    metrics: NetMetrics,
) -> std::io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("net-hub-from-{node}"))
        .spawn(move || loop {
            let frame = match recv_frame(&mut stream, &injector, &metrics) {
                Ok(f) => f,
                Err(NetError::Frame(crate::frame::FrameError::Truncated)) => {
                    // EOF is a clean hangup only after the node reported;
                    // mid-run it is a crashed joiner.
                    let reported = shared.inner.lock().unwrap().reports[node as usize].is_some();
                    if !reported {
                        shared.fail(format!("node {node} hung up before reporting"));
                    }
                    return;
                }
                Err(e) => {
                    shared.fail(format!("connection to node {node}: {e}"));
                    return;
                }
            };
            match frame {
                Frame::Relay { to, .. } => {
                    peers[(to / cores_per_node) as usize].send(frame);
                }
                Frame::PullRequest { piece, .. } => {
                    let owner_node = ((piece >> 32) as u32) / cores_per_node;
                    peers[owner_node as usize].send(frame);
                }
                Frame::PullData { to_node, .. } | Frame::PullNack { to_node, .. } => {
                    peers[to_node as usize].send(frame);
                }
                Frame::DhtInsert { .. } | Frame::GetDone { .. } | Frame::Evict { .. } => {
                    for (n, peer) in peers.iter().enumerate() {
                        if n as u32 != node {
                            peer.send(frame.clone());
                        }
                    }
                }
                Frame::PutNotify { bytes, .. } => {
                    let mut inner = shared.inner.lock().unwrap();
                    inner.puts_announced += 1;
                    inner.put_bytes_announced += bytes;
                }
                Frame::Barrier { wave, node: from } => {
                    shared
                        .inner
                        .lock()
                        .unwrap()
                        .barriers
                        .entry(wave)
                        .or_default()
                        .insert(from);
                    shared.changed.notify_all();
                }
                Frame::Report(report) => {
                    let slot = report.node as usize;
                    shared.inner.lock().unwrap().reports[slot] = Some(report);
                    shared.changed.notify_all();
                }
                other => {
                    shared.fail(format!(
                        "node {node} sent unexpected frame kind {}",
                        other.kind()
                    ));
                    return;
                }
            }
        })
}
