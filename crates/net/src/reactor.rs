//! The non-blocking reactor: one thread, many connections.
//!
//! The star transport of PR 5 spends two threads per peer on the server
//! (a FIFO writer plus a routing reader) — thread count scales with
//! peer count, and every data-plane byte transits the hub. The reactor
//! replaces that with a single event loop per process:
//!
//! - every connection (and listener) registers with the
//!   [`insitu_util::Poller`] readiness shim in non-blocking mode;
//! - each connection owns a staged *write* buffer — all frames queued
//!   since the last loop iteration are encoded back-to-back and cross
//!   the socket in as few `write` syscalls as the kernel allows
//!   (small-message coalescing), preserving per-connection FIFO order;
//! - each connection owns a staged *read* buffer drained through
//!   [`FrameDecoder`], so a socket read may surface zero, one or many
//!   frames regardless of how the peer batched them;
//! - incoming frames are handed to a per-connection *sink* callback on
//!   the reactor thread; sinks must not block (hand off to channels).
//!
//! Fault gating matches the blocking path exactly: only data-plane
//! frames ([`Frame::PullData`]) are offered to the `net.send` /
//! `net.recv` sites; a `Drop` verdict discards the frame (send: never
//! staged; recv: decoded then discarded), a `Delay` sleeps the reactor
//! thread — the whole process's wire stalls, which is the closest
//! single-threaded analogue of a congested NIC.

use crate::conn::NetMetrics;
use crate::frame::{Frame, FrameDecoder};
use insitu_fabric::{FaultAction, FaultInjector, NetOp};
use insitu_util::channel::{unbounded, Receiver, Sender};
use insitu_util::Poller;
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Identifies one connection owned by a reactor. Tokens are allocated
/// from the reactor's handle and never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Token(pub u64);

/// What a connection's sink receives.
pub enum ConnEvent {
    /// A complete frame arrived (and survived the `net.recv` site).
    Frame(Frame),
    /// The connection ended. An empty reason is a clean EOF; otherwise
    /// the reason names the socket or protocol error. The token is dead
    /// afterwards: sends to it are silently dropped.
    Closed(String),
}

/// Per-connection event callback, invoked on the reactor thread.
/// Must not block — hand frames off to a channel and return.
pub type Sink = Box<dyn FnMut(ConnEvent) + Send>;

/// Listener callback: invoked for each accepted connection with its
/// freshly-allocated token and remote address; returns the sink that
/// will receive the connection's events.
pub type AcceptFn = Box<dyn FnMut(Token, SocketAddr) -> Sink + Send>;

/// Reserved token for the reactor's internal wake pipe.
const WAKE: u64 = u64::MAX;

/// Commands from handles to the reactor thread.
enum Cmd {
    AddStream(Token, TcpStream, Sink),
    AddListener(TcpListener, AcceptFn),
    Send(Token, Frame),
    Close(Token),
    Shutdown,
}

/// A cloneable command/send handle onto a running reactor.
#[derive(Clone)]
pub struct ReactorHandle {
    tx: Sender<Cmd>,
    wake: Arc<TcpStream>,
    next_token: Arc<AtomicU64>,
}

impl ReactorHandle {
    /// Allocate a fresh connection token (never reused).
    pub fn alloc_token(&self) -> Token {
        Token(self.next_token.fetch_add(1, Ordering::Relaxed))
    }

    /// Adopt `stream` under `token`, delivering its events to `sink`.
    pub fn add_stream(&self, token: Token, stream: TcpStream, sink: Sink) {
        self.push(Cmd::AddStream(token, stream, sink));
    }

    /// Adopt `listener`; each accepted connection gets a token and asks
    /// `accept` for its sink.
    pub fn add_listener(&self, listener: TcpListener, accept: AcceptFn) {
        self.push(Cmd::AddListener(listener, accept));
    }

    /// Queue `frame` for `token`. FIFO per connection; frames queued in
    /// one loop iteration coalesce into one write run. Sends to unknown
    /// or closed tokens are silently dropped (the peer is gone, and the
    /// run-level barriers surface that).
    pub fn send(&self, token: Token, frame: Frame) {
        self.push(Cmd::Send(token, frame));
    }

    /// Flush and close one connection.
    pub fn close(&self, token: Token) {
        self.push(Cmd::Close(token));
    }

    fn push(&self, cmd: Cmd) {
        if self.tx.send(cmd).is_ok() {
            // Nudge the poll loop; a full pipe already guarantees a
            // wake-up, so a WouldBlock here is success.
            let _ = (&*self.wake).write(&[1u8]);
        }
    }
}

/// One connection's state inside the loop.
struct Conn {
    stream: TcpStream,
    sink: Sink,
    decoder: FrameDecoder,
    /// Staged outbound bytes (encoded frames, back to back).
    out: Vec<u8>,
    /// Prefix of `out` already written to the socket.
    out_pos: usize,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// A running reactor: the event-loop thread plus its handle.
///
/// Dropping (or [`shutdown`](Reactor::shutdown)) flushes every staged
/// write buffer — bounded by a few seconds — then joins the thread.
pub struct Reactor {
    handle: ReactorHandle,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Reactor {
    /// Spawn the event-loop thread. `label` names the thread; the
    /// injector and metrics are shared with the rest of the transport.
    pub fn spawn(
        label: &str,
        injector: FaultInjector,
        metrics: NetMetrics,
    ) -> std::io::Result<Reactor> {
        // Self-pipe via a loopback TCP pair: handles write a byte to
        // wake the poll loop out of its sleep.
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let wake_tx = TcpStream::connect(listener.local_addr()?)?;
        let (wake_rx, _) = listener.accept()?;
        wake_tx.set_nonblocking(true)?;
        wake_tx.set_nodelay(true)?;

        let (tx, rx) = unbounded();
        let next_token = Arc::new(AtomicU64::new(0));
        let handle = ReactorHandle {
            tx,
            wake: Arc::new(wake_tx),
            next_token: next_token.clone(),
        };
        let thread = std::thread::Builder::new()
            .name(format!("net-reactor-{label}"))
            .spawn(move || run_loop(rx, wake_rx, next_token, injector, metrics))?;
        Ok(Reactor {
            handle,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// The cloneable command handle.
    pub fn handle(&self) -> ReactorHandle {
        self.handle.clone()
    }

    /// Flush all staged writes (bounded), close every connection and
    /// join the loop thread. Idempotent.
    pub fn shutdown(&self) {
        self.handle.push(Cmd::Shutdown);
        if let Some(h) = self.thread.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How long shutdown keeps trying to drain staged writes before giving
/// up on a congested peer.
const SHUTDOWN_FLUSH_BUDGET: Duration = Duration::from_secs(5);

/// Register `stream` with the poller and adopt it into the connection
/// table; on failure the sink hears `Closed` immediately.
fn adopt(
    poller: &mut Poller,
    conns: &mut HashMap<u64, Conn>,
    token: Token,
    stream: TcpStream,
    mut sink: Sink,
) {
    let _ = stream.set_nodelay(true);
    let registered = stream.try_clone().and_then(|clone| {
        poller.register(token.0, clone)?;
        stream.set_nonblocking(true)
    });
    match registered {
        Ok(()) => {
            conns.insert(
                token.0,
                Conn {
                    stream,
                    sink,
                    decoder: FrameDecoder::new(),
                    out: Vec::new(),
                    out_pos: 0,
                },
            );
        }
        Err(e) => sink(ConnEvent::Closed(format!("register: {e}"))),
    }
}

/// The event loop.
fn run_loop(
    rx: Receiver<Cmd>,
    wake_rx: TcpStream,
    next_token: Arc<AtomicU64>,
    injector: FaultInjector,
    metrics: NetMetrics,
) {
    let mut poller = Poller::new();
    // The wake pipe is permanently registered under the reserved token.
    if poller
        .register(WAKE, wake_rx.try_clone().expect("clone wake pipe"))
        .is_err()
    {
        return;
    }
    let mut wake_rx = wake_rx;
    let _ = wake_rx.set_nonblocking(true);

    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut listeners: Vec<(TcpListener, AcceptFn)> = Vec::new();
    let mut scratch = vec![0u8; 64 * 1024];
    let mut closed: Vec<(u64, String)> = Vec::new();

    loop {
        // (1) Drain every pending command before touching the wire:
        // consecutive Sends to one connection coalesce into its staged
        // buffer and cross the socket as one write run.
        let mut shutdown = false;
        while let Some(cmd) = rx.try_recv() {
            match cmd {
                Cmd::AddStream(token, stream, sink) => {
                    adopt(&mut poller, &mut conns, token, stream, sink);
                }
                Cmd::AddListener(listener, accept) => {
                    if listener.set_nonblocking(true).is_ok() {
                        listeners.push((listener, accept));
                    }
                }
                Cmd::Send(token, frame) => {
                    let Some(conn) = conns.get_mut(&token.0) else {
                        continue; // peer already gone
                    };
                    if frame.fault_eligible() {
                        let (a, b) = frame.fault_ids();
                        match injector.on_net(NetOp::Send, frame.kind(), a, b) {
                            FaultAction::Drop => continue,
                            // Delay stalls the whole reactor — the
                            // process's single wire thread — which is
                            // the intended congestion model.
                            FaultAction::Delay(d) => std::thread::sleep(d),
                            FaultAction::Proceed => {}
                        }
                    }
                    if frame.is_data_plane() {
                        metrics.pull_p2p.inc();
                    }
                    conn.out.extend_from_slice(&frame.encode());
                    metrics.frames.inc();
                }
                Cmd::Close(token) => {
                    if let Some(conn) = conns.get_mut(&token.0) {
                        let _ = flush(conn, &metrics);
                        poller.deregister(token.0);
                        conns.remove(&token.0);
                    }
                }
                Cmd::Shutdown => shutdown = true,
            }
        }
        if shutdown {
            let deadline = Instant::now() + SHUTDOWN_FLUSH_BUDGET;
            for (_, conn) in conns.iter_mut() {
                while conn.pending_out() > 0 && Instant::now() < deadline {
                    if flush(conn, &metrics).is_err() {
                        break;
                    }
                    if conn.pending_out() > 0 {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                }
            }
            return;
        }

        // (2) Accept on every listener until it would block.
        for (listener, accept) in listeners.iter_mut() {
            loop {
                match listener.accept() {
                    Ok((stream, addr)) => {
                        let token = Token(next_token.fetch_add(1, Ordering::Relaxed));
                        let sink = accept(token, addr);
                        adopt(&mut poller, &mut conns, token, stream, sink);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        // (3) Flush staged writes.
        closed.clear();
        for (tok, conn) in conns.iter_mut() {
            if conn.pending_out() > 0 {
                if let Err(e) = flush(conn, &metrics) {
                    closed.push((*tok, format!("write: {e}")));
                }
            }
        }
        for (tok, reason) in closed.drain(..) {
            if let Some(mut conn) = conns.remove(&tok) {
                poller.deregister(tok);
                (conn.sink)(ConnEvent::Closed(reason));
            }
        }

        // (4) Wait for readiness. Short timeout while writes are
        // pending or listeners may have queued accepts; longer when
        // fully idle.
        let staged: usize = conns.values().map(Conn::pending_out).sum();
        metrics.bytes_in_flight.set(staged as u64);
        let pending_writes = staged > 0;
        let timeout = if pending_writes {
            Duration::from_micros(50)
        } else if !listeners.is_empty() {
            Duration::from_millis(2)
        } else {
            Duration::from_millis(10)
        };
        let ready = poller.poll(timeout);

        // (5) Read every ready connection dry.
        for tok in ready {
            if tok == WAKE {
                let mut sink_hole = [0u8; 256];
                while matches!(wake_rx.read(&mut sink_hole), Ok(n) if n > 0) {}
                continue;
            }
            let Some(conn) = conns.get_mut(&tok) else {
                continue;
            };
            let mut close_reason: Option<String> = None;
            'reads: loop {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        close_reason = Some(String::new()); // clean EOF
                        break 'reads;
                    }
                    Ok(n) => {
                        metrics.bytes_recv.add(n as u64);
                        conn.decoder.push(&scratch[..n]);
                        loop {
                            match conn.decoder.next_frame() {
                                Ok(Some(frame)) => {
                                    metrics.frames.inc();
                                    if frame.fault_eligible() {
                                        let (a, b) = frame.fault_ids();
                                        match injector.on_net(NetOp::Recv, frame.kind(), a, b) {
                                            FaultAction::Drop => continue,
                                            FaultAction::Delay(d) => std::thread::sleep(d),
                                            FaultAction::Proceed => {}
                                        }
                                    }
                                    (conn.sink)(ConnEvent::Frame(frame));
                                }
                                Ok(None) => break,
                                Err(e) => {
                                    close_reason = Some(format!("protocol: {e}"));
                                    break 'reads;
                                }
                            }
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break 'reads,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => {
                        close_reason = Some(format!("read: {e}"));
                        break 'reads;
                    }
                }
            }
            if let Some(reason) = close_reason {
                poller.deregister(tok);
                if let Some(mut conn) = conns.remove(&tok) {
                    (conn.sink)(ConnEvent::Closed(reason));
                }
            }
        }
    }
}

/// Write as much of the staged buffer as the socket accepts.
fn flush(conn: &mut Conn, metrics: &NetMetrics) -> std::io::Result<()> {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return Err(std::io::Error::from(ErrorKind::WriteZero)),
            Ok(n) => {
                conn.out_pos += n;
                metrics.bytes_sent.add(n as u64);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    if conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
    } else if conn.out_pos > 64 * 1024 {
        // Reclaim the written prefix of a large half-flushed buffer.
        conn.out.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_telemetry::Recorder;
    use std::sync::mpsc;

    fn metrics() -> NetMetrics {
        NetMetrics::new(&Recorder::disabled())
    }

    fn chan_sink() -> (Sink, mpsc::Receiver<ConnEvent>) {
        let (tx, rx) = mpsc::channel();
        (Box::new(move |ev| drop(tx.send(ev))), rx)
    }

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn recv_frame_ev(rx: &mpsc::Receiver<ConnEvent>) -> Frame {
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            ConnEvent::Frame(f) => f,
            ConnEvent::Closed(why) => panic!("unexpected close: {why:?}"),
        }
    }

    #[test]
    fn two_reactors_exchange_frames_in_fifo_order() {
        let ra = Reactor::spawn("a", FaultInjector::none(), metrics()).unwrap();
        let rb = Reactor::spawn("b", FaultInjector::none(), metrics()).unwrap();
        let (sa, sb) = pair();
        let (sink_a, rx_a) = chan_sink();
        let (sink_b, rx_b) = chan_sink();
        let ta = ra.handle().alloc_token();
        let tb = rb.handle().alloc_token();
        ra.handle().add_stream(ta, sa, sink_a);
        rb.handle().add_stream(tb, sb, sink_b);

        for wave in 0..64 {
            ra.handle().send(ta, Frame::RunWave { wave });
        }
        for wave in 0..64 {
            assert_eq!(recv_frame_ev(&rx_b), Frame::RunWave { wave });
        }
        rb.handle().send(tb, Frame::ListRuns);
        assert_eq!(recv_frame_ev(&rx_a), Frame::ListRuns);
    }

    #[test]
    fn listener_accepts_and_serves_many_connections() {
        let r = Reactor::spawn("srv", FaultInjector::none(), metrics()).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Echo every frame back on the same connection.
        let handle = r.handle();
        r.handle().add_listener(
            listener,
            Box::new(move |token, _addr| {
                let h = handle.clone();
                Box::new(move |ev| {
                    if let ConnEvent::Frame(f) = ev {
                        h.send(token, f);
                    }
                })
            }),
        );

        let client = Reactor::spawn("cli", FaultInjector::none(), metrics()).unwrap();
        let mut rxs = Vec::new();
        for i in 0..8u32 {
            let stream = TcpStream::connect(addr).unwrap();
            let (sink, rx) = chan_sink();
            let t = client.handle().alloc_token();
            client.handle().add_stream(t, stream, sink);
            client.handle().send(t, Frame::RunWave { wave: i });
            rxs.push((i, rx));
        }
        for (i, rx) in rxs {
            assert_eq!(recv_frame_ev(&rx), Frame::RunWave { wave: i });
        }
    }

    #[test]
    fn peer_hangup_surfaces_as_clean_close() {
        let r = Reactor::spawn("x", FaultInjector::none(), metrics()).unwrap();
        let (sa, sb) = pair();
        let (sink, rx) = chan_sink();
        let t = r.handle().alloc_token();
        r.handle().add_stream(t, sa, sink);
        drop(sb);
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            ConnEvent::Closed(reason) => assert!(reason.is_empty(), "{reason:?}"),
            ConnEvent::Frame(f) => panic!("unexpected frame {f:?}"),
        }
    }

    #[test]
    fn garbage_bytes_surface_as_protocol_close() {
        let r = Reactor::spawn("x", FaultInjector::none(), metrics()).unwrap();
        let (sa, mut sb) = pair();
        let (sink, rx) = chan_sink();
        let t = r.handle().alloc_token();
        r.handle().add_stream(t, sa, sink);
        // An absurd length word poisons the stream.
        sb.write_all(&u32::MAX.to_le_bytes()).unwrap();
        sb.write_all(&[0u8; 8]).unwrap();
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            ConnEvent::Closed(reason) => assert!(reason.contains("protocol"), "{reason:?}"),
            ConnEvent::Frame(f) => panic!("unexpected frame {f:?}"),
        }
    }

    #[test]
    fn coalesced_sends_cross_in_bulk_and_count_bytes() {
        let m = metrics();
        let r = Reactor::spawn("x", FaultInjector::none(), m.clone()).unwrap();
        let (sa, mut sb) = pair();
        let (sink, _rx) = chan_sink();
        let t = r.handle().alloc_token();
        r.handle().add_stream(t, sa, sink);
        let frames: Vec<Frame> = (0..100).map(|wave| Frame::RunWave { wave }).collect();
        for f in &frames {
            r.handle().send(t, f.clone());
        }
        // The blocking reader sees all 100 in order regardless of how
        // they were batched on the wire.
        sb.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for f in &frames {
            assert_eq!(&Frame::read_from(&mut sb).unwrap(), f);
        }
        // The byte counter is updated by the reactor thread right after
        // its write returns; the reader above can observe the bytes
        // first, so give the counter a moment to catch up.
        let total: u64 = frames.iter().map(|f| f.encode().len() as u64).sum();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while m.bytes_sent.get() < total && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(m.bytes_sent.get(), total);
        assert_eq!(m.frames.get(), 100);
    }

    #[test]
    fn shutdown_flushes_staged_writes() {
        let r = Reactor::spawn("x", FaultInjector::none(), metrics()).unwrap();
        let (sa, mut sb) = pair();
        let (sink, _rx) = chan_sink();
        let t = r.handle().alloc_token();
        r.handle().add_stream(t, sa, sink);
        for wave in 0..16 {
            r.handle().send(t, Frame::RunWave { wave });
        }
        r.shutdown();
        sb.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        for wave in 0..16 {
            assert_eq!(Frame::read_from(&mut sb).unwrap(), Frame::RunWave { wave });
        }
    }
}
