//! insitu-net: the wire transport.
//!
//! Everything below this crate simulates distribution inside one
//! process; this crate makes it real. It carries the HybridDART
//! network path (§III.A, §IV.A of the paper) over TCP so a coupled
//! workflow runs as genuine OS processes — one workflow-server process
//! plus one process per simulated node — while the layers above keep
//! their exact in-process semantics:
//!
//! - [`frame`] — the length-prefixed, versioned binary codec: 31
//!   message types covering registration (`Hello`/`Welcome`), task
//!   dispatch (`Relay` + `RunWave`/`Barrier`), buffer movement
//!   (`PutNotify`, `PullRequest`, `PullData`, `PullNack`), DHT-replica
//!   maintenance (`DhtInsert`, `GetDone`, `Evict`), run teardown
//!   (`Report`, `Shutdown`), the multi-tenant service RPCs
//!   (`Submit`/`Submitted`, `Cancel`, `Status`/`RunStatus`,
//!   `ListRuns`/`RunList`, `RunResult`/`RunReport`, `RpcErr`), the
//!   telemetry plane (`Telemetry`/`TelemetryAck` batch shipping,
//!   `Watch`/`Progress` live run streaming) and the intra-host
//!   shared-memory control frames (`ShmOffer`/`ShmAck`/`ShmDoorbell`).
//!   Decoding rejects malformed input, never panics.
//!   The shm control frames coordinate `insitu_util::shm` segments:
//!   same-host pairs move `PullData` payloads through a
//!   producer-created `/dev/shm` ring instead of the socket, zero-copy.
//! - [`conn`] — counted, fault-gated frame I/O over
//!   `std::net::TcpStream`: per-peer FIFO writer threads, retrying
//!   connect with a hard deadline, and the `net.*` telemetry counters.
//! - [`reactor`] — the non-blocking event loop: one thread owns every
//!   connection, readiness comes from the `insitu_util::Poller` shim,
//!   small messages coalesce into batched writes, and thread count
//!   stays O(1) per process no matter how many peers connect.
//! - [`hub`] — the workflow server's router. In star mode joiners only
//!   ever talk to the hub, which forwards relays, routes pulls by the
//!   owner packed in the buffer key, broadcasts DHT mirror traffic and
//!   runs the wave barriers. In reactor (p2p) mode the hub serves all
//!   joiners from one event loop and carries control traffic only —
//!   `PullData` flows directly node↔node.
//! - [`link`] — the joiner's end: implements `insitu_dart::Transport`
//!   and `insitu_cods::SpaceMirror` over the hub connection (and, in
//!   p2p mode, lazily-dialed direct peer connections), demuxes
//!   incoming frames into the local mailboxes / registry / DHT replica
//!   and surfaces `RunWave`/`Shutdown` to the wave loop.
//!
//! Built entirely on `std::net` — the workspace stays offline-buildable
//! with zero external dependencies.
//!
//! Fault injection: `net.connect` fires on every connect attempt;
//! `net.send` / `net.recv` fire on data-plane (`PullData`) frames and
//! on `Telemetry` batches (whose loss costs trace completeness, never
//! run correctness). Other control frames are exempt by design — the
//! paper's management server is reliable, and dropping a barrier would
//! model a different system.

#![warn(missing_docs)]

pub mod conn;
pub mod frame;
pub mod hub;
pub mod link;
mod peers;
pub mod reactor;

pub use conn::{
    connect_with_retry, recv_frame, send_frame, NetError, NetMetrics, Peer, PeerHandle,
};
pub use frame::{
    encode_batch, Frame, FrameDecoder, FrameError, NodeReport, RunState, RunSummary,
    KIND_TELEMETRY, MAX_FRAME_LEN, WIRE_VERSION,
};
pub use hub::{Hub, HubConfig};
pub use link::{Ctl, NetLink};
pub use reactor::{AcceptFn, ConnEvent, Reactor, ReactorHandle, Sink, Token};
