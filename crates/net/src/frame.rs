//! The length-prefixed binary frame codec.
//!
//! Every frame on the wire is
//!
//! ```text
//! [u32 len (LE)] [u8 version] [u8 kind] [payload ...]
//! ```
//!
//! where `len` counts everything after the length word (so `len ==
//! 2 + payload.len()`). Integers are little-endian; strings are UTF-8
//! with a `u32` byte-length prefix; byte and `u64` vectors carry a `u32`
//! element-count prefix. Decoding is total: malformed input of any shape
//! — truncated payloads, oversized length words, unknown versions or
//! kinds, trailing garbage — returns a [`FrameError`], never panics, so
//! a confused or hostile peer cannot take the process down.

use insitu_fabric::{LedgerSnapshot, Locality, TrafficClass};
use insitu_obs::{Event, EventKind, LinkClass};
use std::io::{Read, Write};

/// Protocol revision; bumped on any incompatible codec change.
/// Version 2 added the service RPC frames and `Welcome::run_epoch`;
/// version 3 added `Hello::peer_addr` and `Welcome::peers` for the
/// direct node↔node data plane; version 4 added the telemetry plane
/// (`Telemetry`/`TelemetryAck`), live run streaming (`Watch`/
/// `Progress`) and the `RunSummary` link-health fields; version 5
/// added the intra-host shared-memory data plane (`Hello::host`,
/// `Welcome::hosts`, `ShmOffer`/`ShmAck`/`ShmDoorbell`); version 6
/// added the standing-query plane (`Subscribe`/`SubAck`/`SubPush`/
/// `SubCancel`/`SubLagged`).
pub const WIRE_VERSION: u8 = 6;

/// Upper bound on `len`: rejects absurd length words before any
/// allocation happens (a 256 MiB frame comfortably fits the largest
/// paper-scale piece).
pub const MAX_FRAME_LEN: u32 = 256 << 20;

/// Decode (and stream-read) failures. Every variant is a rejection — the
/// codec never panics on wire input.
#[derive(Clone, Debug, PartialEq)]
pub enum FrameError {
    /// The stream ended or the payload is shorter than its fields claim.
    Truncated,
    /// The length word exceeds [`MAX_FRAME_LEN`] (or is too short to hold
    /// the version and kind bytes).
    BadLength(u32),
    /// Unknown protocol revision.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Structurally invalid payload (bad UTF-8, bad enum index, trailing
    /// bytes, ...).
    BadPayload(&'static str),
    /// Underlying stream error while reading or writing a frame.
    Io(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::BadLength(n) => write!(f, "bad frame length {n}"),
            FrameError::BadVersion(v) => {
                write!(f, "unsupported wire version {v} (expected {WIRE_VERSION})")
            }
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::BadPayload(why) => write!(f, "bad frame payload: {why}"),
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One execution client's end-of-run report: its ledger snapshot plus
/// the outcome fields the server folds into the merged
/// `DistribOutcome`.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeReport {
    /// Reporting node.
    pub node: u32,
    /// The node process's complete transfer ledger.
    pub ledger: LedgerSnapshot,
    /// Value-verification failures observed by consumer tasks.
    pub verify_failures: u64,
    /// Buffers owned by this node's clients still registered at the end.
    pub staged: u64,
    /// Completed `get` operations.
    pub gets: u64,
    /// Task errors, rendered to strings (sorted by the sender).
    pub errors: Vec<String>,
}

/// Lifecycle state of one service run, as carried on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunState {
    /// Accepted, waiting for admission (max-runs or pool capacity).
    Queued,
    /// Executing on the joiner pool.
    Running,
    /// Completed successfully; artifacts are available.
    Done,
    /// Ended with an error; `detail` names it.
    Failed,
    /// Cancelled while queued or mid-flight.
    Cancelled,
}

impl RunState {
    /// All states, in wire order.
    pub const ALL: [RunState; 5] = [
        RunState::Queued,
        RunState::Running,
        RunState::Done,
        RunState::Failed,
        RunState::Cancelled,
    ];

    /// Wire byte for this state.
    pub fn idx(self) -> u8 {
        match self {
            RunState::Queued => 0,
            RunState::Running => 1,
            RunState::Done => 2,
            RunState::Failed => 3,
            RunState::Cancelled => 4,
        }
    }

    /// Decode a wire byte; `None` on unknown values.
    pub fn from_idx(idx: u8) -> Option<RunState> {
        RunState::ALL.get(idx as usize).copied()
    }

    /// Whether the run can no longer change state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            RunState::Done | RunState::Failed | RunState::Cancelled
        )
    }

    /// Lower-case slug used by the CLI and JSON artifacts.
    pub fn slug(self) -> &'static str {
        match self {
            RunState::Queued => "queued",
            RunState::Running => "running",
            RunState::Done => "done",
            RunState::Failed => "failed",
            RunState::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for RunState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

/// One run's summary row, carried by [`Frame::RunStatus`] and
/// [`Frame::RunList`].
#[derive(Clone, Debug, PartialEq)]
pub struct RunSummary {
    /// Service-assigned run id.
    pub run: u64,
    /// Submitter-chosen display name.
    pub name: String,
    /// Current lifecycle state.
    pub state: RunState,
    /// Simulated nodes the run occupies while running.
    pub nodes: u32,
    /// Human-readable detail (failure reason, queue position, ...).
    pub detail: String,
    /// Link-stall episodes the service watchdog counted for this run
    /// (mirrors the `net.link_stalls` counter).
    pub link_stalls: u64,
    /// Structured health events the watchdog recorded, oldest first
    /// (e.g. `"link-stall: no pull progress for 2000ms"`).
    pub health: Vec<String>,
}

/// A protocol message.
///
/// Control-plane frames are never offered to fault injection: the
/// management plane is reliable, as in the paper. [`Frame::PullData`]
/// is the data plane and carries the `net.send`/`net.recv` chaos fault
/// sites; [`Frame::Telemetry`] is the observability plane and carries
/// its own droppable `net-telemetry` site — losing a telemetry batch
/// degrades the merged trace, never the run.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Joiner → server: first frame on a connection; registers the
    /// process as the host of simulated node `node`.
    Hello {
        /// Node this process hosts.
        node: u32,
        /// Address (`ip:port`) where this process accepts direct
        /// node↔node data-plane connections; empty when the joiner has
        /// no peer listener (star-only transport).
        peer_addr: String,
        /// Host fingerprint (boot id) for same-host detection; two
        /// processes with equal non-empty fingerprints may exchange
        /// PullData over shared memory. Empty = shm opted out
        /// (`--no-shm`) or unavailable on this platform.
        host: String,
    },
    /// Server → joiner: registration accepted; carries everything the
    /// joiner needs to deterministically rebuild the scenario replica.
    Welcome {
        /// Total nodes (= joiner processes) in the run.
        nodes: u32,
        /// Mapping-strategy slug (`data-centric`, `round-robin`, ...).
        strategy: String,
        /// Get timeout every replica must use, in milliseconds.
        get_timeout_ms: u64,
        /// The workflow DAG description text.
        dag: String,
        /// The workload configuration text.
        config: String,
        /// Run epoch salting the DataSpace/BufferRegistry/DHT key space
        /// so concurrent runs over one pool cannot collide (0 = no
        /// salting; standalone `serve` runs use 0).
        run_epoch: u64,
        /// Peer data-plane addresses indexed by node, as advertised in
        /// each joiner's `Hello`. Empty = star topology (all PullData
        /// routed through the hub); length `nodes` = reactor/p2p mode
        /// (PullData flows node↔node, the hub carries control only).
        peers: Vec<String>,
        /// Host fingerprints indexed by node, as advertised in each
        /// joiner's `Hello`. A pair of nodes with equal non-empty
        /// fingerprints is same-host: the producer may offer a
        /// shared-memory segment for its PullData. Empty = shm
        /// disabled run-wide.
        hosts: Vec<String>,
    },
    /// A mailbox message for a client hosted elsewhere (task dispatch
    /// from the server, halo exchange between joiners). Routed by the
    /// server; already accounted by the sender.
    Relay {
        /// Destination client.
        to: u32,
        /// Source client.
        src: u32,
        /// Message tag.
        tag: u64,
        /// Message payload.
        payload: Vec<u8>,
    },
    /// Joiner → server: a buffer was registered locally (put-notify).
    /// Informational: pull routing is by the owner packed in the key.
    PutNotify {
        /// Buffer name hash.
        name: u64,
        /// Version.
        version: u64,
        /// Piece id with the owner client in the upper 32 bits.
        piece: u64,
        /// Owning client.
        owner: u32,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// Consumer joiner → server → owner joiner: request one buffer.
    PullRequest {
        /// Buffer name hash.
        name: u64,
        /// Version.
        version: u64,
        /// Piece id with the owner client in the upper 32 bits.
        piece: u64,
        /// Node of the requesting process (reply routing).
        from_node: u32,
    },
    /// Owner joiner → server → consumer joiner: the requested bytes.
    /// The only data-plane frame; `net.send`/`net.recv` fault sites
    /// apply to it.
    PullData {
        /// Buffer name hash.
        name: u64,
        /// Version.
        version: u64,
        /// Piece id with the owner client in the upper 32 bits.
        piece: u64,
        /// Owning client (becomes the registered handle's owner).
        owner: u32,
        /// Node of the requesting process.
        to_node: u32,
        /// The staged bytes.
        data: Vec<u8>,
    },
    /// Owner joiner → server → consumer joiner: the buffer never
    /// appeared before the owner's timeout; the consumer's own wait
    /// will surface the pull timeout.
    PullNack {
        /// Buffer name hash.
        name: u64,
        /// Version.
        version: u64,
        /// Piece id with the owner client in the upper 32 bits.
        piece: u64,
        /// Node of the requesting process.
        to_node: u32,
    },
    /// Joiner → server → all other joiners: mirror of a local DHT
    /// insert, so every replica answers location queries identically.
    DhtInsert {
        /// Variable name hash.
        var: u64,
        /// Version.
        version: u64,
        /// Owning client.
        owner: u32,
        /// Piece id (unpacked).
        piece: u64,
        /// Bounding-box lower corner.
        lbs: Vec<u64>,
        /// Bounding-box upper corner.
        ubs: Vec<u64>,
    },
    /// Joiner → server → all other joiners: a `get` of `(var, version)`
    /// completed (version-consumption bookkeeping for producers).
    GetDone {
        /// Variable name hash.
        var: u64,
        /// Version.
        version: u64,
    },
    /// Joiner → server → all other joiners: versions of `var` up to and
    /// including `version` were evicted.
    Evict {
        /// Variable name hash.
        var: u64,
        /// Highest evicted version.
        version: u64,
    },
    /// Server → joiners: all of wave `wave`'s dispatch relays precede
    /// this frame on each connection; start executing local tasks.
    RunWave {
        /// Wave index.
        wave: u32,
    },
    /// Joiner → server: all local tasks of `wave` finished and their
    /// mirror frames precede this frame on the connection.
    Barrier {
        /// Wave index.
        wave: u32,
        /// Reporting node.
        node: u32,
    },
    /// Joiner → server: final per-process outcome.
    Report(NodeReport),
    /// Server → joiners: the run is over; close down.
    Shutdown {
        /// Whether the run completed successfully.
        ok: bool,
        /// Human-readable reason (empty on success).
        reason: String,
    },
    /// Client → service: enqueue a new workflow run.
    Submit {
        /// Display name for status listings.
        name: String,
        /// The workflow DAG description text.
        dag: String,
        /// The workload configuration text.
        config: String,
        /// Mapping-strategy slug.
        strategy: String,
        /// Get timeout the run's replicas must use, in milliseconds.
        get_timeout_ms: u64,
        /// Admission priority: a higher value is queued ahead of every
        /// lower one, first-come-first-served within a level. 0 (the
        /// default) is plain FIFO.
        priority: u32,
    },
    /// Service → client: the run was accepted and queued.
    Submitted {
        /// Assigned run id.
        run: u64,
        /// Runs ahead of this one in the admission queue.
        queued_ahead: u32,
    },
    /// Client → service: cancel a queued or running run.
    Cancel {
        /// Run to cancel.
        run: u64,
    },
    /// Client → service: ask for one run's summary.
    Status {
        /// Run to describe.
        run: u64,
    },
    /// Client → service: ask for every run's summary.
    ListRuns,
    /// Service → client: one run's summary (answer to `Status` and
    /// `Cancel`).
    RunStatus(RunSummary),
    /// Service → client: all runs (answer to `ListRuns`).
    RunList {
        /// Every run the service knows, in submission order.
        runs: Vec<RunSummary>,
    },
    /// Client → service: ask for a completed run's artifacts.
    RunResult {
        /// Run whose artifacts to fetch.
        run: u64,
    },
    /// Service → client: a run's artifacts (answer to `RunResult`).
    /// JSON fields are empty until the run reaches a terminal state.
    RunReport {
        /// Run id.
        run: u64,
        /// Terminal (or current) state.
        state: RunState,
        /// Merged transfer ledger, rendered as JSON.
        ledger_json: String,
        /// Per-run metrics registry snapshot, rendered as JSON.
        metrics_json: String,
        /// Per-run critical-path profile, rendered as JSON.
        profile_json: String,
        /// Task errors, sorted.
        errors: Vec<String>,
    },
    /// Service → client: an RPC could not be served (unknown run, full
    /// queue, malformed workflow, ...).
    RpcErr {
        /// Human-readable reason.
        message: String,
    },
    /// Joiner → server: one bounded batch of the joiner's flight
    /// recording plus (on the last batch) its metrics counters — the
    /// telemetry plane's unit of shipping. Batches ride the same FIFO
    /// connection as control traffic but are sized so they can never
    /// starve data frames, and they are fault-eligible: a dropped batch
    /// costs trace completeness, not run correctness.
    Telemetry {
        /// Shipping node.
        node: u32,
        /// Batch index within this node's shipment (0-based).
        batch: u32,
        /// True on the final batch; its arrival marks the node's trace
        /// complete. A node that never delivers a `last` batch is
        /// reported as incomplete by the merge.
        last: bool,
        /// Flight events the node's bounded recorder dropped.
        dropped_events: u64,
        /// Trace spans the node's telemetry sink dropped
        /// (`trace.dropped_spans`), so drops on *any* process surface
        /// in the merged report.
        dropped_spans: u64,
        /// Metrics counters `(name, value)` at snapshot time; only
        /// populated on the last batch.
        counters: Vec<(String, u64)>,
        /// The flight events of this batch, in recording order.
        events: Vec<Event>,
    },
    /// Server → joiner: `Telemetry` batch received; the shipper's
    /// bounded-window flow control (ship, await ack, ship next).
    TelemetryAck {
        /// Acknowledged node.
        node: u32,
        /// Acknowledged batch index.
        batch: u32,
    },
    /// Client → service: subscribe to periodic run-progress frames.
    Watch {
        /// Run to watch.
        run: u64,
        /// Requested sampling interval in milliseconds (the service
        /// clamps to its watchdog cadence).
        interval_ms: u64,
        /// Deliver exactly one `Progress` frame, then stop (CI mode).
        once: bool,
    },
    /// Service → client: one live progress sample of a watched run
    /// (answer stream to `Watch`; `done` marks the final frame).
    Progress {
        /// Watched run.
        run: u64,
        /// Lifecycle state at sample time.
        state: RunState,
        /// True on the final frame of the stream.
        done: bool,
        /// Completed waves (iterations dispatched so far).
        wave: u32,
        /// Total waves in the run's schedule.
        waves: u32,
        /// Completed pulls across the run's processes.
        pulls: u64,
        /// Bytes moved by those pulls.
        pull_bytes: u64,
        /// Shared-memory pull-wait p50, microseconds.
        shm_wait_p50_us: u64,
        /// Shared-memory pull-wait p99, microseconds.
        shm_wait_p99_us: u64,
        /// RDMA pull-wait p50, microseconds.
        rdma_wait_p50_us: u64,
        /// RDMA pull-wait p99, microseconds.
        rdma_wait_p99_us: u64,
        /// Pulls currently in flight (requested, not yet landed).
        pulls_in_flight: u64,
        /// Bytes currently staged and pullable across the run
        /// (`cods.staging_bytes`).
        bytes_in_flight: u64,
        /// Bytes staged on the run's wire send paths, not yet flushed
        /// (`net.bytes_in_flight`); 0 for in-process runs.
        queue_depth: u64,
        /// Standing queries currently registered (`sub.active`).
        sub_active: u64,
        /// Subscription fragments pushed so far (`sub.pushes`).
        sub_pushes: u64,
        /// Deliveries lost to subscriber queue overflow (`sub.lagged`).
        sub_lagged: u64,
        /// Link-stall episodes the watchdog has counted so far.
        link_stalls: u64,
        /// Structured health events recorded so far, oldest first.
        health: Vec<String>,
    },
    /// Producer → consumer (control plane): the producer created a
    /// shared-memory segment for its directed pair with `dst_node`;
    /// subsequent PullData for that pair rides the segment's ring,
    /// announced by `ShmDoorbell` frames on this same FIFO link.
    /// Control plane: never fault-eligible, never data plane — the
    /// chaos `shm-attach` site fires at segment creation/attach, not
    /// on the wire.
    ShmOffer {
        /// Producer's node (segment creator).
        src_node: u32,
        /// Consumer's node (segment attacher).
        dst_node: u32,
        /// Directed-pair segment id (`src << 32 | dst`).
        segment: u64,
        /// Filesystem path of the segment file (producer's view; the
        /// pair is same-host, so the consumer opens the same path).
        path: String,
        /// Descriptor-ring slot count.
        slots: u64,
        /// Payload arena length in bytes.
        arena_bytes: u64,
    },
    /// Consumer → producer (control plane): the consumer's answer to
    /// `ShmOffer` (`attached` = mapped and validated) and, later, its
    /// credit/nack channel: `attached == false` after records were
    /// published tells the producer to resend them as PullData and
    /// retire the segment.
    ShmAck {
        /// Producer's node.
        src_node: u32,
        /// Consumer's node.
        dst_node: u32,
        /// Directed-pair segment id.
        segment: u64,
        /// Ring sequence the consumer has consumed through (0 on the
        /// initial attach answer).
        seq: u64,
        /// Whether the consumer is attached to the segment.
        attached: bool,
    },
    /// Producer → consumer (control plane): one or more records were
    /// published to the pair's ring at or below `seq`; drain it. The
    /// doorbell carries no payload — the data already sits in the
    /// consumer-mapped segment.
    ShmDoorbell {
        /// Producer's node.
        src_node: u32,
        /// Consumer's node.
        dst_node: u32,
        /// Directed-pair segment id.
        segment: u64,
        /// Ring head sequence after the publish.
        seq: u64,
    },
    /// Joiner → hub (control plane): register a standing query on every
    /// replica. The hub broadcasts it to all nodes except the origin
    /// and answers the origin with `SubAck`. Idempotent by `sub_id`
    /// (the spec-deterministic `SubSpec::id`), so re-registration after
    /// a reconnect is harmless.
    Subscribe {
        /// Deterministic subscription id.
        sub_id: u64,
        /// Variable key (epoch-salted).
        var: u64,
        /// Push stride: every `every_k`-th version.
        every_k: u64,
        /// Subscribing execution client.
        subscriber: u32,
        /// Watched-region lower corner, one per dimension.
        lbs: Vec<u64>,
        /// Watched-region upper corner, matching `lbs`.
        ubs: Vec<u64>,
    },
    /// Hub → origin node: the `Subscribe` was broadcast; producers on
    /// every replica now feed the query. Registration rendezvous for
    /// the subscriber task.
    SubAck {
        /// Acknowledged subscription.
        sub_id: u64,
        /// Node the ack is addressed to (the subscriber's node).
        to_node: u32,
    },
    /// Producer → subscriber: one pushed fragment (producer piece ∩
    /// subscription region) of a matching version. Deliberately NOT
    /// data plane (it must not count toward the pull routing gates)
    /// and NOT wire-fault-eligible: the chaos `sub-push` site fires in
    /// the shared put path before the transport split, so a seed drops
    /// the same fragments whether or not a wire is involved.
    SubPush {
        /// Target subscription.
        sub_id: u64,
        /// Variable key (epoch-salted).
        var: u64,
        /// Pushed version.
        version: u64,
        /// Producing client.
        src: u32,
        /// Subscribing client (routing key: `subscriber / cores_per_node`).
        subscriber: u32,
        /// Fragment lower corner, one per dimension.
        lbs: Vec<u64>,
        /// Fragment upper corner, matching `lbs`.
        ubs: Vec<u64>,
        /// Fragment payload (f64 cells, little-endian bytes).
        data: Vec<u8>,
    },
    /// Joiner → hub (control plane): tear down a standing query on
    /// every replica. Broadcast to all nodes except the origin.
    SubCancel {
        /// Subscription to cancel.
        sub_id: u64,
    },
    /// Joiner → hub (diagnostics): the subscriber's bounded queue
    /// dropped `version`. The hub only counts these — gap healing is
    /// the subscriber's resync `get`, which needs no frame.
    SubLagged {
        /// Lagging subscription.
        sub_id: u64,
        /// Version lost to the bounded queue.
        version: u64,
        /// Subscribing client.
        subscriber: u32,
    },
}

const KIND_HELLO: u8 = 1;
const KIND_WELCOME: u8 = 2;
const KIND_RELAY: u8 = 3;
const KIND_PUT_NOTIFY: u8 = 4;
const KIND_PULL_REQUEST: u8 = 5;
/// The pull-data kind byte, exposed so fault gating and tests can name
/// the data-plane frame without decoding.
pub const KIND_PULL_DATA: u8 = 6;
const KIND_PULL_NACK: u8 = 7;
const KIND_DHT_INSERT: u8 = 8;
const KIND_GET_DONE: u8 = 9;
const KIND_EVICT: u8 = 10;
const KIND_RUN_WAVE: u8 = 11;
const KIND_BARRIER: u8 = 12;
const KIND_REPORT: u8 = 13;
const KIND_SHUTDOWN: u8 = 14;
const KIND_SUBMIT: u8 = 15;
const KIND_SUBMITTED: u8 = 16;
const KIND_CANCEL: u8 = 17;
const KIND_STATUS: u8 = 18;
const KIND_LIST_RUNS: u8 = 19;
const KIND_RUN_STATUS: u8 = 20;
const KIND_RUN_LIST: u8 = 21;
const KIND_RUN_RESULT: u8 = 22;
const KIND_RUN_REPORT: u8 = 23;
const KIND_RPC_ERR: u8 = 24;
/// The telemetry-batch kind byte, exposed so the chaos plan's
/// `net-telemetry` fault site can classify frames without decoding.
pub const KIND_TELEMETRY: u8 = 25;
const KIND_TELEMETRY_ACK: u8 = 26;
const KIND_WATCH: u8 = 27;
const KIND_PROGRESS: u8 = 28;
const KIND_SHM_OFFER: u8 = 29;
const KIND_SHM_ACK: u8 = 30;
const KIND_SHM_DOORBELL: u8 = 31;
const KIND_SUBSCRIBE: u8 = 32;
const KIND_SUB_ACK: u8 = 33;
/// The standing-query push kind byte, exposed so routing counters and
/// tests can name the frame without decoding.
pub const KIND_SUB_PUSH: u8 = 34;
const KIND_SUB_CANCEL: u8 = 35;
const KIND_SUB_LAGGED: u8 = 36;

impl Frame {
    /// The kind byte this frame encodes with.
    pub fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => KIND_HELLO,
            Frame::Welcome { .. } => KIND_WELCOME,
            Frame::Relay { .. } => KIND_RELAY,
            Frame::PutNotify { .. } => KIND_PUT_NOTIFY,
            Frame::PullRequest { .. } => KIND_PULL_REQUEST,
            Frame::PullData { .. } => KIND_PULL_DATA,
            Frame::PullNack { .. } => KIND_PULL_NACK,
            Frame::DhtInsert { .. } => KIND_DHT_INSERT,
            Frame::GetDone { .. } => KIND_GET_DONE,
            Frame::Evict { .. } => KIND_EVICT,
            Frame::RunWave { .. } => KIND_RUN_WAVE,
            Frame::Barrier { .. } => KIND_BARRIER,
            Frame::Report(_) => KIND_REPORT,
            Frame::Shutdown { .. } => KIND_SHUTDOWN,
            Frame::Submit { .. } => KIND_SUBMIT,
            Frame::Submitted { .. } => KIND_SUBMITTED,
            Frame::Cancel { .. } => KIND_CANCEL,
            Frame::Status { .. } => KIND_STATUS,
            Frame::ListRuns => KIND_LIST_RUNS,
            Frame::RunStatus(_) => KIND_RUN_STATUS,
            Frame::RunList { .. } => KIND_RUN_LIST,
            Frame::RunResult { .. } => KIND_RUN_RESULT,
            Frame::RunReport { .. } => KIND_RUN_REPORT,
            Frame::RpcErr { .. } => KIND_RPC_ERR,
            Frame::Telemetry { .. } => KIND_TELEMETRY,
            Frame::TelemetryAck { .. } => KIND_TELEMETRY_ACK,
            Frame::Watch { .. } => KIND_WATCH,
            Frame::Progress { .. } => KIND_PROGRESS,
            Frame::ShmOffer { .. } => KIND_SHM_OFFER,
            Frame::ShmAck { .. } => KIND_SHM_ACK,
            Frame::ShmDoorbell { .. } => KIND_SHM_DOORBELL,
            Frame::Subscribe { .. } => KIND_SUBSCRIBE,
            Frame::SubAck { .. } => KIND_SUB_ACK,
            Frame::SubPush { .. } => KIND_SUB_PUSH,
            Frame::SubCancel { .. } => KIND_SUB_CANCEL,
            Frame::SubLagged { .. } => KIND_SUB_LAGGED,
        }
    }

    /// Whether this frame is data plane (a bulk `PullData` payload).
    /// Feeds the `net.pull_hub`/`net.pull_p2p` routing counters and the
    /// p2p acceptance gate; telemetry is deliberately excluded so the
    /// observability plane cannot perturb those gates.
    pub fn is_data_plane(&self) -> bool {
        matches!(self, Frame::PullData { .. })
    }

    /// Whether this frame may be offered to `net.send`/`net.recv` fault
    /// injection: the data plane (`PullData`) and the telemetry plane
    /// (`Telemetry`). Dropping other control frames would model an
    /// unreliable management server, which the system does not have.
    pub fn fault_eligible(&self) -> bool {
        matches!(self, Frame::PullData { .. } | Frame::Telemetry { .. })
    }

    /// The `(a, b)` identity of this frame's chaos fault site: the
    /// buffer name and packed piece for pull data, the node and batch
    /// for telemetry, zeros otherwise.
    pub fn fault_ids(&self) -> (u64, u64) {
        match self {
            Frame::PullData { name, piece, .. } => (*name, *piece),
            Frame::Telemetry { node, batch, .. } => (*node as u64, *batch as u64),
            _ => (0, 0),
        }
    }

    /// Encode to a complete wire frame (length word included).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Frame::Hello {
                node,
                peer_addr,
                host,
            } => {
                put_u32(&mut p, *node);
                put_str(&mut p, peer_addr);
                put_str(&mut p, host);
            }
            Frame::Welcome {
                nodes,
                strategy,
                get_timeout_ms,
                dag,
                config,
                run_epoch,
                peers,
                hosts,
            } => {
                put_u32(&mut p, *nodes);
                put_str(&mut p, strategy);
                put_u64(&mut p, *get_timeout_ms);
                put_str(&mut p, dag);
                put_str(&mut p, config);
                put_u64(&mut p, *run_epoch);
                put_strs(&mut p, peers);
                put_strs(&mut p, hosts);
            }
            Frame::Relay {
                to,
                src,
                tag,
                payload,
            } => {
                put_u32(&mut p, *to);
                put_u32(&mut p, *src);
                put_u64(&mut p, *tag);
                put_bytes(&mut p, payload);
            }
            Frame::PutNotify {
                name,
                version,
                piece,
                owner,
                bytes,
            } => {
                put_u64(&mut p, *name);
                put_u64(&mut p, *version);
                put_u64(&mut p, *piece);
                put_u32(&mut p, *owner);
                put_u64(&mut p, *bytes);
            }
            Frame::PullRequest {
                name,
                version,
                piece,
                from_node,
            } => {
                put_u64(&mut p, *name);
                put_u64(&mut p, *version);
                put_u64(&mut p, *piece);
                put_u32(&mut p, *from_node);
            }
            Frame::PullData {
                name,
                version,
                piece,
                owner,
                to_node,
                data,
            } => {
                put_u64(&mut p, *name);
                put_u64(&mut p, *version);
                put_u64(&mut p, *piece);
                put_u32(&mut p, *owner);
                put_u32(&mut p, *to_node);
                put_bytes(&mut p, data);
            }
            Frame::PullNack {
                name,
                version,
                piece,
                to_node,
            } => {
                put_u64(&mut p, *name);
                put_u64(&mut p, *version);
                put_u64(&mut p, *piece);
                put_u32(&mut p, *to_node);
            }
            Frame::DhtInsert {
                var,
                version,
                owner,
                piece,
                lbs,
                ubs,
            } => {
                put_u64(&mut p, *var);
                put_u64(&mut p, *version);
                put_u32(&mut p, *owner);
                put_u64(&mut p, *piece);
                put_u64s(&mut p, lbs);
                put_u64s(&mut p, ubs);
            }
            Frame::GetDone { var, version } | Frame::Evict { var, version } => {
                put_u64(&mut p, *var);
                put_u64(&mut p, *version);
            }
            Frame::RunWave { wave } => put_u32(&mut p, *wave),
            Frame::Barrier { wave, node } => {
                put_u32(&mut p, *wave);
                put_u32(&mut p, *node);
            }
            Frame::Report(r) => {
                put_u32(&mut p, r.node);
                for cell in r.ledger.shm_cells() {
                    put_u64(&mut p, cell);
                }
                for cell in r.ledger.net_cells() {
                    put_u64(&mut p, cell);
                }
                let entries: Vec<_> = r.ledger.per_app().collect();
                put_u32(&mut p, entries.len() as u32);
                for (app, class, loc, bytes) in entries {
                    put_u32(&mut p, app);
                    p.push(class.idx() as u8);
                    p.push(loc.idx() as u8);
                    put_u64(&mut p, bytes);
                }
                put_u64(&mut p, r.verify_failures);
                put_u64(&mut p, r.staged);
                put_u64(&mut p, r.gets);
                put_u32(&mut p, r.errors.len() as u32);
                for e in &r.errors {
                    put_str(&mut p, e);
                }
            }
            Frame::Shutdown { ok, reason } => {
                p.push(*ok as u8);
                put_str(&mut p, reason);
            }
            Frame::Submit {
                name,
                dag,
                config,
                strategy,
                get_timeout_ms,
                priority,
            } => {
                put_str(&mut p, name);
                put_str(&mut p, dag);
                put_str(&mut p, config);
                put_str(&mut p, strategy);
                put_u64(&mut p, *get_timeout_ms);
                put_u32(&mut p, *priority);
            }
            Frame::Submitted { run, queued_ahead } => {
                put_u64(&mut p, *run);
                put_u32(&mut p, *queued_ahead);
            }
            Frame::Cancel { run } | Frame::Status { run } | Frame::RunResult { run } => {
                put_u64(&mut p, *run);
            }
            Frame::ListRuns => {}
            Frame::RunStatus(s) => put_run_summary(&mut p, s),
            Frame::RunList { runs } => {
                put_u32(&mut p, runs.len() as u32);
                for s in runs {
                    put_run_summary(&mut p, s);
                }
            }
            Frame::RunReport {
                run,
                state,
                ledger_json,
                metrics_json,
                profile_json,
                errors,
            } => {
                put_u64(&mut p, *run);
                p.push(state.idx());
                put_str(&mut p, ledger_json);
                put_str(&mut p, metrics_json);
                put_str(&mut p, profile_json);
                put_u32(&mut p, errors.len() as u32);
                for e in errors {
                    put_str(&mut p, e);
                }
            }
            Frame::RpcErr { message } => put_str(&mut p, message),
            Frame::Telemetry {
                node,
                batch,
                last,
                dropped_events,
                dropped_spans,
                counters,
                events,
            } => {
                put_u32(&mut p, *node);
                put_u32(&mut p, *batch);
                p.push(*last as u8);
                put_u64(&mut p, *dropped_events);
                put_u64(&mut p, *dropped_spans);
                put_u32(&mut p, counters.len() as u32);
                for (name, value) in counters {
                    put_str(&mut p, name);
                    put_u64(&mut p, *value);
                }
                put_u32(&mut p, events.len() as u32);
                for e in events {
                    put_event(&mut p, e);
                }
            }
            Frame::TelemetryAck { node, batch } => {
                put_u32(&mut p, *node);
                put_u32(&mut p, *batch);
            }
            Frame::Watch {
                run,
                interval_ms,
                once,
            } => {
                put_u64(&mut p, *run);
                put_u64(&mut p, *interval_ms);
                p.push(*once as u8);
            }
            Frame::Progress {
                run,
                state,
                done,
                wave,
                waves,
                pulls,
                pull_bytes,
                shm_wait_p50_us,
                shm_wait_p99_us,
                rdma_wait_p50_us,
                rdma_wait_p99_us,
                pulls_in_flight,
                bytes_in_flight,
                queue_depth,
                sub_active,
                sub_pushes,
                sub_lagged,
                link_stalls,
                health,
            } => {
                put_u64(&mut p, *run);
                p.push(state.idx());
                p.push(*done as u8);
                put_u32(&mut p, *wave);
                put_u32(&mut p, *waves);
                put_u64(&mut p, *pulls);
                put_u64(&mut p, *pull_bytes);
                put_u64(&mut p, *shm_wait_p50_us);
                put_u64(&mut p, *shm_wait_p99_us);
                put_u64(&mut p, *rdma_wait_p50_us);
                put_u64(&mut p, *rdma_wait_p99_us);
                put_u64(&mut p, *pulls_in_flight);
                put_u64(&mut p, *bytes_in_flight);
                put_u64(&mut p, *queue_depth);
                put_u64(&mut p, *sub_active);
                put_u64(&mut p, *sub_pushes);
                put_u64(&mut p, *sub_lagged);
                put_u64(&mut p, *link_stalls);
                put_strs(&mut p, health);
            }
            Frame::ShmOffer {
                src_node,
                dst_node,
                segment,
                path,
                slots,
                arena_bytes,
            } => {
                put_u32(&mut p, *src_node);
                put_u32(&mut p, *dst_node);
                put_u64(&mut p, *segment);
                put_str(&mut p, path);
                put_u64(&mut p, *slots);
                put_u64(&mut p, *arena_bytes);
            }
            Frame::ShmAck {
                src_node,
                dst_node,
                segment,
                seq,
                attached,
            } => {
                put_u32(&mut p, *src_node);
                put_u32(&mut p, *dst_node);
                put_u64(&mut p, *segment);
                put_u64(&mut p, *seq);
                p.push(*attached as u8);
            }
            Frame::ShmDoorbell {
                src_node,
                dst_node,
                segment,
                seq,
            } => {
                put_u32(&mut p, *src_node);
                put_u32(&mut p, *dst_node);
                put_u64(&mut p, *segment);
                put_u64(&mut p, *seq);
            }
            Frame::Subscribe {
                sub_id,
                var,
                every_k,
                subscriber,
                lbs,
                ubs,
            } => {
                put_u64(&mut p, *sub_id);
                put_u64(&mut p, *var);
                put_u64(&mut p, *every_k);
                put_u32(&mut p, *subscriber);
                put_u64s(&mut p, lbs);
                put_u64s(&mut p, ubs);
            }
            Frame::SubAck { sub_id, to_node } => {
                put_u64(&mut p, *sub_id);
                put_u32(&mut p, *to_node);
            }
            Frame::SubPush {
                sub_id,
                var,
                version,
                src,
                subscriber,
                lbs,
                ubs,
                data,
            } => {
                put_u64(&mut p, *sub_id);
                put_u64(&mut p, *var);
                put_u64(&mut p, *version);
                put_u32(&mut p, *src);
                put_u32(&mut p, *subscriber);
                put_u64s(&mut p, lbs);
                put_u64s(&mut p, ubs);
                put_bytes(&mut p, data);
            }
            Frame::SubCancel { sub_id } => put_u64(&mut p, *sub_id),
            Frame::SubLagged {
                sub_id,
                version,
                subscriber,
            } => {
                put_u64(&mut p, *sub_id);
                put_u64(&mut p, *version);
                put_u32(&mut p, *subscriber);
            }
        }
        let mut out = Vec::with_capacity(6 + p.len());
        put_u32(&mut out, 2 + p.len() as u32);
        out.push(WIRE_VERSION);
        out.push(self.kind());
        out.extend_from_slice(&p);
        out
    }

    /// Decode one frame body (`version`, `kind` and `payload` — the
    /// bytes after the length word). Rejects trailing payload bytes.
    pub fn decode(version: u8, kind: u8, payload: &[u8]) -> Result<Frame, FrameError> {
        if version != WIRE_VERSION {
            return Err(FrameError::BadVersion(version));
        }
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        let frame = match kind {
            KIND_HELLO => Frame::Hello {
                node: c.u32()?,
                peer_addr: c.str()?,
                host: c.str()?,
            },
            KIND_WELCOME => Frame::Welcome {
                nodes: c.u32()?,
                strategy: c.str()?,
                get_timeout_ms: c.u64()?,
                dag: c.str()?,
                config: c.str()?,
                run_epoch: c.u64()?,
                peers: c.strs()?,
                hosts: c.strs()?,
            },
            KIND_RELAY => Frame::Relay {
                to: c.u32()?,
                src: c.u32()?,
                tag: c.u64()?,
                payload: c.bytes()?,
            },
            KIND_PUT_NOTIFY => Frame::PutNotify {
                name: c.u64()?,
                version: c.u64()?,
                piece: c.u64()?,
                owner: c.u32()?,
                bytes: c.u64()?,
            },
            KIND_PULL_REQUEST => Frame::PullRequest {
                name: c.u64()?,
                version: c.u64()?,
                piece: c.u64()?,
                from_node: c.u32()?,
            },
            KIND_PULL_DATA => Frame::PullData {
                name: c.u64()?,
                version: c.u64()?,
                piece: c.u64()?,
                owner: c.u32()?,
                to_node: c.u32()?,
                data: c.bytes()?,
            },
            KIND_PULL_NACK => Frame::PullNack {
                name: c.u64()?,
                version: c.u64()?,
                piece: c.u64()?,
                to_node: c.u32()?,
            },
            KIND_DHT_INSERT => Frame::DhtInsert {
                var: c.u64()?,
                version: c.u64()?,
                owner: c.u32()?,
                piece: c.u64()?,
                lbs: c.u64s()?,
                ubs: c.u64s()?,
            },
            KIND_GET_DONE => Frame::GetDone {
                var: c.u64()?,
                version: c.u64()?,
            },
            KIND_EVICT => Frame::Evict {
                var: c.u64()?,
                version: c.u64()?,
            },
            KIND_RUN_WAVE => Frame::RunWave { wave: c.u32()? },
            KIND_BARRIER => Frame::Barrier {
                wave: c.u32()?,
                node: c.u32()?,
            },
            KIND_REPORT => {
                let node = c.u32()?;
                let shm = [c.u64()?, c.u64()?, c.u64()?, c.u64()?];
                let net = [c.u64()?, c.u64()?, c.u64()?, c.u64()?];
                let n = c.u32()? as usize;
                let mut per_app = Vec::new();
                for _ in 0..n {
                    let app = c.u32()?;
                    let class = TrafficClass::from_idx(c.u8()? as usize)
                        .ok_or(FrameError::BadPayload("traffic class index"))?;
                    let loc = Locality::from_idx(c.u8()? as usize)
                        .ok_or(FrameError::BadPayload("locality index"))?;
                    per_app.push((app, class, loc, c.u64()?));
                }
                let verify_failures = c.u64()?;
                let staged = c.u64()?;
                let gets = c.u64()?;
                let n_err = c.u32()? as usize;
                let mut errors = Vec::new();
                for _ in 0..n_err {
                    errors.push(c.str()?);
                }
                Frame::Report(NodeReport {
                    node,
                    ledger: LedgerSnapshot::from_parts(shm, net, per_app),
                    verify_failures,
                    staged,
                    gets,
                    errors,
                })
            }
            KIND_SHUTDOWN => Frame::Shutdown {
                ok: match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::BadPayload("bool")),
                },
                reason: c.str()?,
            },
            KIND_SUBMIT => Frame::Submit {
                name: c.str()?,
                dag: c.str()?,
                config: c.str()?,
                strategy: c.str()?,
                get_timeout_ms: c.u64()?,
                priority: c.u32()?,
            },
            KIND_SUBMITTED => Frame::Submitted {
                run: c.u64()?,
                queued_ahead: c.u32()?,
            },
            KIND_CANCEL => Frame::Cancel { run: c.u64()? },
            KIND_STATUS => Frame::Status { run: c.u64()? },
            KIND_LIST_RUNS => Frame::ListRuns,
            KIND_RUN_STATUS => Frame::RunStatus(c.run_summary()?),
            KIND_RUN_LIST => {
                let n = c.u32()? as usize;
                // A RunSummary occupies at least 33 bytes (run + two
                // length words + state + nodes + link_stalls + the
                // health count); guard the count before allocating so a
                // hostile count cannot OOM.
                if c.buf.len() - c.pos < n.saturating_mul(33) {
                    return Err(FrameError::Truncated);
                }
                let mut runs = Vec::with_capacity(n);
                for _ in 0..n {
                    runs.push(c.run_summary()?);
                }
                Frame::RunList { runs }
            }
            KIND_RUN_RESULT => Frame::RunResult { run: c.u64()? },
            KIND_RUN_REPORT => {
                let run = c.u64()?;
                let state =
                    RunState::from_idx(c.u8()?).ok_or(FrameError::BadPayload("run state index"))?;
                let ledger_json = c.str()?;
                let metrics_json = c.str()?;
                let profile_json = c.str()?;
                let n = c.u32()? as usize;
                let mut errors = Vec::new();
                for _ in 0..n {
                    errors.push(c.str()?);
                }
                Frame::RunReport {
                    run,
                    state,
                    ledger_json,
                    metrics_json,
                    profile_json,
                    errors,
                }
            }
            KIND_RPC_ERR => Frame::RpcErr { message: c.str()? },
            KIND_TELEMETRY => {
                let node = c.u32()?;
                let batch = c.u32()?;
                let last = match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::BadPayload("bool")),
                };
                let dropped_events = c.u64()?;
                let dropped_spans = c.u64()?;
                let n = c.u32()? as usize;
                // Every counter costs at least its name length word
                // plus the u64 value; guard before allocating.
                if c.buf.len() - c.pos < n.saturating_mul(12) {
                    return Err(FrameError::Truncated);
                }
                let mut counters = Vec::with_capacity(n);
                for _ in 0..n {
                    let name = c.str()?;
                    counters.push((name, c.u64()?));
                }
                let n = c.u32()? as usize;
                // A wire event occupies at least EVENT_WIRE_MIN bytes;
                // a hostile count must not OOM.
                if c.buf.len() - c.pos < n.saturating_mul(EVENT_WIRE_MIN) {
                    return Err(FrameError::Truncated);
                }
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    events.push(c.event()?);
                }
                Frame::Telemetry {
                    node,
                    batch,
                    last,
                    dropped_events,
                    dropped_spans,
                    counters,
                    events,
                }
            }
            KIND_TELEMETRY_ACK => Frame::TelemetryAck {
                node: c.u32()?,
                batch: c.u32()?,
            },
            KIND_WATCH => Frame::Watch {
                run: c.u64()?,
                interval_ms: c.u64()?,
                once: match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::BadPayload("bool")),
                },
            },
            KIND_PROGRESS => Frame::Progress {
                run: c.u64()?,
                state: RunState::from_idx(c.u8()?)
                    .ok_or(FrameError::BadPayload("run state index"))?,
                done: match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::BadPayload("bool")),
                },
                wave: c.u32()?,
                waves: c.u32()?,
                pulls: c.u64()?,
                pull_bytes: c.u64()?,
                shm_wait_p50_us: c.u64()?,
                shm_wait_p99_us: c.u64()?,
                rdma_wait_p50_us: c.u64()?,
                rdma_wait_p99_us: c.u64()?,
                pulls_in_flight: c.u64()?,
                bytes_in_flight: c.u64()?,
                queue_depth: c.u64()?,
                sub_active: c.u64()?,
                sub_pushes: c.u64()?,
                sub_lagged: c.u64()?,
                link_stalls: c.u64()?,
                health: c.strs()?,
            },
            KIND_SHM_OFFER => Frame::ShmOffer {
                src_node: c.u32()?,
                dst_node: c.u32()?,
                segment: c.u64()?,
                path: c.str()?,
                slots: c.u64()?,
                arena_bytes: c.u64()?,
            },
            KIND_SHM_ACK => Frame::ShmAck {
                src_node: c.u32()?,
                dst_node: c.u32()?,
                segment: c.u64()?,
                seq: c.u64()?,
                attached: match c.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(FrameError::BadPayload("bool")),
                },
            },
            KIND_SHM_DOORBELL => Frame::ShmDoorbell {
                src_node: c.u32()?,
                dst_node: c.u32()?,
                segment: c.u64()?,
                seq: c.u64()?,
            },
            KIND_SUBSCRIBE => Frame::Subscribe {
                sub_id: c.u64()?,
                var: c.u64()?,
                every_k: c.u64()?,
                subscriber: c.u32()?,
                lbs: c.u64s()?,
                ubs: c.u64s()?,
            },
            KIND_SUB_ACK => Frame::SubAck {
                sub_id: c.u64()?,
                to_node: c.u32()?,
            },
            KIND_SUB_PUSH => Frame::SubPush {
                sub_id: c.u64()?,
                var: c.u64()?,
                version: c.u64()?,
                src: c.u32()?,
                subscriber: c.u32()?,
                lbs: c.u64s()?,
                ubs: c.u64s()?,
                data: c.bytes()?,
            },
            KIND_SUB_CANCEL => Frame::SubCancel { sub_id: c.u64()? },
            KIND_SUB_LAGGED => Frame::SubLagged {
                sub_id: c.u64()?,
                version: c.u64()?,
                subscriber: c.u32()?,
            },
            other => return Err(FrameError::BadKind(other)),
        };
        if c.pos != payload.len() {
            return Err(FrameError::BadPayload("trailing bytes"));
        }
        Ok(frame)
    }

    /// Read one complete frame from a blocking stream.
    ///
    /// Stream errors map to [`FrameError::Io`]; a clean EOF *before* the
    /// length word also maps to `Io` (connection closed). Malformed
    /// content is rejected with the corresponding decode error.
    pub fn read_from(r: &mut impl Read) -> Result<Frame, FrameError> {
        let mut lenb = [0u8; 4];
        read_exact(r, &mut lenb)?;
        let len = u32::from_le_bytes(lenb);
        if !(2..=MAX_FRAME_LEN).contains(&len) {
            return Err(FrameError::BadLength(len));
        }
        let mut body = vec![0u8; len as usize];
        read_exact(r, &mut body)?;
        Frame::decode(body[0], body[1], &body[2..])
    }

    /// Write the encoded frame to a blocking stream.
    pub fn write_to(&self, w: &mut impl Write) -> Result<usize, FrameError> {
        let bytes = self.encode();
        w.write_all(&bytes)
            .and_then(|_| w.flush())
            .map_err(|e| FrameError::Io(e.to_string()))?;
        Ok(bytes.len())
    }
}

/// Encode a batch of frames into one contiguous byte run (each frame
/// complete with its own length word). This is the reactor's small-
/// message coalescing primitive: a batch crosses the socket in one
/// `write` syscall, and any split of the byte run — including splits
/// inside a frame — decodes back to the identical sequence through
/// [`FrameDecoder`].
pub fn encode_batch(frames: &[Frame]) -> Vec<u8> {
    let mut out = Vec::new();
    for f in frames {
        out.extend_from_slice(&f.encode());
    }
    out
}

/// Incremental frame decoder over an arbitrarily-chunked byte stream.
///
/// The reactor reads whatever the socket has buffered — which may end
/// mid-frame, or hold several coalesced frames — feeds it in with
/// [`push`](FrameDecoder::push), and drains complete frames with
/// [`next_frame`](FrameDecoder::next_frame). Decoding is total: malformed input
/// surfaces as a [`FrameError`] exactly as [`Frame::read_from`] would
/// report it, after which the connection is poisoned (every subsequent
/// `next` repeats the error) — a protocol error leaves no way to
/// re-synchronise the stream.
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    pos: usize,
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// A decoder with an empty buffer.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Append freshly-read bytes to the pending buffer.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: drop the prefix already consumed by
        // decoded frames so the buffer stays bounded by one frame plus
        // one socket read.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Decode the next complete frame, `Ok(None)` when more bytes are
    /// needed, or the (sticky) protocol error.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        let rest = &self.buf[self.pos..];
        if rest.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        if !(2..=MAX_FRAME_LEN).contains(&len) {
            return Err(self.poison(FrameError::BadLength(len)));
        }
        let total = 4 + len as usize;
        if rest.len() < total {
            return Ok(None);
        }
        let body = &rest[4..total];
        match Frame::decode(body[0], body[1], &body[2..]) {
            Ok(frame) => {
                self.pos += total;
                Ok(Some(frame))
            }
            Err(e) => Err(self.poison(e)),
        }
    }

    fn poison(&mut self, err: FrameError) -> FrameError {
        self.poisoned = Some(err.clone());
        err
    }
}

fn read_exact(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    r.read_exact(buf).map_err(|e| match e.kind() {
        std::io::ErrorKind::UnexpectedEof => FrameError::Truncated,
        _ => FrameError::Io(e.to_string()),
    })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u32(out, v.len() as u32);
    out.extend_from_slice(v);
}

fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

fn put_u64s(out: &mut Vec<u8>, v: &[u64]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u64(out, x);
    }
}

fn put_strs(out: &mut Vec<u8>, v: &[String]) {
    put_u32(out, v.len() as u32);
    for s in v {
        put_str(out, s);
    }
}

fn put_run_summary(out: &mut Vec<u8>, s: &RunSummary) {
    put_u64(out, s.run);
    put_str(out, &s.name);
    out.push(s.state.idx());
    put_u32(out, s.nodes);
    put_str(out, &s.detail);
    put_u64(out, s.link_stalls);
    put_strs(out, &s.health);
}

/// Fixed cost of one wire event: seq (8) + parent (8) + kind (1) +
/// app (4) + var (8) + version (8) + bbox flag (1) + src flag (1) +
/// dst flag (1) + link (1) + piece (8) + bytes (8) + start (8) +
/// duration (8) + pid (4). Kind arguments only add to it. Used to
/// guard hostile event counts before allocation.
const EVENT_WIRE_MIN: usize = 77;

/// Event kind wire bytes (indexes into the `EventKind` shapes; kinds
/// with an argument encode it right after the byte).
const EK_PUT_CONT: u8 = 0;
const EK_PUT_SEQ: u8 = 1;
const EK_GET_SEQ: u8 = 2;
const EK_GET_CONT: u8 = 3;
const EK_SCHED_MISS: u8 = 4;
const EK_SCHED_HIT: u8 = 5;
const EK_DHT_LOOKUP: u8 = 6;
const EK_PULL: u8 = 7;
const EK_FAULT: u8 = 8;
const EK_NET_SEND: u8 = 9;
const EK_NET_RECV: u8 = 10;
const EK_SUB_PUSH: u8 = 11;
const EK_SUB_DELIVER: u8 = 12;

/// Map a fault slug read off the wire back to the `&'static str` the
/// event schema carries. Slugs name the chaos fault kinds; an unknown
/// slug (a newer peer's kind) degrades to the generic `"fault"`.
fn intern_fault_slug(slug: &str) -> &'static str {
    match slug {
        "dead-producer" => "dead-producer",
        "drop-pull" => "drop-pull",
        "delay-pull" => "delay-pull",
        "dht-blackout" => "dht-blackout",
        "stage-full" => "stage-full",
        "link-slow" => "link-slow",
        "net-connect" => "net-connect",
        "net-send" => "net-send",
        "net-recv" => "net-recv",
        "net-telemetry" => "net-telemetry",
        "shm-attach" => "shm-attach",
        "sub-push" => "sub-push",
        _ => "fault",
    }
}

fn put_event(out: &mut Vec<u8>, e: &Event) {
    put_u64(out, e.seq);
    put_u64(out, e.parent.unwrap_or(0)); // seqs are 1-based; 0 = none
    match e.kind {
        EventKind::Put { indexed: false } => out.push(EK_PUT_CONT),
        EventKind::Put { indexed: true } => out.push(EK_PUT_SEQ),
        EventKind::Get { cont: false } => out.push(EK_GET_SEQ),
        EventKind::Get { cont: true } => out.push(EK_GET_CONT),
        EventKind::Schedule { hit: false } => out.push(EK_SCHED_MISS),
        EventKind::Schedule { hit: true } => out.push(EK_SCHED_HIT),
        EventKind::DhtLookup { cores } => {
            out.push(EK_DHT_LOOKUP);
            put_u32(out, cores);
        }
        EventKind::Pull { wait_us } => {
            out.push(EK_PULL);
            put_u64(out, wait_us);
        }
        EventKind::Fault { kind } => {
            out.push(EK_FAULT);
            put_str(out, kind);
        }
        EventKind::NetSend => out.push(EK_NET_SEND),
        EventKind::NetRecv => out.push(EK_NET_RECV),
        EventKind::SubPush => out.push(EK_SUB_PUSH),
        EventKind::SubDeliver => out.push(EK_SUB_DELIVER),
    }
    put_u32(out, e.app);
    put_u64(out, e.var);
    put_u64(out, e.version);
    match &e.bbox {
        Some(bb) => {
            out.push(1);
            let lbs: Vec<u64> = (0..bb.ndim()).map(|d| bb.lb(d)).collect();
            let ubs: Vec<u64> = (0..bb.ndim()).map(|d| bb.ub(d)).collect();
            put_u64s(out, &lbs);
            put_u64s(out, &ubs);
        }
        None => out.push(0),
    }
    match e.src {
        Some(src) => {
            out.push(1);
            put_u32(out, src);
        }
        None => out.push(0),
    }
    match e.dst {
        Some(dst) => {
            out.push(1);
            put_u32(out, dst);
        }
        None => out.push(0),
    }
    out.push(match e.link {
        None => 0,
        Some(LinkClass::Shm) => 1,
        Some(LinkClass::Rdma) => 2,
    });
    put_u64(out, e.piece);
    put_u64(out, e.bytes);
    put_u64(out, e.start_us);
    put_u64(out, e.duration_us);
    put_u32(out, e.pid);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], FrameError> {
        if self.buf.len() - self.pos < n {
            return Err(FrameError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> Result<Vec<u8>, FrameError> {
        let n = self.u32()? as usize;
        Ok(self.take(n)?.to_vec())
    }

    fn str(&mut self) -> Result<String, FrameError> {
        String::from_utf8(self.bytes()?).map_err(|_| FrameError::BadPayload("utf-8"))
    }

    fn run_summary(&mut self) -> Result<RunSummary, FrameError> {
        Ok(RunSummary {
            run: self.u64()?,
            name: self.str()?,
            state: RunState::from_idx(self.u8()?)
                .ok_or(FrameError::BadPayload("run state index"))?,
            nodes: self.u32()?,
            detail: self.str()?,
            link_stalls: self.u64()?,
            health: self.strs()?,
        })
    }

    fn event(&mut self) -> Result<Event, FrameError> {
        let seq = self.u64()?;
        let parent = self.u64()?;
        let kind = match self.u8()? {
            EK_PUT_CONT => EventKind::Put { indexed: false },
            EK_PUT_SEQ => EventKind::Put { indexed: true },
            EK_GET_SEQ => EventKind::Get { cont: false },
            EK_GET_CONT => EventKind::Get { cont: true },
            EK_SCHED_MISS => EventKind::Schedule { hit: false },
            EK_SCHED_HIT => EventKind::Schedule { hit: true },
            EK_DHT_LOOKUP => EventKind::DhtLookup { cores: self.u32()? },
            EK_PULL => EventKind::Pull {
                wait_us: self.u64()?,
            },
            EK_FAULT => EventKind::Fault {
                kind: intern_fault_slug(&self.str()?),
            },
            EK_NET_SEND => EventKind::NetSend,
            EK_NET_RECV => EventKind::NetRecv,
            EK_SUB_PUSH => EventKind::SubPush,
            EK_SUB_DELIVER => EventKind::SubDeliver,
            _ => return Err(FrameError::BadPayload("event kind index")),
        };
        let mut e = Event::new(seq, kind);
        if parent != 0 {
            e.parent = Some(parent);
        }
        e.app = self.u32()?;
        e.var = self.u64()?;
        e.version = self.u64()?;
        e.bbox = match self.u8()? {
            0 => None,
            1 => {
                let lbs = self.u64s()?;
                let ubs = self.u64s()?;
                // BoundingBox::new panics on invalid corners; the codec
                // must stay total, so validate the wire shape first.
                if lbs.is_empty()
                    || lbs.len() != ubs.len()
                    || lbs.len() > insitu_domain::MAX_DIMS
                    || lbs.iter().zip(&ubs).any(|(l, u)| l > u)
                {
                    return Err(FrameError::BadPayload("bbox corners"));
                }
                Some(insitu_domain::BoundingBox::new(&lbs, &ubs))
            }
            _ => return Err(FrameError::BadPayload("bool")),
        };
        e.src = match self.u8()? {
            0 => None,
            1 => Some(self.u32()?),
            _ => return Err(FrameError::BadPayload("bool")),
        };
        e.dst = match self.u8()? {
            0 => None,
            1 => Some(self.u32()?),
            _ => return Err(FrameError::BadPayload("bool")),
        };
        e.link = match self.u8()? {
            0 => None,
            1 => Some(LinkClass::Shm),
            2 => Some(LinkClass::Rdma),
            _ => return Err(FrameError::BadPayload("link class index")),
        };
        e.piece = self.u64()?;
        e.bytes = self.u64()?;
        e.start_us = self.u64()?;
        e.duration_us = self.u64()?;
        e.pid = self.u32()?;
        Ok(e)
    }

    fn u64s(&mut self) -> Result<Vec<u64>, FrameError> {
        let n = self.u32()? as usize;
        // Guard the element count against the remaining payload before
        // allocating (a hostile count of u32::MAX must not OOM).
        if self.buf.len() - self.pos < n.saturating_mul(8) {
            return Err(FrameError::Truncated);
        }
        (0..n).map(|_| self.u64()).collect()
    }

    fn strs(&mut self) -> Result<Vec<String>, FrameError> {
        let n = self.u32()? as usize;
        // Every string costs at least its 4-byte length word; guard the
        // count before allocating.
        if self.buf.len() - self.pos < n.saturating_mul(4) {
            return Err(FrameError::Truncated);
        }
        (0..n).map(|_| self.str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insitu_util::check::forall;
    use insitu_util::rng::SplitMix64;

    fn arb_string(rng: &mut SplitMix64, max: usize) -> String {
        let n = rng.range_usize(0, max);
        (0..n)
            .map(|_| char::from_u32(rng.range_u32(32, 0x24F)).unwrap_or('x'))
            .collect()
    }

    fn arb_bytes(rng: &mut SplitMix64, max: usize) -> Vec<u8> {
        let n = rng.range_usize(0, max);
        (0..n).map(|_| rng.next_u64() as u8).collect()
    }

    fn arb_report(rng: &mut SplitMix64) -> NodeReport {
        let n = rng.range_usize(0, 6);
        let per_app: Vec<_> = (0..n)
            .map(|_| {
                (
                    rng.range_u32(0, 8),
                    *rng.choose(&TrafficClass::ALL),
                    *rng.choose(&Locality::ALL),
                    rng.next_u64() >> 8,
                )
            })
            .collect();
        NodeReport {
            node: rng.range_u32(0, 16),
            ledger: LedgerSnapshot::from_parts(
                std::array::from_fn(|_| rng.next_u64() >> 8),
                std::array::from_fn(|_| rng.next_u64() >> 8),
                per_app,
            ),
            verify_failures: rng.range_u64(0, 5),
            staged: rng.next_u64(),
            gets: rng.next_u64(),
            errors: (0..rng.range_usize(0, 3))
                .map(|_| arb_string(rng, 40))
                .collect(),
        }
    }

    /// One random frame of every message type, driven by `rng`.
    fn arb_frames(rng: &mut SplitMix64) -> Vec<Frame> {
        vec![
            Frame::Hello {
                node: rng.range_u32(0, 64),
                peer_addr: arb_string(rng, 24),
                host: arb_string(rng, 36),
            },
            Frame::Welcome {
                nodes: rng.range_u32(1, 64),
                strategy: arb_string(rng, 16),
                get_timeout_ms: rng.next_u64(),
                dag: arb_string(rng, 200),
                config: arb_string(rng, 200),
                run_epoch: rng.next_u64(),
                peers: (0..rng.range_usize(0, 4))
                    .map(|_| arb_string(rng, 24))
                    .collect(),
                hosts: (0..rng.range_usize(0, 4))
                    .map(|_| arb_string(rng, 36))
                    .collect(),
            },
            Frame::Relay {
                to: rng.range_u32(0, 256),
                src: rng.range_u32(0, 256),
                tag: rng.next_u64(),
                payload: arb_bytes(rng, 64),
            },
            Frame::PutNotify {
                name: rng.next_u64(),
                version: rng.next_u64(),
                piece: rng.next_u64(),
                owner: rng.range_u32(0, 256),
                bytes: rng.next_u64(),
            },
            Frame::PullRequest {
                name: rng.next_u64(),
                version: rng.next_u64(),
                piece: rng.next_u64(),
                from_node: rng.range_u32(0, 64),
            },
            Frame::PullData {
                name: rng.next_u64(),
                version: rng.next_u64(),
                piece: rng.next_u64(),
                owner: rng.range_u32(0, 256),
                to_node: rng.range_u32(0, 64),
                data: arb_bytes(rng, 128),
            },
            Frame::PullNack {
                name: rng.next_u64(),
                version: rng.next_u64(),
                piece: rng.next_u64(),
                to_node: rng.range_u32(0, 64),
            },
            Frame::DhtInsert {
                var: rng.next_u64(),
                version: rng.next_u64(),
                owner: rng.range_u32(0, 256),
                piece: rng.next_u64(),
                lbs: (0..rng.range_usize(1, 4)).map(|_| rng.next_u64()).collect(),
                ubs: (0..rng.range_usize(1, 4)).map(|_| rng.next_u64()).collect(),
            },
            Frame::GetDone {
                var: rng.next_u64(),
                version: rng.next_u64(),
            },
            Frame::Evict {
                var: rng.next_u64(),
                version: rng.next_u64(),
            },
            Frame::RunWave {
                wave: rng.range_u32(0, 1024),
            },
            Frame::Barrier {
                wave: rng.range_u32(0, 1024),
                node: rng.range_u32(0, 64),
            },
            Frame::Report(arb_report(rng)),
            Frame::Shutdown {
                ok: rng.bool(),
                reason: arb_string(rng, 60),
            },
            Frame::Submit {
                name: arb_string(rng, 24),
                dag: arb_string(rng, 200),
                config: arb_string(rng, 200),
                strategy: arb_string(rng, 16),
                get_timeout_ms: rng.next_u64(),
                priority: rng.range_u32(0, 8),
            },
            Frame::Submitted {
                run: rng.next_u64(),
                queued_ahead: rng.range_u32(0, 64),
            },
            Frame::Cancel {
                run: rng.next_u64(),
            },
            Frame::Status {
                run: rng.next_u64(),
            },
            Frame::ListRuns,
            Frame::RunStatus(arb_run_summary(rng)),
            Frame::RunList {
                runs: (0..rng.range_usize(0, 5))
                    .map(|_| arb_run_summary(rng))
                    .collect(),
            },
            Frame::RunResult {
                run: rng.next_u64(),
            },
            Frame::RunReport {
                run: rng.next_u64(),
                state: *rng.choose(&RunState::ALL),
                ledger_json: arb_string(rng, 120),
                metrics_json: arb_string(rng, 120),
                profile_json: arb_string(rng, 120),
                errors: (0..rng.range_usize(0, 3))
                    .map(|_| arb_string(rng, 40))
                    .collect(),
            },
            Frame::RpcErr {
                message: arb_string(rng, 60),
            },
            Frame::Telemetry {
                node: rng.range_u32(0, 64),
                batch: rng.range_u32(0, 16),
                last: rng.bool(),
                dropped_events: rng.range_u64(0, 100),
                dropped_spans: rng.range_u64(0, 100),
                counters: (0..rng.range_usize(0, 4))
                    .map(|_| (arb_string(rng, 24), rng.next_u64()))
                    .collect(),
                events: (0..rng.range_usize(0, 6)).map(|_| arb_event(rng)).collect(),
            },
            Frame::TelemetryAck {
                node: rng.range_u32(0, 64),
                batch: rng.range_u32(0, 16),
            },
            Frame::Watch {
                run: rng.next_u64(),
                interval_ms: rng.range_u64(0, 10_000),
                once: rng.bool(),
            },
            Frame::Progress {
                run: rng.next_u64(),
                state: *rng.choose(&RunState::ALL),
                done: rng.bool(),
                wave: rng.range_u32(0, 64),
                waves: rng.range_u32(0, 64),
                pulls: rng.next_u64(),
                pull_bytes: rng.next_u64(),
                shm_wait_p50_us: rng.next_u64(),
                shm_wait_p99_us: rng.next_u64(),
                rdma_wait_p50_us: rng.next_u64(),
                rdma_wait_p99_us: rng.next_u64(),
                pulls_in_flight: rng.range_u64(0, 64),
                bytes_in_flight: rng.next_u64(),
                queue_depth: rng.range_u64(0, 1024),
                sub_active: rng.range_u64(0, 64),
                sub_pushes: rng.next_u64(),
                sub_lagged: rng.range_u64(0, 64),
                link_stalls: rng.range_u64(0, 8),
                health: (0..rng.range_usize(0, 3))
                    .map(|_| arb_string(rng, 40))
                    .collect(),
            },
            Frame::ShmOffer {
                src_node: rng.range_u32(0, 64),
                dst_node: rng.range_u32(0, 64),
                segment: rng.next_u64(),
                path: arb_string(rng, 48),
                slots: rng.range_u64(1, 1 << 16),
                arena_bytes: rng.next_u64(),
            },
            Frame::ShmAck {
                src_node: rng.range_u32(0, 64),
                dst_node: rng.range_u32(0, 64),
                segment: rng.next_u64(),
                seq: rng.next_u64(),
                attached: rng.bool(),
            },
            Frame::ShmDoorbell {
                src_node: rng.range_u32(0, 64),
                dst_node: rng.range_u32(0, 64),
                segment: rng.next_u64(),
                seq: rng.next_u64(),
            },
            Frame::Subscribe {
                sub_id: rng.next_u64(),
                var: rng.next_u64(),
                every_k: rng.range_u64(1, 16),
                subscriber: rng.range_u32(0, 256),
                lbs: (0..rng.range_usize(1, 4)).map(|_| rng.next_u64()).collect(),
                ubs: (0..rng.range_usize(1, 4)).map(|_| rng.next_u64()).collect(),
            },
            Frame::SubAck {
                sub_id: rng.next_u64(),
                to_node: rng.range_u32(0, 64),
            },
            Frame::SubPush {
                sub_id: rng.next_u64(),
                var: rng.next_u64(),
                version: rng.range_u64(0, 1024),
                src: rng.range_u32(0, 256),
                subscriber: rng.range_u32(0, 256),
                lbs: (0..rng.range_usize(1, 4)).map(|_| rng.next_u64()).collect(),
                ubs: (0..rng.range_usize(1, 4)).map(|_| rng.next_u64()).collect(),
                data: arb_bytes(rng, 128),
            },
            Frame::SubCancel {
                sub_id: rng.next_u64(),
            },
            Frame::SubLagged {
                sub_id: rng.next_u64(),
                version: rng.range_u64(0, 1024),
                subscriber: rng.range_u32(0, 256),
            },
        ]
    }

    fn arb_run_summary(rng: &mut SplitMix64) -> RunSummary {
        RunSummary {
            run: rng.next_u64(),
            name: arb_string(rng, 24),
            state: *rng.choose(&RunState::ALL),
            nodes: rng.range_u32(1, 16),
            detail: arb_string(rng, 40),
            link_stalls: rng.range_u64(0, 8),
            health: (0..rng.range_usize(0, 3))
                .map(|_| arb_string(rng, 32))
                .collect(),
        }
    }

    fn arb_event(rng: &mut SplitMix64) -> Event {
        let kind = match rng.range_u32(0, 14) {
            0 => EventKind::Put { indexed: false },
            1 => EventKind::Put { indexed: true },
            2 => EventKind::Get { cont: false },
            3 => EventKind::Get { cont: true },
            4 => EventKind::Schedule { hit: false },
            5 => EventKind::Schedule { hit: true },
            6 => EventKind::DhtLookup {
                cores: rng.range_u32(0, 64),
            },
            7 => EventKind::Pull {
                wait_us: rng.next_u64(),
            },
            8 => EventKind::Fault { kind: "drop-pull" },
            9 => EventKind::Fault {
                kind: "net-telemetry",
            },
            10 => EventKind::NetSend,
            11 => EventKind::NetRecv,
            12 => EventKind::SubPush,
            _ => EventKind::SubDeliver,
        };
        let mut e = Event::new(rng.range_u64(1, 1 << 40), kind);
        if rng.bool() {
            e.parent = Some(rng.range_u64(1, 1 << 40));
        }
        e.app = rng.range_u32(0, 8);
        e.var = rng.next_u64();
        e.version = rng.range_u64(0, 64);
        if rng.bool() {
            let ndim = rng.range_usize(1, insitu_domain::MAX_DIMS + 1);
            let lbs: Vec<u64> = (0..ndim).map(|_| rng.range_u64(0, 100)).collect();
            let ubs: Vec<u64> = lbs.iter().map(|&l| l + rng.range_u64(0, 50)).collect();
            e.bbox = Some(insitu_domain::BoundingBox::new(&lbs, &ubs));
        }
        if rng.bool() {
            e.src = Some(rng.range_u32(0, 256));
        }
        if rng.bool() {
            e.dst = Some(rng.range_u32(0, 256));
        }
        e.link = match rng.range_u32(0, 3) {
            0 => None,
            1 => Some(LinkClass::Shm),
            _ => Some(LinkClass::Rdma),
        };
        e.piece = rng.next_u64();
        e.bytes = rng.next_u64() >> 8;
        e.start_us = rng.next_u64() >> 16;
        e.duration_us = rng.next_u64() >> 16;
        e.pid = rng.range_u32(0, 16);
        e
    }

    #[test]
    fn every_message_type_round_trips() {
        forall(64, |rng| {
            for frame in arb_frames(rng) {
                let wire = frame.encode();
                let len = u32::from_le_bytes(wire[..4].try_into().unwrap());
                assert_eq!(len as usize, wire.len() - 4);
                let decoded = Frame::decode(wire[4], wire[5], &wire[6..]).unwrap();
                assert_eq!(decoded, frame, "round-trip of kind {}", frame.kind());
                // And via the stream reader.
                let mut cursor = std::io::Cursor::new(wire);
                assert_eq!(Frame::read_from(&mut cursor).unwrap(), frame);
            }
        });
    }

    #[test]
    fn truncation_at_every_boundary_is_rejected_not_panicking() {
        forall(16, |rng| {
            for frame in arb_frames(rng) {
                let wire = frame.encode();
                for cut in 6..wire.len() {
                    let err = Frame::decode(wire[4], wire[5], &wire[6..cut]).unwrap_err();
                    assert!(
                        matches!(err, FrameError::Truncated | FrameError::BadPayload(_)),
                        "cut at {cut} of kind {}: {err:?}",
                        frame.kind()
                    );
                }
            }
        });
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        forall(16, |rng| {
            for frame in arb_frames(rng) {
                let mut wire = frame.encode();
                wire.push(0xEE);
                assert_eq!(
                    Frame::decode(wire[4], wire[5], &wire[6..]),
                    Err(FrameError::BadPayload("trailing bytes")),
                    "kind {}",
                    frame.kind()
                );
            }
        });
    }

    #[test]
    fn bad_version_and_kind_are_rejected() {
        let wire = Frame::RunWave { wave: 3 }.encode();
        assert_eq!(
            Frame::decode(WIRE_VERSION + 1, wire[5], &wire[6..]),
            Err(FrameError::BadVersion(WIRE_VERSION + 1))
        );
        assert_eq!(
            Frame::decode(0, wire[5], &wire[6..]),
            Err(FrameError::BadVersion(0))
        );
        assert_eq!(
            Frame::decode(WIRE_VERSION, 0xEE, &wire[6..]),
            Err(FrameError::BadKind(0xEE))
        );
        assert_eq!(
            Frame::decode(WIRE_VERSION, 0, &wire[6..]),
            Err(FrameError::BadKind(0))
        );
    }

    #[test]
    fn oversized_length_word_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        wire.push(WIRE_VERSION);
        wire.push(KIND_RUN_WAVE);
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(
            Frame::read_from(&mut cursor),
            Err(FrameError::BadLength(MAX_FRAME_LEN + 1))
        );
        // Too-short length words (cannot hold version + kind) as well.
        let mut wire = Vec::new();
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(WIRE_VERSION);
        let mut cursor = std::io::Cursor::new(wire);
        assert_eq!(Frame::read_from(&mut cursor), Err(FrameError::BadLength(1)));
    }

    #[test]
    fn hostile_element_counts_do_not_allocate() {
        // A DhtInsert whose lbs count claims u32::MAX elements.
        let mut p = Vec::new();
        put_u64(&mut p, 1);
        put_u64(&mut p, 2);
        put_u32(&mut p, 3);
        put_u64(&mut p, 4);
        put_u32(&mut p, u32::MAX);
        assert_eq!(
            Frame::decode(WIRE_VERSION, KIND_DHT_INSERT, &p),
            Err(FrameError::Truncated)
        );
        // A RunList whose run count claims u32::MAX summaries.
        let mut p = Vec::new();
        put_u32(&mut p, u32::MAX);
        assert_eq!(
            Frame::decode(WIRE_VERSION, KIND_RUN_LIST, &p),
            Err(FrameError::Truncated)
        );
        // A Welcome whose peer count claims u32::MAX strings.
        let mut p = Vec::new();
        put_u32(&mut p, 2); // nodes
        put_str(&mut p, "s");
        put_u64(&mut p, 1); // get_timeout_ms
        put_str(&mut p, "");
        put_str(&mut p, "");
        put_u64(&mut p, 0); // run_epoch
        put_u32(&mut p, u32::MAX); // hostile peer count
        assert_eq!(
            Frame::decode(WIRE_VERSION, KIND_WELCOME, &p),
            Err(FrameError::Truncated)
        );
        // And a hostile host-fingerprint count after valid peers.
        let mut p = Vec::new();
        put_u32(&mut p, 2); // nodes
        put_str(&mut p, "s");
        put_u64(&mut p, 1); // get_timeout_ms
        put_str(&mut p, "");
        put_str(&mut p, "");
        put_u64(&mut p, 0); // run_epoch
        put_u32(&mut p, 0); // no peers
        put_u32(&mut p, u32::MAX); // hostile host count
        assert_eq!(
            Frame::decode(WIRE_VERSION, KIND_WELCOME, &p),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn invalid_run_state_byte_is_rejected() {
        let mut wire = Frame::RunStatus(RunSummary {
            run: 7,
            name: "x".into(),
            state: RunState::Running,
            nodes: 2,
            detail: String::new(),
            link_stalls: 0,
            health: Vec::new(),
        })
        .encode();
        // The state byte sits after run (8) + name len (4) + "x" (1).
        let state_at = 6 + 8 + 4 + 1;
        wire[state_at] = 0xEE;
        assert_eq!(
            Frame::decode(wire[4], wire[5], &wire[6..]),
            Err(FrameError::BadPayload("run state index"))
        );
        assert_eq!(RunState::from_idx(5), None);
        for s in RunState::ALL {
            assert_eq!(RunState::from_idx(s.idx()), Some(s));
        }
    }

    #[test]
    fn truncated_stream_reports_truncation() {
        let wire = Frame::Hello {
            node: 1,
            peer_addr: String::new(),
            host: String::new(),
        }
        .encode();
        let mut cursor = std::io::Cursor::new(&wire[..wire.len() - 1]);
        assert_eq!(Frame::read_from(&mut cursor), Err(FrameError::Truncated));
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert_eq!(Frame::read_from(&mut empty), Err(FrameError::Truncated));
    }

    /// A random permuted multiset of frames (1–3 copies of a random
    /// subset of every message type), modelling a coalesced write run.
    fn arb_batch(rng: &mut SplitMix64) -> Vec<Frame> {
        let mut batch = Vec::new();
        for _ in 0..rng.range_usize(1, 4) {
            for frame in arb_frames(rng) {
                if rng.bool() {
                    batch.push(frame);
                }
            }
        }
        // Fisher–Yates so batches are not grouped by kind.
        for i in (1..batch.len()).rev() {
            batch.swap(i, rng.range_usize(0, i + 1));
        }
        batch
    }

    /// Feed `wire` to a decoder in chunks split at `cuts` (ascending
    /// byte offsets), draining after every chunk; return all frames.
    fn decode_split(wire: &[u8], cuts: &[usize]) -> Vec<Frame> {
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        let mut at = 0;
        for &cut in cuts.iter().chain(std::iter::once(&wire.len())) {
            dec.push(&wire[at..cut]);
            at = cut;
            while let Some(f) = dec.next_frame().expect("valid batch bytes") {
                out.push(f);
            }
        }
        assert_eq!(dec.pending(), 0, "undecoded bytes left over");
        out
    }

    #[test]
    fn batched_frames_split_at_arbitrary_boundaries_decode_identically() {
        forall(48, |rng| {
            let batch = arb_batch(rng);
            let wire = encode_batch(&batch);
            // One-shot.
            assert_eq!(decode_split(&wire, &[]), batch);
            // Byte-at-a-time.
            let every: Vec<usize> = (1..wire.len()).collect();
            assert_eq!(decode_split(&wire, &every), batch);
            // Random split points.
            let mut cuts: Vec<usize> = (0..rng.range_usize(0, 9))
                .map(|_| rng.range_usize(0, wire.len() + 1))
                .collect();
            cuts.sort_unstable();
            cuts.dedup();
            assert_eq!(decode_split(&wire, &cuts), batch);
        });
    }

    #[test]
    fn decoder_surfaces_mid_batch_corruption_after_prior_frames() {
        forall(24, |rng| {
            let good = arb_batch(rng);
            let mut wire = encode_batch(&good);
            let tail_at = wire.len();
            // Append a frame with a corrupted version byte mid-batch.
            let mut bad = Frame::RunWave { wave: 9 }.encode();
            bad[4] = WIRE_VERSION + 1;
            wire.extend_from_slice(&bad);
            wire.extend_from_slice(&Frame::ListRuns.encode());

            let mut dec = FrameDecoder::new();
            // Feed in two chunks split inside the bad frame to prove
            // the error only fires once the frame is complete.
            let cut = tail_at + 2;
            dec.push(&wire[..cut]);
            let mut seen = Vec::new();
            while let Some(f) = dec.next_frame().unwrap() {
                seen.push(f);
            }
            assert_eq!(seen, good, "all frames before the corruption decode");
            dec.push(&wire[cut..]);
            let err = loop {
                match dec.next_frame() {
                    Ok(Some(f)) => seen.push(f),
                    Ok(None) => panic!("corruption not surfaced"),
                    Err(e) => break e,
                }
            };
            assert_eq!(seen, good);
            assert_eq!(err, FrameError::BadVersion(WIRE_VERSION + 1));
            // Poisoned: the error is sticky even after more (valid) bytes.
            dec.push(&Frame::ListRuns.encode());
            assert_eq!(
                dec.next_frame(),
                Err(FrameError::BadVersion(WIRE_VERSION + 1))
            );
        });
    }

    #[test]
    fn decoder_rejects_oversized_and_short_length_words_mid_batch() {
        let mut wire = encode_batch(&[Frame::ListRuns, Frame::RunWave { wave: 1 }]);
        wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        wire.extend_from_slice(&[WIRE_VERSION, KIND_RUN_WAVE]);
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert_eq!(dec.next_frame(), Ok(Some(Frame::ListRuns)));
        assert_eq!(dec.next_frame(), Ok(Some(Frame::RunWave { wave: 1 })));
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::BadLength(MAX_FRAME_LEN + 1))
        );

        // A length word too short to hold version + kind.
        let mut dec = FrameDecoder::new();
        let mut wire = Frame::ListRuns.encode();
        wire.extend_from_slice(&1u32.to_le_bytes());
        wire.push(WIRE_VERSION);
        dec.push(&wire);
        assert_eq!(dec.next_frame(), Ok(Some(Frame::ListRuns)));
        assert_eq!(dec.next_frame(), Err(FrameError::BadLength(1)));
    }

    #[test]
    fn decoder_truncation_mid_batch_waits_for_more_bytes() {
        let frames = [
            Frame::GetDone { var: 1, version: 2 },
            Frame::Evict { var: 3, version: 4 },
        ];
        let wire = encode_batch(&frames);
        let mut dec = FrameDecoder::new();
        // Everything except the last byte: first frame decodes, second
        // is incomplete — not an error, just "need more".
        dec.push(&wire[..wire.len() - 1]);
        assert_eq!(dec.next_frame(), Ok(Some(frames[0].clone())));
        assert_eq!(dec.next_frame(), Ok(None));
        assert!(dec.pending() > 0);
        dec.push(&wire[wire.len() - 1..]);
        assert_eq!(dec.next_frame(), Ok(Some(frames[1].clone())));
        assert_eq!(dec.next_frame(), Ok(None));
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn data_plane_classification() {
        let pd = Frame::PullData {
            name: 9,
            version: 1,
            piece: (3u64 << 32) | 7,
            owner: 3,
            to_node: 0,
            data: vec![1, 2, 3],
        };
        assert!(pd.is_data_plane());
        assert!(pd.fault_eligible());
        assert_eq!(pd.fault_ids(), (9, (3u64 << 32) | 7));
        assert!(!Frame::RunWave { wave: 0 }.is_data_plane());
        assert!(!Frame::RunWave { wave: 0 }.fault_eligible());
        assert_eq!(Frame::RunWave { wave: 0 }.fault_ids(), (0, 0));
        // Telemetry is fault-eligible (droppable observability) but
        // NOT data plane: it must not count toward pull routing gates.
        let tel = Frame::Telemetry {
            node: 2,
            batch: 5,
            last: true,
            dropped_events: 0,
            dropped_spans: 0,
            counters: Vec::new(),
            events: Vec::new(),
        };
        assert!(!tel.is_data_plane());
        assert!(tel.fault_eligible());
        assert_eq!(tel.fault_ids(), (2, 5));
        assert_eq!(tel.kind(), KIND_TELEMETRY);
        // The shm frames are control plane: not data plane (the bytes
        // ride the segment, not the wire) and never fault-eligible (the
        // `shm-attach` chaos site fires at create/attach instead).
        let bell = Frame::ShmDoorbell {
            src_node: 1,
            dst_node: 0,
            segment: 1 << 32,
            seq: 3,
        };
        assert!(!bell.is_data_plane());
        assert!(!bell.fault_eligible());
        let offer = Frame::ShmOffer {
            src_node: 1,
            dst_node: 0,
            segment: 1 << 32,
            path: "/dev/shm/insitu-1-2-s1-d0".into(),
            slots: 256,
            arena_bytes: 1 << 23,
        };
        assert!(!offer.is_data_plane() && !offer.fault_eligible());
        // A standing-query push is NOT data plane (it must not count
        // toward the pull routing gates) and NOT wire-fault-eligible:
        // the chaos `sub-push` site fires in the shared put path, so a
        // seed drops the same fragments with or without a wire.
        let push = Frame::SubPush {
            sub_id: 0xfeed,
            var: 9,
            version: 4,
            src: 1,
            subscriber: 6,
            lbs: vec![0, 0],
            ubs: vec![3, 3],
            data: vec![0; 16],
        };
        assert!(!push.is_data_plane());
        assert!(!push.fault_eligible());
        assert_eq!(push.kind(), KIND_SUB_PUSH);
        let sub = Frame::Subscribe {
            sub_id: 0xfeed,
            var: 9,
            every_k: 2,
            subscriber: 6,
            lbs: vec![0],
            ubs: vec![7],
        };
        assert!(!sub.is_data_plane() && !sub.fault_eligible());
        assert!(
            !Frame::SubCancel { sub_id: 1 }.fault_eligible()
                && !Frame::SubAck {
                    sub_id: 1,
                    to_node: 0
                }
                .fault_eligible()
                && !Frame::SubLagged {
                    sub_id: 1,
                    version: 0,
                    subscriber: 2
                }
                .fault_eligible()
        );
    }

    #[test]
    fn hostile_telemetry_counts_do_not_allocate() {
        // A Telemetry frame whose counter count claims u32::MAX.
        let mut p = Vec::new();
        put_u32(&mut p, 1); // node
        put_u32(&mut p, 0); // batch
        p.push(1); // last
        put_u64(&mut p, 0); // dropped_events
        put_u64(&mut p, 0); // dropped_spans
        put_u32(&mut p, u32::MAX); // hostile counter count
        assert_eq!(
            Frame::decode(WIRE_VERSION, KIND_TELEMETRY, &p),
            Err(FrameError::Truncated)
        );
        // And a hostile event count.
        let mut p = Vec::new();
        put_u32(&mut p, 1);
        put_u32(&mut p, 0);
        p.push(1);
        put_u64(&mut p, 0);
        put_u64(&mut p, 0);
        put_u32(&mut p, 0); // no counters
        put_u32(&mut p, u32::MAX); // hostile event count
        assert_eq!(
            Frame::decode(WIRE_VERSION, KIND_TELEMETRY, &p),
            Err(FrameError::Truncated)
        );
    }

    #[test]
    fn hostile_event_bbox_is_rejected_not_panicking() {
        // An event whose bbox corners are inverted (lb > ub) must be a
        // decode error — BoundingBox::new would panic on it.
        let event = Event::new(1, EventKind::NetSend);
        let frame = Frame::Telemetry {
            node: 0,
            batch: 0,
            last: true,
            dropped_events: 0,
            dropped_spans: 0,
            counters: Vec::new(),
            events: vec![event],
        };
        let mut wire = frame.encode();
        // The bbox flag sits after node(4)+batch(4)+last(1)+drops(16)+
        // counter count(4)+event count(4)+seq(8)+parent(8)+kind(1)+
        // app(4)+var(8)+version(8) of payload (frame header is 6).
        let flag_at = 6 + 4 + 4 + 1 + 16 + 4 + 4 + 8 + 8 + 1 + 4 + 8 + 8;
        assert_eq!(wire[flag_at], 0, "located the bbox flag");
        wire[flag_at] = 1;
        // lbs = [5], ubs = [2]: inverted.
        let mut corners = Vec::new();
        put_u64s(&mut corners, &[5]);
        put_u64s(&mut corners, &[2]);
        wire.splice(flag_at + 1..flag_at + 1, corners);
        let len = (wire.len() - 4) as u32;
        wire[..4].copy_from_slice(&len.to_le_bytes());
        assert_eq!(
            Frame::decode(wire[4], wire[5], &wire[6..]),
            Err(FrameError::BadPayload("bbox corners"))
        );
    }

    #[test]
    fn fault_slugs_intern_to_known_kinds() {
        assert_eq!(intern_fault_slug("drop-pull"), "drop-pull");
        assert_eq!(intern_fault_slug("net-telemetry"), "net-telemetry");
        assert_eq!(intern_fault_slug("some-future-kind"), "fault");
        // Round-trip through the wire keeps the static slug.
        let frame = Frame::Telemetry {
            node: 0,
            batch: 0,
            last: true,
            dropped_events: 0,
            dropped_spans: 0,
            counters: Vec::new(),
            events: vec![Event::new(1, EventKind::Fault { kind: "link-slow" })],
        };
        let wire = frame.encode();
        let decoded = Frame::decode(wire[4], wire[5], &wire[6..]).unwrap();
        assert_eq!(decoded, frame);
    }
}
