//! End-to-end executor performance: the threaded executor really moving
//! and verifying data (wall-clock of the whole framework stack), the
//! modeled executor evaluating the same scenario analytically, and the
//! Jacobi mini-app (real computation + halo exchange + collectives).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use insitu::miniapp::{run_jacobi, JacobiConfig};
use insitu::{concurrent_scenario, pattern_pairs, run_modeled, run_threaded, MappingStrategy};

fn bench_threaded(c: &mut Criterion) {
    // 16 -> 8 tasks, 8^3 regions = 64 KiB coupled data, real threads.
    let mut s = concurrent_scenario(16, 8, 8, pattern_pairs(&[4, 4, 4])[0]);
    s.cores_per_node = 4;
    let coupled = s.decomposition(1).domain().num_cells() as u64 * 8;
    let mut g = c.benchmark_group("executor_end_to_end");
    g.throughput(Throughput::Bytes(coupled));
    g.sample_size(10);
    g.bench_function("threaded_24tasks_2MiB", |b| {
        b.iter(|| run_threaded(black_box(&s), MappingStrategy::DataCentric).reports.len())
    });
    g.bench_function("modeled_same_scenario", |b| {
        b.iter(|| run_modeled(black_box(&s), MappingStrategy::DataCentric).retrieve_ms.len())
    });
    g.finish();
}

fn bench_jacobi(c: &mut Criterion) {
    let cfg = JacobiConfig { size: 24, grid: [2, 2], sweeps: 20, cores_per_node: 4 };
    let mut g = c.benchmark_group("miniapp");
    g.sample_size(10);
    g.bench_function("jacobi_24x24_4ranks_20sweeps", |b| {
        b.iter(|| run_jacobi(black_box(&cfg)).residual)
    });
    g.finish();
}

criterion_group!(benches, bench_threaded, bench_jacobi);
criterion_main!(benches);
