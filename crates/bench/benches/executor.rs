//! End-to-end executor performance: the threaded executor really moving
//! and verifying data (wall-clock of the whole framework stack), the
//! modeled executor evaluating the same scenario analytically, and the
//! Jacobi mini-app (real computation + halo exchange + collectives).

use insitu::miniapp::{run_jacobi, JacobiConfig};
use insitu::{
    concurrent_scenario, pattern_pairs, run_modeled, run_threaded, run_threaded_configured,
    MappingStrategy, ThreadedConfig,
};
use insitu_bench::timing::{black_box, Group};
use insitu_obs::{FlightRecorder, ProfileReport};
use insitu_telemetry::Recorder;

fn bench_executors() {
    // 16 -> 8 tasks, 8^3 regions = 64 KiB coupled data, real threads.
    let mut s = concurrent_scenario(16, 8, 8, pattern_pairs(&[4, 4, 4])[0]);
    s.cores_per_node = 4;
    let coupled = s.decomposition(1).domain().num_cells() as u64 * 8;
    eprintln!("[executor_end_to_end] coupled bytes per run: {coupled}");
    let g = Group::new("executor_end_to_end").sample_size(10);
    g.bench("threaded_24tasks_2MiB", || {
        run_threaded(black_box(&s), MappingStrategy::DataCentric)
            .reports
            .len()
    });
    g.bench("modeled_same_scenario", || {
        run_modeled(black_box(&s), MappingStrategy::DataCentric)
            .retrieve_ms
            .len()
    });
    // Same threaded run with the causal flight recorder on: the delta
    // against `threaded_24tasks_2MiB` is the observability overhead.
    g.bench("threaded_with_flight_recorder", || {
        let flight = FlightRecorder::enabled();
        let cfg = ThreadedConfig {
            flight: flight.clone(),
            ..Default::default()
        };
        run_threaded_configured(
            black_box(&s),
            MappingStrategy::DataCentric,
            &Recorder::disabled(),
            &cfg,
        );
        flight.len()
    });
    let flight = FlightRecorder::enabled();
    let cfg = ThreadedConfig {
        flight: flight.clone(),
        ..Default::default()
    };
    run_threaded_configured(
        &s,
        MappingStrategy::DataCentric,
        &Recorder::disabled(),
        &cfg,
    );
    let profile = ProfileReport::analyze(&flight.snapshot(), flight.dropped());
    let t = profile.totals();
    eprintln!(
        "[executor_end_to_end] critical path: e2e={:.0}us schedule={:.0}us shm={:.0}us rdma={:.0}us wait={:.0}us",
        profile.end_to_end_total_us(),
        t.schedule_us,
        t.shm_us,
        t.rdma_us,
        t.wait_us
    );
}

fn bench_jacobi() {
    let cfg = JacobiConfig {
        size: 24,
        grid: [2, 2],
        sweeps: 20,
        cores_per_node: 4,
    };
    Group::new("miniapp")
        .sample_size(10)
        .bench("jacobi_24x24_4ranks_20sweeps", || {
            run_jacobi(black_box(&cfg)).residual
        });
}

fn main() {
    bench_executors();
    bench_jacobi();
}
