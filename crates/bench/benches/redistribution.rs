//! Data-plane throughput: the strided sub-box extraction that every
//! receiver-driven pull performs, and a full M×N redistribution through
//! the space (16 producers -> 4 consumers).

use insitu_bench::timing::{black_box, Group};
use insitu_cods::{CodsConfig, CodsSpace, Dht};
use insitu_dart::DartRuntime;
use insitu_domain::layout::{copy_region_bytes, fill_with};
use insitu_domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_fabric::{MachineSpec, Placement, TransferLedger};
use insitu_sfc::HilbertCurve;
use std::sync::Arc;
use std::time::Duration;

fn bench_strided_copy() {
    // Extract a 64^3 region (2 MiB) out of a 128^3 piece into a 96^3
    // destination: the inner loop of every get.
    let src_box = BoundingBox::from_sizes(&[128, 128, 128]);
    let dst_box = BoundingBox::new(&[32, 32, 32], &[127, 127, 127]);
    let region = BoundingBox::new(&[40, 40, 40], &[103, 103, 103]);
    let src = vec![0u8; src_box.num_cells() as usize * 8];
    let mut dst = vec![0u8; dst_box.num_cells() as usize * 8];
    let bytes = region.num_cells() as u64 * 8;
    eprintln!("[strided_copy] {bytes} bytes per extraction");
    Group::new("strided_copy")
        .sample_size(30)
        .bench("extract_64cubed_from_128cubed", || {
            copy_region_bytes(
                black_box(&src),
                &src_box,
                black_box(&mut dst),
                &dst_box,
                &region,
                8,
            )
        });
}

fn bench_m_to_n() {
    // 16 producers blocked over 64^3 (2 MiB total) -> one consumer pulls
    // the full domain through get_cont schedules.
    let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(5, 4), 20));
    let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
    let dht = Dht::new(Box::new(HilbertCurve::new(3, 6)), vec![0, 4, 8, 12, 16]);
    let space = CodsSpace::new(
        dart,
        dht,
        CodsConfig {
            get_timeout: Duration::from_secs(5),
            ..Default::default()
        },
    );
    let dec = Decomposition::new(
        BoundingBox::from_sizes(&[64, 64, 64]),
        ProcessGrid::new(&[4, 2, 2]),
        Distribution::Blocked,
    );
    let clients: Vec<u32> = (0..16).collect();
    for r in 0..16u64 {
        let piece = dec.blocked_box(r).unwrap();
        let data = fill_with(&piece, |p| p[0] as f64);
        space
            .put_cont(r as u32, 1, "v", 0, 0, &piece, &data)
            .unwrap();
    }
    let full = BoundingBox::from_sizes(&[64, 64, 64]);
    eprintln!(
        "[m_to_n_redistribution] {} bytes per gather",
        full.num_cells() as u64 * 8
    );
    Group::new("m_to_n_redistribution")
        .sample_size(20)
        .bench("gather_16_to_1_2MiB", || {
            space
                .get_cont(19, 2, "v", 0, black_box(&full), &dec, &clients)
                .unwrap()
                .0
                .len()
        });
}

fn main() {
    bench_strided_copy();
    bench_m_to_n();
}
