//! Cost of the task-mapping pipeline itself at the paper's scale: the
//! server-side graph build + METIS-style partition for 576 tasks, the
//! client-side placement for 512 consumers, and the full modeled pipeline
//! (supports the paper's claim that the communication graph/partitioning
//! step is cheap enough to run at workflow launch).

use insitu::{
    concurrent_scenario, map_scenario, pattern_pairs, sequential_scenario, MappingStrategy,
};
use insitu_bench::timing::{black_box, Group};

fn bench_map_concurrent() {
    let s = concurrent_scenario(512, 64, 128, pattern_pairs(&[32, 32, 32])[0]);
    let g = Group::new("map_concurrent_576tasks").sample_size(10);
    for strat in [MappingStrategy::RoundRobin, MappingStrategy::DataCentric] {
        g.bench(strat.label(), || {
            map_scenario(black_box(&s), strat).app_cores.len()
        });
    }
}

fn bench_map_sequential() {
    let s = sequential_scenario(512, 128, 384, 128, pattern_pairs(&[32, 32, 32])[0]);
    let g = Group::new("map_sequential_1024tasks").sample_size(10);
    for strat in [MappingStrategy::RoundRobin, MappingStrategy::DataCentric] {
        g.bench(strat.label(), || {
            map_scenario(black_box(&s), strat).app_cores.len()
        });
    }
}

fn bench_map_weak_scaled() {
    // The largest weak-scaling point: 9216 tasks, 768-part partition.
    let s = concurrent_scenario(8192, 1024, 32, pattern_pairs(&[16, 16, 16])[0]);
    Group::new("map_concurrent_9216tasks")
        .sample_size(10)
        .bench("data-centric", || {
            map_scenario(black_box(&s), MappingStrategy::DataCentric)
                .app_cores
                .len()
        });
}

fn main() {
    bench_map_concurrent();
    bench_map_sequential();
    bench_map_weak_scaled();
}
