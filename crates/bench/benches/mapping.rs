//! Cost of the task-mapping pipeline itself at the paper's scale: the
//! server-side graph build + METIS-style partition for 576 tasks, the
//! client-side placement for 512 consumers, and the full modeled pipeline
//! (supports the paper's claim that the communication graph/partitioning
//! step is cheap enough to run at workflow launch).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use insitu::{
    concurrent_scenario, map_scenario, pattern_pairs, sequential_scenario, MappingStrategy,
};

fn bench_map_concurrent(c: &mut Criterion) {
    let s = concurrent_scenario(512, 64, 128, pattern_pairs(&[32, 32, 32])[0]);
    let mut g = c.benchmark_group("map_concurrent_576tasks");
    g.sample_size(10);
    for strat in [MappingStrategy::RoundRobin, MappingStrategy::DataCentric] {
        g.bench_function(strat.label(), |b| {
            b.iter(|| map_scenario(black_box(&s), strat).app_cores.len())
        });
    }
    g.finish();
}

fn bench_map_sequential(c: &mut Criterion) {
    let s = sequential_scenario(512, 128, 384, 128, pattern_pairs(&[32, 32, 32])[0]);
    let mut g = c.benchmark_group("map_sequential_1024tasks");
    g.sample_size(10);
    for strat in [MappingStrategy::RoundRobin, MappingStrategy::DataCentric] {
        g.bench_function(strat.label(), |b| {
            b.iter(|| map_scenario(black_box(&s), strat).app_cores.len())
        });
    }
    g.finish();
}

fn bench_map_weak_scaled(c: &mut Criterion) {
    // The largest weak-scaling point: 9216 tasks, 768-part partition.
    let s = concurrent_scenario(8192, 1024, 32, pattern_pairs(&[16, 16, 16])[0]);
    let mut g = c.benchmark_group("map_concurrent_9216tasks");
    g.sample_size(10);
    g.bench_function("data-centric", |b| {
        b.iter(|| map_scenario(black_box(&s), MappingStrategy::DataCentric).app_cores.len())
    });
    g.finish();
}

criterion_group!(benches, bench_map_concurrent, bench_map_sequential, bench_map_weak_scaled);
criterion_main!(benches);
