//! End-to-end figure pipelines at reduced scale: how long each
//! experiment's full modeled pipeline (mapping + accounting + time model)
//! takes. The full-scale series are produced by the `figNN` binaries.

use insitu_bench::timing::{black_box, Group};
use insitu_bench::{fig08, fig09, fig11, fig16, Size};

fn main() {
    let g = Group::new("figure_pipelines").sample_size(10);
    g.bench("fig08_pipeline_mini", || {
        fig08(black_box(Size::mini())).len()
    });
    g.bench("fig09_pipeline_mini", || {
        fig09(black_box(Size::mini())).len()
    });
    g.bench("fig11_pipeline_mini", || {
        fig11(black_box(Size::mini()), black_box(Size::mini())).len()
    });
    g.bench("fig16_weak_scaling_2points_small", || {
        fig16(black_box(&[1, 2]), 16).len()
    });
}
