//! End-to-end figure pipelines at reduced scale: how long each
//! experiment's full modeled pipeline (mapping + accounting + time model)
//! takes. The full-scale series are produced by the `figNN` binaries.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use insitu_bench::{fig08, fig09, fig11, fig16, Size};

fn bench_fig08(c: &mut Criterion) {
    c.bench_function("fig08_pipeline_mini", |b| {
        b.iter(|| fig08(black_box(Size::mini())).len())
    });
}

fn bench_fig09(c: &mut Criterion) {
    c.bench_function("fig09_pipeline_mini", |b| {
        b.iter(|| fig09(black_box(Size::mini())).len())
    });
}

fn bench_fig11(c: &mut Criterion) {
    c.bench_function("fig11_pipeline_mini", |b| {
        b.iter(|| fig11(black_box(Size::mini()), black_box(Size::mini())).len())
    });
}

fn bench_fig16(c: &mut Criterion) {
    c.bench_function("fig16_weak_scaling_2points_small", |b| {
        b.iter(|| fig16(black_box(&[1, 2]), 16).len())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig08, bench_fig09, bench_fig11, bench_fig16
}
criterion_main!(benches);
