//! Space-filling-curve performance and the Hilbert-vs-Morton ablation
//! (DESIGN.md ablation #2): index mapping throughput and box-to-span
//! decomposition cost for both curves.

use insitu_bench::timing::{black_box, Group};
use insitu_domain::BoundingBox;
use insitu_sfc::{neighbor_locality, spans_of_box, HilbertCurve, MortonCurve, SpaceFillingCurve};

fn bench_index_of() {
    let g = Group::new("index_of_3d_order10");
    let h = HilbertCurve::new(3, 10);
    let m = MortonCurve::new(3, 10);
    let pts: Vec<[u64; 3]> = (0..256u64)
        .map(|i| [i * 3 % 1024, i * 7 % 1024, i * 11 % 1024])
        .collect();
    g.bench("hilbert", || {
        let mut acc = 0u128;
        for p in &pts {
            acc ^= h.index_of(black_box(p));
        }
        acc
    });
    g.bench("morton", || {
        let mut acc = 0u128;
        for p in &pts {
            acc ^= m.index_of(black_box(p));
        }
        acc
    });
}

fn bench_point_of() {
    let h = HilbertCurve::new(3, 10);
    Group::new("point_of_3d_order10").bench("hilbert", || {
        let mut acc = 0u64;
        for i in 0..256u128 {
            acc ^= h.point_of(black_box(i * 104729))[0];
        }
        acc
    });
}

fn bench_spans() {
    // The ablation metric that matters for the DHT: span count per query.
    let g = Group::new("spans_of_box_2d_order8");
    let query = BoundingBox::new(&[37, 19], &[171, 203]);
    for (name, curve) in [
        (
            "hilbert",
            Box::new(HilbertCurve::new(2, 8)) as Box<dyn SpaceFillingCurve>,
        ),
        (
            "morton",
            Box::new(MortonCurve::new(2, 8)) as Box<dyn SpaceFillingCurve>,
        ),
    ] {
        let n = spans_of_box(curve.as_ref(), &query).len();
        eprintln!(
            "[ablation_sfc] {name}: {n} spans for {query:?}, locality {:.1}",
            neighbor_locality(curve.as_ref(), 512)
        );
        g.bench(name, || {
            spans_of_box(black_box(curve.as_ref()), black_box(&query)).len()
        });
    }
}

fn main() {
    bench_index_of();
    bench_point_of();
    bench_spans();
}
