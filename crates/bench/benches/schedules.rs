//! Communication-schedule computation and the schedule-cache ablation
//! (DESIGN.md ablation #1): planning cost from a decomposition, and
//! `get` planning cost with the cache on vs off — the win the paper
//! attributes to schedule reuse across iterations.

use insitu_bench::timing::{black_box, Group};
use insitu_cods::{schedule_from_decomposition, CodsConfig, CodsSpace, Dht};
use insitu_dart::DartRuntime;
use insitu_domain::{layout, BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_fabric::{MachineSpec, Placement, TransferLedger};
use insitu_sfc::HilbertCurve;
use std::sync::Arc;
use std::time::Duration;

fn bench_plan_from_decomposition() {
    // The paper's CAP1 decomposition: 512 ranks, blocked over 1024^3.
    let dec = Decomposition::new(
        BoundingBox::from_sizes(&[1024, 1024, 1024]),
        ProcessGrid::new(&[8, 8, 8]),
        Distribution::Blocked,
    );
    let clients: Vec<u32> = (0..512).collect();
    // One CAP2 task's 128 MB query region.
    let query = BoundingBox::new(&[0, 0, 0], &[255, 255, 255]);
    Group::new("schedules").bench("schedule_from_decomposition_512ranks", || {
        schedule_from_decomposition(black_box(&dec), &clients, black_box(&query))
            .ops
            .len()
    });
}

fn space_with_data(cache: bool) -> (Arc<CodsSpace>, Decomposition) {
    let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(4, 4), 16));
    let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
    let dht = Dht::new(Box::new(HilbertCurve::new(3, 5)), vec![0, 4, 8, 12]);
    let space = CodsSpace::new(
        dart,
        dht,
        CodsConfig {
            get_timeout: Duration::from_secs(5),
            cache_schedules: cache,
            ..Default::default()
        },
    );
    let dec = Decomposition::new(
        BoundingBox::from_sizes(&[32, 32, 32]),
        ProcessGrid::new(&[2, 2, 4]),
        Distribution::Blocked,
    );
    for r in 0..16u64 {
        let piece = dec.blocked_box(r).unwrap();
        let data = layout::fill_with(&piece, |p| p[0] as f64 + p[1] as f64);
        space
            .put_seq(r as u32, 1, "field", 0, 0, &piece, &data)
            .unwrap();
    }
    (space, dec)
}

fn bench_get_seq_cache() {
    let group = Group::new("get_seq_32cubed").sample_size(30);
    for (name, cache) in [("cache_on", true), ("cache_off", false)] {
        let (space, _dec) = space_with_data(cache);
        let query = BoundingBox::new(&[5, 5, 5], &[26, 26, 26]);
        // Warm the cache so cache_on measures the replay path.
        let _ = space.get_seq(1, 2, "field", 0, &query).unwrap();
        group.bench(name, || {
            space
                .get_seq(1, 2, "field", 0, black_box(&query))
                .unwrap()
                .0
                .len()
        });
        let (hits, misses) = space.cache().stats();
        eprintln!("[ablation_schedule_cache] {name}: {hits} hits / {misses} misses");
    }
}

fn main() {
    bench_plan_from_decomposition();
    bench_get_seq_cache();
}
