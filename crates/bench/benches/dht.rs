//! DHT performance and the DHT-width ablation (DESIGN.md ablation #5):
//! insert/query cost as the number of DHT cores (one per node in the
//! paper) grows.

use insitu_bench::timing::{black_box, Group};
use insitu_cods::{var_id, Dht, LocationEntry};
use insitu_domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_sfc::HilbertCurve;

fn populated_dht(cores: u32) -> Dht {
    let dht = Dht::new(Box::new(HilbertCurve::new(3, 7)), (0..cores).collect());
    // 512 producer pieces blocked over 128^3.
    let dec = Decomposition::new(
        BoundingBox::from_sizes(&[128, 128, 128]),
        ProcessGrid::new(&[8, 8, 8]),
        Distribution::Blocked,
    );
    for r in 0..dec.num_ranks() {
        let piece = dec.blocked_box(r).unwrap();
        dht.insert(
            var_id("t"),
            0,
            LocationEntry {
                bbox: piece,
                owner: r as u32,
                piece: 0,
            },
        );
    }
    dht
}

fn bench_insert() {
    let g = Group::new("dht_insert");
    for cores in [1u32, 4, 16, 48] {
        let dht = Dht::new(Box::new(HilbertCurve::new(3, 7)), (0..cores).collect());
        let piece = BoundingBox::new(&[16, 16, 16], &[31, 31, 31]);
        g.bench(&cores.to_string(), || {
            dht.insert(
                var_id("t"),
                1,
                LocationEntry {
                    bbox: black_box(piece),
                    owner: 0,
                    piece: 0,
                },
            )
            .len()
        });
    }
}

fn bench_query() {
    let g = Group::new("dht_query_512pieces");
    let query = BoundingBox::new(&[20, 20, 20], &[90, 90, 90]);
    for cores in [1u32, 4, 16, 48] {
        let dht = populated_dht(cores);
        let (entries, consulted) = dht.query(var_id("t"), 0, &query);
        eprintln!(
            "[ablation_dht_width] {cores} cores: query touches {} cores, {} entries",
            consulted.len(),
            entries.len()
        );
        g.bench(&cores.to_string(), || {
            dht.query(var_id("t"), 0, black_box(&query)).0.len()
        });
    }
}

fn main() {
    bench_insert();
    bench_query();
}
