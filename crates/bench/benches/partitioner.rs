//! Partitioner ablation (DESIGN.md ablation #3): multilevel vs greedy vs
//! round-robin on the paper's actual inter-application communication
//! graph (CAP1=512 / CAP2=64), reporting both runtime and the edge cut
//! that determines network-coupled bytes.

use insitu::{concurrent_scenario, pattern_pairs};
use insitu_bench::timing::{black_box, Group};
use insitu_partition::{
    GreedyGrowthPartitioner, MultilevelPartitioner, PartitionConfig, Partitioner,
    RoundRobinPartitioner,
};
use insitu_workflow::build_inter_app_graph;

fn paper_graph() -> insitu_partition::Graph {
    let s = concurrent_scenario(512, 64, 128, pattern_pairs(&[32, 32, 32])[0]);
    let apps = [
        s.workflow.app(1).unwrap().clone(),
        s.workflow.app(2).unwrap().clone(),
    ];
    let refs: Vec<&insitu_workflow::AppSpec> = apps.iter().collect();
    build_inter_app_graph(&refs, 8).0
}

fn main() {
    let g = paper_graph();
    let cfg = PartitionConfig::with_cap(48, 12); // 48 twelve-core nodes
    let group = Group::new("partition_cap_576tasks_48nodes").sample_size(10);

    let partitioners: Vec<(&str, Box<dyn Partitioner>)> = vec![
        ("multilevel", Box::new(MultilevelPartitioner::default())),
        ("greedy", Box::new(GreedyGrowthPartitioner)),
        ("round-robin", Box::new(RoundRobinPartitioner)),
    ];
    for (name, p) in &partitioners {
        let parts = p.partition(&g, &cfg);
        eprintln!(
            "[ablation_partitioner] {name}: edge cut {} of total {}",
            g.edge_cut(&parts),
            (0..g.num_vertices() as u32)
                .flat_map(|v| g.neighbors(v).map(move |(u, w)| if u > v { w } else { 0 }))
                .sum::<u64>()
        );
        group.bench(name, || p.partition(black_box(&g), black_box(&cfg)).len());
    }
}
