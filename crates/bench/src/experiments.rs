//! Drivers for every evaluation figure.
//!
//! Each `figNN_*` function runs the paper's configuration (or a scaled
//! version for quick runs) through the modeled executor and returns
//! structured rows; the `src/bin/figNN` binaries print them.

use insitu::{
    concurrent_scenario, pattern_pairs, run_modeled, sequential_scenario, MappingStrategy,
    PatternPair, Scenario,
};
use insitu_fabric::{Locality, TrafficClass};
use insitu_workflow::fanout_per_consumer;

/// The block-cyclic block size used throughout the experiments (32^3
/// blocks of the 128^3 per-task regions).
pub const PAPER_BLOCK: [u64; 3] = [32, 32, 32];

/// The two mapping strategies every figure compares.
pub const STRATEGIES: [MappingStrategy; 2] =
    [MappingStrategy::RoundRobin, MappingStrategy::DataCentric];

/// Scaled experiment size. `factor = 1` is the paper's configuration
/// (CAP1/CAP2 = 512/64, SAP1/(SAP2+SAP3) = 512/(128+384), 128^3 regions);
/// smaller factors shrink task counts and regions for quick runs.
#[derive(Clone, Copy, Debug)]
pub struct Size {
    /// Producer tasks (CAP1 / SAP1).
    pub prod: u64,
    /// First consumer tasks (CAP2 / SAP2).
    pub cons1: u64,
    /// Second consumer tasks (SAP3, sequential only).
    pub cons2: u64,
    /// Per-producer-task region side.
    pub region: u64,
    /// Block-cyclic block side.
    pub block: u64,
}

impl Size {
    /// The paper's evaluation size.
    pub fn paper() -> Self {
        Size {
            prod: 512,
            cons1: 64,
            cons2: 384,
            region: 128,
            block: 32,
        }
    }

    /// Paper sequential consumer split (SAP2=128, SAP3=384).
    pub fn paper_sequential() -> Self {
        Size {
            prod: 512,
            cons1: 128,
            cons2: 384,
            region: 128,
            block: 32,
        }
    }

    /// A miniature for unit tests and criterion benches.
    pub fn mini() -> Self {
        Size {
            prod: 64,
            cons1: 8,
            cons2: 24,
            region: 16,
            block: 8,
        }
    }

    fn block3(&self) -> [u64; 3] {
        [self.block; 3]
    }

    /// The figure-8/11-style concurrent scenario at this size.
    pub fn concurrent(&self, pattern: PatternPair) -> Scenario {
        concurrent_scenario(self.prod, self.cons1, self.region, pattern)
    }

    /// The figure-9/11-style sequential scenario at this size.
    pub fn sequential(&self, pattern: PatternPair) -> Scenario {
        sequential_scenario(self.prod, self.cons1, self.cons2, self.region, pattern)
    }

    /// The pattern pairs swept at this size.
    pub fn patterns(&self) -> Vec<PatternPair> {
        pattern_pairs(&self.block3())
    }
}

/// One row of Figs. 8/9: coupled bytes over the network per pattern and
/// strategy.
#[derive(Clone, Debug)]
pub struct CouplingRow {
    /// Pattern pair label.
    pub pattern: String,
    /// Mapping strategy label.
    pub strategy: &'static str,
    /// Coupled bytes that crossed the network.
    pub network_bytes: u64,
    /// Coupled bytes served in-situ via shared memory.
    pub shm_bytes: u64,
}

fn coupling_rows(
    mk: impl Fn(PatternPair) -> Scenario,
    patterns: &[PatternPair],
) -> Vec<CouplingRow> {
    let mut rows = Vec::new();
    for &pattern in patterns {
        let scenario = mk(pattern);
        for strategy in STRATEGIES {
            let o = run_modeled(&scenario, strategy);
            rows.push(CouplingRow {
                pattern: pattern.label(),
                strategy: strategy.label(),
                network_bytes: o.ledger.network_bytes(TrafficClass::InterApp),
                shm_bytes: o.ledger.shm_bytes(TrafficClass::InterApp),
            });
        }
    }
    rows
}

/// Fig. 8: concurrent coupling, coupled data over the network by pattern
/// pair and strategy.
pub fn fig08(size: Size) -> Vec<CouplingRow> {
    coupling_rows(|p| size.concurrent(p), &size.patterns())
}

/// Fig. 9: sequential coupling, same metric.
pub fn fig09(size: Size) -> Vec<CouplingRow> {
    coupling_rows(|p| size.sequential(p), &size.patterns())
}

/// One row of Fig. 10: fan-out of the coupling under a pattern pair.
#[derive(Clone, Debug)]
pub struct FanoutRow {
    /// Pattern pair label.
    pub pattern: String,
    /// Mean producers contacted per consumer task.
    pub avg_fanout: f64,
    /// Worst-case producers contacted by one consumer task.
    pub max_fanout: u32,
}

/// Fig. 10 (quantified): how many producer tasks each consumer task must
/// contact — the mismatched-distribution pathology.
pub fn fig10(size: Size) -> Vec<FanoutRow> {
    let mut rows = Vec::new();
    for pattern in size.patterns() {
        let s = size.concurrent(pattern);
        let fan = fanout_per_consumer(s.decomposition(1), s.decomposition(2));
        let max = fan.iter().copied().max().unwrap_or(0);
        let avg = fan.iter().map(|&f| f as f64).sum::<f64>() / fan.len() as f64;
        rows.push(FanoutRow {
            pattern: pattern.label(),
            avg_fanout: avg,
            max_fanout: max,
        });
    }
    rows
}

/// One row of Fig. 11 / Fig. 16: a consumer application's retrieve time.
#[derive(Clone, Debug)]
pub struct RetrieveRow {
    /// Application label (CAP2, SAP2, SAP3).
    pub app: String,
    /// Mapping strategy label.
    pub strategy: &'static str,
    /// Producer task count of the run (weak-scaling x-axis).
    pub producer_tasks: u64,
    /// Estimated retrieve time, milliseconds.
    pub ms: f64,
}

/// Fig. 11: time to retrieve coupled data for CAP2, SAP2 and SAP3 under
/// both strategies (matched blocked/blocked pattern).
///
/// Uses the same partially-aligned consumer grids as [`fig16`] (factor 1):
/// perfectly aligned couplings retrieve ~100% on-node and would show
/// *zero* network time, contradicting the paper's own contention
/// discussion — see EXPERIMENTS.md's reproduction notes.
pub fn fig11(size: Size, seq_size: Size) -> Vec<RetrieveRow> {
    use insitu::{concurrent_scenario_with_grids, sequential_scenario_with_grids};
    let pattern = size.patterns()[0];
    // Scale the fig16 family down proportionally to the requested size.
    let f = (size.prod / 512).max(1);
    let (conc, seq) = if size.prod >= 512 {
        (
            concurrent_scenario_with_grids(&[8 * f, 8, 8], &[4 * f, 4, 4], size.region, pattern),
            sequential_scenario_with_grids(
                &[8 * f, 8, 8],
                &[4 * f, 4, 8],
                &[4 * f, 8, 12],
                seq_size.region,
                pattern,
            ),
        )
    } else {
        (size.concurrent(pattern), seq_size.sequential(pattern))
    };
    let mut rows = Vec::new();
    for strategy in STRATEGIES {
        let cap = run_modeled(&conc, strategy);
        rows.push(RetrieveRow {
            app: "CAP2".into(),
            strategy: strategy.label(),
            producer_tasks: size.prod,
            ms: cap.retrieve_ms_mean[&2],
        });
        let sap = run_modeled(&seq, strategy);
        for (app, label) in [(2u32, "SAP2"), (3u32, "SAP3")] {
            rows.push(RetrieveRow {
                app: label.into(),
                strategy: strategy.label(),
                producer_tasks: seq_size.prod,
                ms: sap.retrieve_ms_mean[&app],
            });
        }
    }
    rows
}

/// One row of Figs. 12/13: an application's intra-app bytes over the
/// network.
#[derive(Clone, Debug)]
pub struct IntraAppRow {
    /// Application label.
    pub app: String,
    /// Mapping strategy label.
    pub strategy: &'static str,
    /// Intra-application (stencil) bytes that crossed the network.
    pub network_bytes: u64,
}

fn intra_rows(scenario: &Scenario, labels: &[(u32, &str)]) -> Vec<IntraAppRow> {
    let mut rows = Vec::new();
    for strategy in STRATEGIES {
        let o = run_modeled(scenario, strategy);
        for &(app, label) in labels {
            rows.push(IntraAppRow {
                app: label.into(),
                strategy: strategy.label(),
                network_bytes: o
                    .ledger
                    .app_bytes(app, TrafficClass::IntraApp, Locality::Network),
            });
        }
    }
    rows
}

/// Fig. 12: concurrent scenario, per-app intra-application network bytes.
pub fn fig12(size: Size) -> Vec<IntraAppRow> {
    let s = size.concurrent(size.patterns()[0]);
    intra_rows(&s, &[(1, "CAP1"), (2, "CAP2")])
}

/// Fig. 13: sequential scenario, per-app intra-application network bytes.
pub fn fig13(size: Size) -> Vec<IntraAppRow> {
    let s = size.sequential(size.patterns()[0]);
    intra_rows(&s, &[(1, "SAP1"), (2, "SAP2"), (3, "SAP3")])
}

/// One row of Figs. 14/15: the total communication-cost breakdown.
#[derive(Clone, Debug)]
pub struct BreakdownRow {
    /// Mapping strategy label.
    pub strategy: &'static str,
    /// Inter-application coupled bytes over the network.
    pub inter_app_net: u64,
    /// Intra-application stencil bytes over the network.
    pub intra_app_net: u64,
}

fn breakdown(scenario: &Scenario) -> Vec<BreakdownRow> {
    STRATEGIES
        .iter()
        .map(|&strategy| {
            let o = run_modeled(scenario, strategy);
            BreakdownRow {
                strategy: strategy.label(),
                inter_app_net: o.ledger.network_bytes(TrafficClass::InterApp),
                intra_app_net: o.ledger.network_bytes(TrafficClass::IntraApp),
            }
        })
        .collect()
}

/// Fig. 14: concurrent scenario total network cost breakdown.
pub fn fig14(size: Size) -> Vec<BreakdownRow> {
    breakdown(&size.concurrent(size.patterns()[0]))
}

/// Fig. 15: sequential scenario total network cost breakdown.
pub fn fig15(size: Size) -> Vec<BreakdownRow> {
    breakdown(&size.sequential(size.patterns()[0]))
}

/// Fig. 16: weak scaling of retrieve time under data-centric mapping.
/// `factors` multiply the paper's base task counts (1, 2, 4, 8, 16 in the
/// paper: 512/64 up to 8192/1024 concurrent; 512/(128+384) up to
/// 8192/(2048+6144) sequential).
///
/// The decomposition *family* is held fixed while one grid dimension
/// grows (producer `[8f, 8, 8]`; consumers `[4f, 4, 4]`, `[4f, 4, 8]`,
/// `[4f, 8, 12]`), so per-task geometry — and therefore per-task
/// locality — is scale-invariant and the only growing effect is
/// interconnect contention, which is what the figure plots. The consumer
/// grids are deliberately only partially aligned with the producer:
/// each consumer task pulls a minority of its data from non-adjacent
/// nodes, the regime the paper's observed contention growth implies
/// (perfectly aligned couplings pull only from on-node or adjacent
/// sources and show no contention at any scale). Times are task means
/// (retrieves run concurrently; the mean tracks contention without being
/// dominated by one straggler).
pub fn fig16(factors: &[u64], base_region: u64) -> Vec<RetrieveRow> {
    use insitu::{concurrent_scenario_with_grids, sequential_scenario_with_grids};
    let pattern = pattern_pairs(&[32, 32, 32])[0];
    let mut rows = Vec::new();
    for &f in factors {
        let conc =
            concurrent_scenario_with_grids(&[8 * f, 8, 8], &[4 * f, 4, 4], base_region, pattern);
        let o = run_modeled(&conc, MappingStrategy::DataCentric);
        rows.push(RetrieveRow {
            app: "CAP2".into(),
            strategy: "data-centric",
            producer_tasks: 512 * f,
            ms: o.retrieve_ms_mean[&2],
        });
        let seq = sequential_scenario_with_grids(
            &[8 * f, 8, 8],
            &[4 * f, 4, 8],
            &[4 * f, 8, 12],
            base_region,
            pattern,
        );
        let o = run_modeled(&seq, MappingStrategy::DataCentric);
        for (app, label) in [(2u32, "SAP2"), (3u32, "SAP3")] {
            rows.push(RetrieveRow {
                app: label.into(),
                strategy: "data-centric",
                producer_tasks: 512 * f,
                ms: o.retrieve_ms_mean[&app],
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig08_mini_shapes() {
        let rows = fig08(Size::mini());
        assert_eq!(rows.len(), 10); // 5 patterns x 2 strategies
                                    // Matched pattern: data-centric well below round-robin.
        let rr = &rows[0];
        let dc = &rows[1];
        assert_eq!(rr.strategy, "round-robin");
        assert!(dc.network_bytes < rr.network_bytes);
        // Volume conservation per pattern.
        for pair in rows.chunks(2) {
            assert_eq!(
                pair[0].network_bytes + pair[0].shm_bytes,
                pair[1].network_bytes + pair[1].shm_bytes
            );
        }
    }

    #[test]
    fn fig09_mini_shapes() {
        let rows = fig09(Size::mini());
        assert_eq!(rows.len(), 10);
        assert!(rows[1].network_bytes < rows[0].network_bytes);
    }

    #[test]
    fn fig10_mismatched_fanout_explodes() {
        let rows = fig10(Size::mini());
        // blocked/blocked has fan-out l; blocked/cyclic touches everyone.
        assert!(rows[0].avg_fanout <= rows[4].avg_fanout);
        assert!(rows[4].max_fanout as u64 >= Size::mini().prod / 2);
    }

    #[test]
    fn fig11_mini_orders() {
        let rows = fig11(Size::mini(), Size::mini());
        assert_eq!(rows.len(), 6);
        // Data-centric faster than round-robin for each app.
        for app in ["CAP2", "SAP2", "SAP3"] {
            let rr = rows
                .iter()
                .find(|r| r.app == app && r.strategy == "round-robin")
                .unwrap();
            let dc = rows
                .iter()
                .find(|r| r.app == app && r.strategy == "data-centric")
                .unwrap();
            assert!(dc.ms < rr.ms, "{app}: dc {} >= rr {}", dc.ms, rr.ms);
        }
    }

    #[test]
    fn fig12_consumer_halo_grows() {
        let rows = fig12(Size::mini());
        let rr = rows
            .iter()
            .find(|r| r.app == "CAP2" && r.strategy == "round-robin")
            .unwrap();
        let dc = rows
            .iter()
            .find(|r| r.app == "CAP2" && r.strategy == "data-centric")
            .unwrap();
        assert!(dc.network_bytes >= rr.network_bytes);
    }

    #[test]
    fn fig14_coupling_dominates_round_robin() {
        let rows = fig14(Size::mini());
        let rr = &rows[0];
        assert!(rr.inter_app_net > rr.intra_app_net);
        let dc = &rows[1];
        assert!(dc.inter_app_net + dc.intra_app_net < rr.inter_app_net + rr.intra_app_net);
    }

    #[test]
    fn fig16_times_grow_gently() {
        let rows = fig16(&[1, 2], 16);
        let cap_small = rows
            .iter()
            .find(|r| r.app == "CAP2" && r.producer_tasks == 512)
            .unwrap();
        let cap_big = rows
            .iter()
            .find(|r| r.app == "CAP2" && r.producer_tasks == 1024)
            .unwrap();
        assert!(cap_big.ms >= cap_small.ms * 0.5, "time should not collapse");
    }
}

/// One row of the extra file-baseline experiment.
#[derive(Clone, Debug)]
pub struct FileBaselineRow {
    /// Scenario label.
    pub scenario: String,
    /// Coupled bytes per iteration.
    pub bytes: u64,
    /// In-memory (CoDS, data-centric) retrieve completion, ms.
    pub memory_ms: f64,
    /// File-based coupling round (write + read through the parallel
    /// filesystem), ms.
    pub file_ms: f64,
}

/// Extra experiment (paper §VI Related Work, quantified): CoDS in-memory
/// coupling vs the file-based coupling of conventional workflow systems,
/// at the paper's configurations.
pub fn extra_file_baseline(size: Size, seq_size: Size) -> Vec<FileBaselineRow> {
    use insitu_fabric::{estimate_file_coupling_time, FilesystemModel};
    let fs = FilesystemModel::jaguar_spider();
    let pattern = size.patterns()[0];
    let mut rows = Vec::new();

    let conc = size.concurrent(pattern);
    let o = run_modeled(&conc, MappingStrategy::DataCentric);
    let bytes = o.ledger.total_bytes(insitu_fabric::TrafficClass::InterApp);
    rows.push(FileBaselineRow {
        scenario: format!("concurrent {}/{}", size.prod, size.cons1),
        bytes,
        memory_ms: o.retrieve_ms.values().fold(0.0f64, |a, &b| a.max(b)),
        file_ms: estimate_file_coupling_time(
            &fs,
            bytes,
            size.prod as u32,
            bytes,
            size.cons1 as u32,
        ),
    });

    let seq = seq_size.sequential(pattern);
    let o = run_modeled(&seq, MappingStrategy::DataCentric);
    let bytes = o.ledger.total_bytes(insitu_fabric::TrafficClass::InterApp);
    // Producers write once; the written volume is half the redistributed
    // volume (two consumers read everything).
    rows.push(FileBaselineRow {
        scenario: format!(
            "sequential {}/({}+{})",
            seq_size.prod, seq_size.cons1, seq_size.cons2
        ),
        bytes,
        memory_ms: o.retrieve_ms.values().fold(0.0f64, |a, &b| a.max(b)),
        file_ms: estimate_file_coupling_time(
            &fs,
            bytes / 2,
            seq_size.prod as u32,
            bytes,
            (seq_size.cons1 + seq_size.cons2) as u32,
        ),
    });
    rows
}

#[cfg(test)]
mod extra_tests {
    use super::*;

    #[test]
    fn file_baseline_penalizes_files() {
        let rows = extra_file_baseline(Size::mini(), Size::mini());
        assert_eq!(rows.len(), 2);
        for r in rows {
            assert!(
                r.file_ms > r.memory_ms,
                "{}: file {} <= mem {}",
                r.scenario,
                r.file_ms,
                r.memory_ms
            );
        }
    }
}
