//! Plain-text table rendering for experiment output.

/// Render an aligned table with a header row and a separator line.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Print a rendered table with a title.
pub fn print(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n{title}");
    println!("{}", render(headers, rows));
}

/// Format bytes as GiB with enough precision to distinguish near-zero
/// residues from true zero.
pub fn gib(bytes: u64) -> String {
    let g = bytes as f64 / (1u64 << 30) as f64;
    if g > 0.0 && g < 0.01 {
        format!("{g:.4}")
    } else {
        format!("{g:.2}")
    }
}

/// Format bytes as MiB with one decimal.
pub fn mib(bytes: u64) -> String {
    format!("{:.1}", bytes as f64 / (1u64 << 20) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let s = render(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(gib(1 << 30), "1.00");
        assert_eq!(gib(5 << 20), "0.0049");
        assert_eq!(mib(3 << 20), "3.0");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        render(&["a", "b"], &[vec!["x".into()]]);
    }
}
