//! Regenerate the paper's Figure 14 at its evaluation configuration.
//! Prints the table (see `insitu_bench::report`) and writes
//! `BENCH_fig14.json`.

fn main() {
    let rows = insitu_bench::report::print_fig14();
    insitu_bench::emit::emit_fig14(&rows);
}
