//! Wire-transport benchmark: the star (thread-per-peer) transport vs
//! the non-blocking reactor, over loopback.
//!
//! Three measurements, written to `BENCH_net.json` (honours
//! `BENCH_OUT_DIR`):
//!
//! - **frames/s** — small-frame throughput of a single connection:
//!   star uses a `Peer` writer thread (one syscall per frame), the
//!   reactor coalesces staged frames into batched writes.
//! - **pull latency p50/p99** — request/response round trips carrying a
//!   1 KiB `PullData`: star pays the two-hop consumer→hub→owner path,
//!   the reactor serves the direct peer link of p2p mode, and shm
//!   answers over a `/dev/shm` ring (payload through the mapping,
//!   only the doorbell control frame on the socket — the same-host
//!   fast path of `launch --procs`). Each side is measured over
//!   several rounds and the minimum kept, so one noisy scheduler
//!   slice on a shared runner cannot fail the gate.
//! - **threads for 32 connections** — OS threads (`/proc/self/status`)
//!   the process adds to serve 32 connections: one writer thread per
//!   peer in star mode, O(1) for the reactor event loop.
//!
//! With `NET_BENCH_GATE=1` the exit code is nonzero when the reactor's
//! pull p99 regresses past 1.5x the star baseline — the CI guard that
//! the p2p data plane never gets slower than the topology it replaces.

use insitu_fabric::FaultInjector;
use insitu_net::{recv_frame, send_frame, Frame, NetMetrics, Peer, Reactor};
use insitu_telemetry::{Json, Recorder};
use insitu_util::bytes::Bytes;
use insitu_util::shm::{self, MapRegion, RecordDesc, Ring, RingMem, ShmMap};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SMALL_FRAMES: usize = 50_000;
const PULL_RTTS: usize = 2_000;
const PULL_BYTES: usize = 1024;
const SOAK_CONNS: usize = 32;

fn pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let a = TcpStream::connect(addr).expect("connect loopback");
    let (b, _) = listener.accept().expect("accept loopback");
    a.set_nodelay(true).expect("nodelay");
    b.set_nodelay(true).expect("nodelay");
    (a, b)
}

fn metrics() -> NetMetrics {
    NetMetrics::new(&Recorder::disabled())
}

/// Count N frames off a blocking stream on a helper thread; returns the
/// join handle resolving to the receive-side elapsed time.
fn count_frames(mut stream: TcpStream, n: usize) -> std::thread::JoinHandle<Duration> {
    std::thread::spawn(move || {
        let injector = FaultInjector::none();
        let m = metrics();
        let start = Instant::now();
        for _ in 0..n {
            recv_frame(&mut stream, &injector, &m).expect("bench frame");
        }
        start.elapsed()
    })
}

/// Small-frame throughput of the star transport: a `Peer` writer thread
/// draining a queue, one write syscall per frame.
fn star_frames_per_s() -> f64 {
    let (tx_stream, rx_stream) = pair();
    let reader = count_frames(rx_stream, SMALL_FRAMES);
    let peer = Peer::spawn(
        tx_stream,
        FaultInjector::none(),
        metrics(),
        "bench-star".into(),
    )
    .expect("spawn peer");
    let start = Instant::now();
    for i in 0..SMALL_FRAMES {
        peer.send(Frame::RunWave { wave: i as u32 });
    }
    reader.join().expect("reader");
    let elapsed = start.elapsed();
    peer.close();
    SMALL_FRAMES as f64 / elapsed.as_secs_f64()
}

/// Small-frame throughput of the reactor: staged sends coalesce into
/// batched writes on the event-loop thread.
fn reactor_frames_per_s() -> f64 {
    let (tx_stream, rx_stream) = pair();
    let reader = count_frames(rx_stream, SMALL_FRAMES);
    let reactor =
        Reactor::spawn("bench-reactor", FaultInjector::none(), metrics()).expect("spawn reactor");
    let handle = reactor.handle();
    let token = handle.alloc_token();
    handle.add_stream(token, tx_stream, Box::new(|_| {}));
    let start = Instant::now();
    for i in 0..SMALL_FRAMES {
        handle.send(token, Frame::RunWave { wave: i as u32 });
    }
    reader.join().expect("reader");
    let elapsed = start.elapsed();
    reactor.shutdown();
    SMALL_FRAMES as f64 / elapsed.as_secs_f64()
}

fn pull_request(i: usize) -> Frame {
    Frame::PullRequest {
        name: 7,
        version: i as u64,
        piece: 3 << 32,
        from_node: 0,
    }
}

fn pull_data(version: u64) -> Frame {
    Frame::PullData {
        name: 7,
        version,
        piece: 3 << 32,
        owner: 3,
        to_node: 0,
        data: vec![0xA5; PULL_BYTES],
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// Pull round trips through the star topology: the consumer's request
/// crosses the hub to the owner and the 1 KiB reply crosses it back —
/// two store-and-forward hops each way.
fn star_pull_latencies() -> Vec<u64> {
    let (mut consumer, hub_consumer_side) = pair();
    let (hub_owner_side, mut owner) = pair();

    // The hub: blocking forwarder between its two connections.
    let hub = std::thread::spawn(move || {
        let injector = FaultInjector::none();
        let m = metrics();
        let mut from_consumer = hub_consumer_side.try_clone().expect("clone");
        let mut to_owner = hub_owner_side.try_clone().expect("clone");
        let fwd = std::thread::spawn(move || {
            for _ in 0..PULL_RTTS {
                let f = recv_frame(&mut from_consumer, &injector, &m).expect("hub recv");
                send_frame(&mut to_owner, &f, &injector, &m).expect("hub send");
            }
        });
        let injector = FaultInjector::none();
        let m = metrics();
        let mut from_owner = hub_owner_side;
        let mut to_consumer = hub_consumer_side;
        for _ in 0..PULL_RTTS {
            let f = recv_frame(&mut from_owner, &injector, &m).expect("hub recv");
            send_frame(&mut to_consumer, &f, &injector, &m).expect("hub send");
        }
        fwd.join().expect("hub forwarder");
    });

    // The owner: answers every request with a 1 KiB PullData.
    let owner_thread = std::thread::spawn(move || {
        let injector = FaultInjector::none();
        let m = metrics();
        for _ in 0..PULL_RTTS {
            match recv_frame(&mut owner, &injector, &m).expect("owner recv") {
                Frame::PullRequest { version, .. } => {
                    send_frame(&mut owner, &pull_data(version), &injector, &m).expect("owner send");
                }
                other => panic!("owner expected PullRequest, got kind {}", other.kind()),
            }
        }
    });

    let injector = FaultInjector::none();
    let m = metrics();
    let mut lat = Vec::with_capacity(PULL_RTTS);
    for i in 0..PULL_RTTS {
        let start = Instant::now();
        send_frame(&mut consumer, &pull_request(i), &injector, &m).expect("consumer send");
        recv_frame(&mut consumer, &injector, &m).expect("consumer recv");
        lat.push(start.elapsed().as_micros() as u64);
    }
    hub.join().expect("hub");
    owner_thread.join().expect("owner");
    lat.sort_unstable();
    lat
}

/// Pull round trips over the p2p direct link: the owner side is a
/// reactor (exactly as in a p2p run), the consumer dials it directly —
/// no intermediate hop.
fn reactor_pull_latencies() -> Vec<u64> {
    let reactor =
        Reactor::spawn("bench-owner", FaultInjector::none(), metrics()).expect("spawn reactor");
    let handle = reactor.handle();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind owner");
    let addr = listener.local_addr().expect("owner addr");
    {
        let reply = handle.clone();
        handle.add_listener(
            listener,
            Box::new(move |token, _addr| {
                let reply = reply.clone();
                Box::new(move |event| {
                    if let insitu_net::ConnEvent::Frame(Frame::PullRequest { version, .. }) = event
                    {
                        reply.send(token, pull_data(version));
                    }
                })
            }),
        );
    }

    let mut consumer = TcpStream::connect(addr).expect("dial owner");
    consumer.set_nodelay(true).expect("nodelay");
    let injector = FaultInjector::none();
    let m = metrics();
    let mut lat = Vec::with_capacity(PULL_RTTS);
    for i in 0..PULL_RTTS {
        let start = Instant::now();
        send_frame(&mut consumer, &pull_request(i), &injector, &m).expect("consumer send");
        recv_frame(&mut consumer, &injector, &m).expect("consumer recv");
        lat.push(start.elapsed().as_micros() as u64);
    }
    reactor.shutdown();
    lat.sort_unstable();
    lat
}

/// Pull round trips over the shared-memory plane: the request and the
/// doorbell control frame ride the direct socket exactly as in a real
/// same-host run, but the 1 KiB payload crosses a `/dev/shm` ring —
/// the producer pushes into the segment, the consumer's reply is a
/// zero-copy `Bytes` view borrowing the mapping.
fn shm_pull_latencies() -> Vec<u64> {
    let dir = shm::segment_dir();
    let path = dir.join(shm::segment_name(std::process::id(), 0xbe9c, 1, 0));
    let slots = 256u32;
    let arena = 1u64 << 20;
    let map = ShmMap::create(&path, Ring::required_len(slots, arena)).expect("create segment");
    let producer = Arc::new(Ring::create(RingMem::from_map(Arc::new(map)), slots, arena));
    // The consumer attaches through its own mapping of the same file,
    // exactly as a second process would.
    let consumer_map = ShmMap::open(&path).expect("open segment");
    let consumer_ring =
        Arc::new(Ring::attach(RingMem::from_map(Arc::new(consumer_map))).expect("attach segment"));

    // The owner: a reactor that answers every request by staging the
    // payload in the ring and ringing the doorbell over the socket.
    let reactor =
        Reactor::spawn("bench-shm-owner", FaultInjector::none(), metrics()).expect("spawn reactor");
    let handle = reactor.handle();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind owner");
    let addr = listener.local_addr().expect("owner addr");
    {
        let reply = handle.clone();
        let ring = Arc::clone(&producer);
        handle.add_listener(
            listener,
            Box::new(move |token, _addr| {
                let reply = reply.clone();
                let ring = Arc::clone(&ring);
                Box::new(move |event| {
                    if let insitu_net::ConnEvent::Frame(Frame::PullRequest { version, .. }) = event
                    {
                        let desc = RecordDesc {
                            name: 7,
                            version,
                            piece: 3 << 32,
                            owner: 3,
                        };
                        let payload = vec![0xA5u8; PULL_BYTES];
                        let seq = ring.push(&desc, &payload).expect("bench ring never fills");
                        reply.send(
                            token,
                            Frame::ShmDoorbell {
                                src_node: 1,
                                dst_node: 0,
                                segment: 1 << 32,
                                seq,
                            },
                        );
                    }
                })
            }),
        );
    }

    let mut consumer = TcpStream::connect(addr).expect("dial owner");
    consumer.set_nodelay(true).expect("nodelay");
    let injector = FaultInjector::none();
    let m = metrics();
    let mut lat = Vec::with_capacity(PULL_RTTS);
    for i in 0..PULL_RTTS {
        let start = Instant::now();
        send_frame(&mut consumer, &pull_request(i), &injector, &m).expect("consumer send");
        match recv_frame(&mut consumer, &injector, &m).expect("consumer recv") {
            Frame::ShmDoorbell { .. } => {}
            other => panic!("consumer expected ShmDoorbell, got kind {}", other.kind()),
        }
        let rec = consumer_ring.pop().expect("doorbell implies a record");
        let release_ring = Arc::clone(&consumer_ring);
        let range = rec.range;
        let region = MapRegion::new(
            consumer_ring.mem().clone(),
            rec.off,
            rec.len,
            Some(Box::new(move || release_ring.release(range))),
        );
        let bytes = Bytes::from_map(Arc::new(region));
        assert_eq!(bytes.as_slice().len(), PULL_BYTES);
        drop(bytes);
        lat.push(start.elapsed().as_micros() as u64);
    }
    reactor.shutdown();
    std::fs::remove_file(&path).ok();
    lat.sort_unstable();
    lat
}

/// OS thread count of this process, from `/proc/self/status`.
fn os_threads() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// Threads added to serve `SOAK_CONNS` connections star-style: one
/// `Peer` writer thread per connection.
fn star_threads_for_conns() -> u64 {
    let before = os_threads();
    let mut peers = Vec::new();
    let mut far_ends = Vec::new();
    for i in 0..SOAK_CONNS {
        let (near, far) = pair();
        peers.push(
            Peer::spawn(
                near,
                FaultInjector::none(),
                metrics(),
                format!("bench-star-{i}"),
            )
            .expect("spawn peer"),
        );
        far_ends.push(far);
    }
    let after = os_threads();
    for p in &peers {
        p.close();
    }
    after.saturating_sub(before)
}

/// Threads added to serve `SOAK_CONNS` connections reactor-style: the
/// event loop owns them all.
fn reactor_threads_for_conns() -> u64 {
    let before = os_threads();
    let reactor =
        Reactor::spawn("bench-soak", FaultInjector::none(), metrics()).expect("spawn reactor");
    let handle = reactor.handle();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    handle.add_listener(listener, Box::new(|_, _| Box::new(|_| {})));
    let mut conns = Vec::new();
    for _ in 0..SOAK_CONNS {
        let mut c = TcpStream::connect(addr).expect("dial");
        // One frame each, so every connection is accepted and adopted
        // by the loop before we count.
        let injector = FaultInjector::none();
        let m = metrics();
        send_frame(&mut c, &Frame::RunWave { wave: 1 }, &injector, &m).expect("send");
        conns.push(c);
    }
    // Adoption is asynchronous; give the loop a beat to drain accepts.
    std::thread::sleep(Duration::from_millis(200));
    let after = os_threads();
    reactor.shutdown();
    after.saturating_sub(before)
}

/// Latency rounds per transport; each side's reported p50/p99 is the
/// minimum across rounds.
const LAT_ROUNDS: usize = 3;

/// Run `measure` LAT_ROUNDS times and keep the lowest p50 and p99 seen.
fn best_percentiles(measure: fn() -> Vec<u64>) -> (u64, u64) {
    let mut best = (u64::MAX, u64::MAX);
    for _ in 0..LAT_ROUNDS {
        let lat = measure();
        best.0 = best.0.min(percentile(&lat, 0.50));
        best.1 = best.1.min(percentile(&lat, 0.99));
    }
    best
}

fn main() {
    println!("net_bench: star vs reactor over loopback");

    let star_fps = star_frames_per_s();
    let reactor_fps = reactor_frames_per_s();
    println!(
        "frames/s:  star {star_fps:>12.0}   reactor {reactor_fps:>12.0}  ({SMALL_FRAMES} small frames)"
    );

    // Best of LAT_ROUNDS independent rounds per side: a shared runner's
    // scheduler can smear any single round's tail by 5x, but it can only
    // ever *add* latency, so the per-round minimum is the stable
    // estimate of what the transport actually costs.
    let (star_p50, star_p99) = best_percentiles(star_pull_latencies);
    let (reactor_p50, reactor_p99) = best_percentiles(reactor_pull_latencies);
    let (shm_p50, shm_p99) = best_percentiles(shm_pull_latencies);
    println!(
        "pull RTT:  star p50 {star_p50} us p99 {star_p99} us   reactor p50 {reactor_p50} us p99 {reactor_p99} us   shm p50 {shm_p50} us p99 {shm_p99} us  ({PULL_RTTS} x {PULL_BYTES} B, best of {LAT_ROUNDS} rounds)"
    );

    let star_threads = star_threads_for_conns();
    let reactor_threads = reactor_threads_for_conns();
    println!(
        "threads:   star +{star_threads}   reactor +{reactor_threads}  (for {SOAK_CONNS} connections)"
    );

    let payload = Json::obj()
        .field("figure", "net")
        .field(
            "title",
            "Wire transport: star (thread-per-peer) vs reactor (p2p data plane)",
        )
        .field("small_frames", SMALL_FRAMES as u64)
        .field("star_frames_per_s", star_fps)
        .field("reactor_frames_per_s", reactor_fps)
        .field("pull_rtts", PULL_RTTS as u64)
        .field("pull_bytes", PULL_BYTES as u64)
        .field("star_pull_p50_us", star_p50)
        .field("star_pull_p99_us", star_p99)
        .field("reactor_pull_p50_us", reactor_p50)
        .field("reactor_pull_p99_us", reactor_p99)
        .field("shm_pull_p50_us", shm_p50)
        .field("shm_pull_p99_us", shm_p99)
        .field("conns", SOAK_CONNS as u64)
        .field("star_threads_added", star_threads)
        .field("reactor_threads_added", reactor_threads);
    insitu_bench::emit::emit("net", &payload);

    if std::env::var("NET_BENCH_GATE").as_deref() == Ok("1") {
        // The reactor's direct pull path must not regress past the
        // two-hop star baseline (generous 1.5x headroom for CI noise).
        let ceiling = star_p99.saturating_mul(3) / 2;
        if reactor_p99 > ceiling {
            eprintln!(
                "GATE FAIL: reactor pull p99 {reactor_p99} us exceeds 1.5x star baseline ({star_p99} us)"
            );
            std::process::exit(1);
        }
        println!("gate:      reactor pull p99 within 1.5x star baseline");
    }
    std::io::stdout().flush().ok();
}
