//! Regenerate the paper's Figure 16 at its evaluation configuration.
//! Prints the table (see `insitu_bench::report`) and writes
//! `BENCH_fig16.json`.

fn main() {
    let rows = insitu_bench::report::print_fig16();
    insitu_bench::emit::emit_fig16(&rows);
}
