//! Regenerate the paper's Figure 16 at its evaluation configuration.
//! See `insitu_bench::report` for what is printed.

fn main() {
    insitu_bench::report::print_fig16();
}
