//! Run every evaluation figure in sequence and print the full report —
//! the source of EXPERIMENTS.md's measured numbers.
//!
//! ```text
//! cargo run --release -p insitu-bench --bin all_figures
//! ```

use insitu_bench::report;

fn main() {
    println!("=== Reproduction report: all evaluation figures ===");
    println!("(modeled executor; ledger semantics verified byte-exact against the");
    println!(" threaded executor by tests/integration_equivalence.rs)\n");
    report::print_fig08();
    println!();
    report::print_fig09();
    println!();
    report::print_fig10();
    println!();
    report::print_fig11();
    println!();
    report::print_fig12();
    println!();
    report::print_fig13();
    println!();
    report::print_fig14();
    println!();
    report::print_fig15();
    println!();
    report::print_fig16();
}
