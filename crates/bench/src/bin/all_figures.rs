//! Run every evaluation figure in sequence and print the full report —
//! the source of EXPERIMENTS.md's measured numbers. Also writes every
//! `BENCH_figNN.json` (to `BENCH_OUT_DIR` or the current directory).
//!
//! ```text
//! cargo run --release -p insitu-bench --bin all_figures
//! ```

use insitu_bench::{emit, report};

fn main() {
    println!("=== Reproduction report: all evaluation figures ===");
    println!("(modeled executor; ledger semantics verified byte-exact against the");
    println!(" threaded executor by tests/integration_equivalence.rs)\n");
    emit::emit_fig08(&report::print_fig08());
    println!();
    emit::emit_fig09(&report::print_fig09());
    println!();
    emit::emit_fig10(&report::print_fig10());
    println!();
    emit::emit_fig11(&report::print_fig11());
    println!();
    emit::emit_fig12(&report::print_fig12());
    println!();
    emit::emit_fig13(&report::print_fig13());
    println!();
    emit::emit_fig14(&report::print_fig14());
    println!();
    emit::emit_fig15(&report::print_fig15());
    println!();
    emit::emit_fig16(&report::print_fig16());
}
