//! Regenerate the paper's Figure 13 at its evaluation configuration.
//! Prints the table (see `insitu_bench::report`) and writes
//! `BENCH_fig13.json`.

fn main() {
    let rows = insitu_bench::report::print_fig13();
    insitu_bench::emit::emit_fig13(&rows);
}
