//! Extra experiment: quantify the paper's Related-Work claim that CoDS's
//! direct in-memory coupling beats file-based data sharing through the
//! parallel filesystem ("Compared to the file-based approach, our
//! framework provides faster and more scalable data sharing service").
//! Prints the table and writes `BENCH_extra_file_baseline.json`.

use insitu_bench::{emit, extra_file_baseline, table, Size};

fn main() {
    let rows = extra_file_baseline(Size::paper(), Size::paper_sequential());
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                table::gib(r.bytes),
                format!("{:.1}", r.memory_ms),
                format!("{:.1}", r.file_ms),
                format!("{:.1}x", r.file_ms / r.memory_ms),
            ]
        })
        .collect();
    table::print(
        "Extra — in-memory (CoDS) vs file-based coupling (Spider/Lustre-class filesystem)",
        &[
            "scenario",
            "coupled GiB",
            "memory (ms)",
            "file (ms)",
            "file penalty",
        ],
        &out,
    );
    println!("paper claim (§VI): the in-memory shared space is faster and more scalable than");
    println!("coupling through files; memory numbers are the data-centric retrieve times");
    emit::emit_extra_file_baseline(&rows);
}
