//! Regenerate the paper's Figure 11 at its evaluation configuration.
//! Prints the table (see `insitu_bench::report`) and writes
//! `BENCH_fig11.json`.

fn main() {
    let rows = insitu_bench::report::print_fig11();
    insitu_bench::emit::emit_fig11(&rows);
}
