//! Regenerate the paper's Figure 11 at its evaluation configuration.
//! See `insitu_bench::report` for what is printed.

fn main() {
    insitu_bench::report::print_fig11();
}
