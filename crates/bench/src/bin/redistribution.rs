//! M×N redistribution throughput: sequential vs overlapped pulls.
//!
//! For each redistribution pattern the bench stages every producer piece
//! except one deliberately *slow* producer per consumer — chosen as the
//! producer whose transfer op sorts first in that consumer's schedule, so
//! its piece lands last while heading the op list. A sequential pull loop
//! blocks on that first op and performs every copy after the stall; the
//! overlapped path (`pull_many`) assembles the already-arrived pieces
//! during the stall and pays only the slow piece's copy afterwards.
//!
//! Emits `BENCH_redistribution.json` with ops/s and bytes/s per
//! pattern × mode plus the overlapped-vs-sequential speedup.
//!
//! With `--procs` the bench additionally runs the distributed
//! redistribution workflow (hub + one joiner per node over loopback,
//! round-robin mapping so every coupling pull crosses nodes) twice —
//! once with the same-host shared-memory plane on, once forced onto the
//! socket — and appends a `distrib` row per transport with the measured
//! wall time, `net.shm_frames`, zero-copy `cods.view_hits`, and the
//! shm-vs-loopback speedup.

use insitu_bench::emit;
use insitu_cods::{CodsConfig, CodsSpace, Dht};
use insitu_dart::DartRuntime;
use insitu_domain::layout::{fill_with, linear_index};
use insitu_domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_fabric::{ClientId, MachineSpec, Placement, TransferLedger};
use insitu_sfc::HilbertCurve;
use insitu_telemetry::Json;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Versions redistributed per pattern × mode; elapsed time is summed.
const VERSIONS: u64 = 3;

struct Pattern {
    name: &'static str,
    /// Square domain side (cells); field data is `side * side * 8` bytes.
    side: u64,
    /// Producer process grid.
    pgrid: [u64; 2],
    /// Consumer process grid (`[1, 1]` = one consumer gathers the domain).
    cgrid: [u64; 2],
    /// How late each slow producer's piece lands.
    stall: Duration,
}

const PATTERNS: &[Pattern] = &[
    Pattern {
        name: "4x1",
        side: 2048,
        pgrid: [2, 2],
        cgrid: [1, 1],
        stall: Duration::from_millis(10),
    },
    Pattern {
        name: "8x8->1",
        side: 2048,
        pgrid: [8, 8],
        cgrid: [1, 1],
        stall: Duration::from_millis(10),
    },
    Pattern {
        name: "64->16",
        side: 2048,
        pgrid: [8, 8],
        cgrid: [4, 4],
        stall: Duration::from_millis(10),
    },
];

fn tag(p: &[u64]) -> f64 {
    (p[0].wrapping_mul(131).wrapping_add(p[1])) as f64
}

/// Pull `query` as consumer `client` and spot-check its corner cells.
fn gather(
    space: &CodsSpace,
    client: ClientId,
    version: u64,
    query: &BoundingBox,
    pdec: &Decomposition,
    pclients: &[ClientId],
) -> u64 {
    let (data, _) = space
        .get_cont(client, 2, "f", version, query, pdec, pclients)
        .unwrap();
    for corner in [
        [query.lb(0), query.lb(1)],
        [query.lb(0), query.ub(1)],
        [query.ub(0), query.lb(1)],
        [query.ub(0), query.ub(1)],
    ] {
        assert_eq!(data[linear_index(query, &corner)], tag(&corner));
    }
    query.num_cells() as u64 * 8
}

struct RunStats {
    elapsed: Duration,
    gets: u64,
    bytes: u64,
}

fn run(pat: &Pattern, sequential: bool) -> RunStats {
    let producers = pat.pgrid[0] * pat.pgrid[1];
    let consumers = pat.cgrid[0] * pat.cgrid[1];
    let clients = (producers + consumers) as u32;
    let placement = Arc::new(Placement::pack_sequential(
        MachineSpec::new(clients.div_ceil(4), 4),
        clients,
    ));
    let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
    let order = pat.side.next_power_of_two().trailing_zeros();
    let dht = Dht::new(Box::new(HilbertCurve::new(2, order)), vec![0]);
    let space = CodsSpace::new(
        dart,
        dht,
        CodsConfig {
            get_timeout: Duration::from_secs(30),
            sequential_pulls: sequential,
            ..Default::default()
        },
    );
    let domain = BoundingBox::from_sizes(&[pat.side, pat.side]);
    let pdec = Decomposition::new(domain, ProcessGrid::new(&pat.pgrid), Distribution::Blocked);
    let cdec = Decomposition::new(domain, ProcessGrid::new(&pat.cgrid), Distribution::Blocked);
    let pclients: Arc<Vec<ClientId>> = Arc::new((0..producers as ClientId).collect());

    // One slow producer per consumer: the lowest-ranked producer whose
    // piece intersects the consumer's query heads that consumer's
    // (src_client, piece)-sorted schedule.
    let slow: BTreeSet<u64> = (0..consumers)
        .map(|ci| {
            let q = cdec.blocked_box(ci).unwrap();
            (0..producers)
                .find(|&r| pdec.blocked_box(r).unwrap().intersect(&q).is_some())
                .unwrap()
        })
        .collect();

    let pieces: Arc<Vec<(BoundingBox, Vec<f64>)>> = Arc::new(
        (0..producers)
            .map(|r| {
                let b = pdec.blocked_box(r).unwrap();
                let data = fill_with(&b, tag);
                (b, data)
            })
            .collect(),
    );

    let mut elapsed = Duration::ZERO;
    let mut gets = 0u64;
    let mut bytes = 0u64;
    for v in 0..VERSIONS {
        // Fast pieces are staged before the clock starts; each slow
        // piece lands `stall` after it.
        for r in 0..producers {
            if !slow.contains(&r) {
                let (b, data) = &pieces[r as usize];
                space
                    .put_cont(r as ClientId, 1, "f", v, 0, b, data)
                    .unwrap();
            }
        }
        let t0 = Instant::now();
        let late: Vec<_> = slow
            .iter()
            .map(|&r| {
                let space = Arc::clone(&space);
                let pieces = Arc::clone(&pieces);
                let stall = pat.stall;
                std::thread::spawn(move || {
                    std::thread::sleep(stall);
                    let (b, data) = &pieces[r as usize];
                    space
                        .put_cont(r as ClientId, 1, "f", v, 0, b, data)
                        .unwrap();
                })
            })
            .collect();
        if consumers == 1 {
            bytes += gather(&space, producers as ClientId, v, &domain, &pdec, &pclients);
        } else {
            let got: Vec<_> = (0..consumers)
                .map(|ci| {
                    let space = Arc::clone(&space);
                    let pclients = Arc::clone(&pclients);
                    let query = cdec.blocked_box(ci).unwrap();
                    std::thread::spawn(move || {
                        gather(
                            &space,
                            (producers + ci) as ClientId,
                            v,
                            &query,
                            &pdec,
                            &pclients,
                        )
                    })
                })
                .collect();
            for h in got {
                bytes += h.join().unwrap();
            }
        }
        elapsed += t0.elapsed();
        gets += consumers;
        for h in late {
            h.join().unwrap();
        }
    }
    RunStats {
        elapsed,
        gets,
        bytes,
    }
}

fn row(pat: &Pattern, mode: &str, s: &RunStats, speedup: f64) -> Json {
    let secs = s.elapsed.as_secs_f64();
    println!(
        "{:>8}  {:>10}  {:>5} gets  {:>9.1} ms  {:>8.1} ops/s  {:>8.1} MiB/s  {:>5.2}x",
        pat.name,
        mode,
        s.gets,
        secs * 1e3,
        s.gets as f64 / secs,
        s.bytes as f64 / secs / (1 << 20) as f64,
        speedup,
    );
    Json::obj()
        .field("pattern", pat.name)
        .field("mode", mode)
        .field("producers", pat.pgrid[0] * pat.pgrid[1])
        .field("consumers", pat.cgrid[0] * pat.cgrid[1])
        .field("gets", s.gets)
        .field("bytes", s.bytes)
        .field("elapsed_ms", secs * 1e3)
        .field("ops_per_s", s.gets as f64 / secs)
        .field("bytes_per_s", s.bytes as f64 / secs)
        .field("speedup_vs_sequential", speedup)
}

/// The distributed comparison workload: a simulation couples to an
/// analysis over a *mirrored* process grid, so every consumer rank's
/// query exactly covers one producer piece — the shape where the shm
/// consumer assembles zero-copy (`FieldData::View` borrowing the
/// mapped segment) while the loopback consumer pays a socket round
/// trip plus copy per 512 KiB piece.
const DISTRIB_DAG: &str = "\
APP_ID 1
APP_ID 2
BUNDLE 1 2
";
const DISTRIB_CFG: &str = "\
CORES_PER_NODE 4
DOMAIN 128 64 32
HALO 0
ITERATIONS 4
APP 1 GRID 2 2 1 DIST blocked
APP 2 GRID 2 2 1 DIST blocked
COUPLING VAR f PRODUCER 1 CONSUMERS 2 MODE concurrent
";

/// One distributed run of the mirror workflow: hub in this thread, one
/// joiner thread per node over loopback, round-robin mapping so
/// coupling pulls cross nodes. Returns the serve-side wall time plus
/// the counters the shm-vs-loopback rows report.
fn run_distributed(shm: bool) -> (Duration, u64, u64, u64) {
    use insitu::{join, serve, JoinOptions, MappingStrategy, ServeOptions};
    use insitu_telemetry::Recorder;

    let dag = DISTRIB_DAG.to_string();
    let cfg = DISTRIB_CFG.to_string();
    let scenario = insitu_cli::build_scenario(&dag, &cfg).expect("build scenario");
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let mut joiners = Vec::new();
    for node in 0..2u32 {
        let addr = addr.clone();
        let sc = scenario.clone();
        joiners.push(std::thread::spawn(move || {
            join(
                &addr,
                node,
                move |_, _| Ok(sc),
                &JoinOptions {
                    timeout: Duration::from_secs(60),
                    recorder: Recorder::enabled(),
                    shm,
                    ..JoinOptions::default()
                },
            )
        }));
    }
    let t0 = Instant::now();
    let outcome = serve(
        &listener,
        &dag,
        &cfg,
        &scenario,
        &ServeOptions {
            strategy: MappingStrategy::RoundRobin,
            timeout: Duration::from_secs(60),
            shm,
            ..ServeOptions::default()
        },
    )
    .expect("distributed run");
    let elapsed = t0.elapsed();
    for j in joiners {
        j.join().expect("joiner thread").expect("joiner run");
    }
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    let sum = |key: &str| -> u64 {
        outcome
            .telemetry
            .iter()
            .map(|t| t.counters.get(key).copied().unwrap_or(0))
            .sum()
    };
    (
        elapsed,
        outcome.gets,
        sum("net.shm_frames"),
        sum("cods.view_hits"),
    )
}

/// Distributed rounds per transport; the reported time is the minimum,
/// for the same reason net_bench keeps per-round minima.
const DISTRIB_ROUNDS: usize = 3;

fn best_distributed(shm: bool) -> (Duration, u64, u64, u64) {
    let mut best = run_distributed(shm);
    for _ in 1..DISTRIB_ROUNDS {
        let next = run_distributed(shm);
        if next.0 < best.0 {
            best = next;
        }
    }
    best
}

fn distrib_row(mode: &str, r: &(Duration, u64, u64, u64), speedup: f64) -> Json {
    let (elapsed, gets, shm_frames, view_hits) = *r;
    let secs = elapsed.as_secs_f64();
    println!(
        "{:>8}  {:>10}  {:>5} gets  {:>9.1} ms  shm_frames {:>4}  view_hits {:>3}  {:>5.2}x",
        "distrib",
        mode,
        gets,
        secs * 1e3,
        shm_frames,
        view_hits,
        speedup,
    );
    Json::obj()
        .field("pattern", "distrib")
        .field("mode", mode)
        .field("gets", gets)
        .field("elapsed_ms", secs * 1e3)
        .field("shm_frames", shm_frames)
        .field("view_hits", view_hits)
        .field("speedup_vs_loopback", speedup)
}

fn main() {
    let procs = std::env::args().any(|a| a == "--procs");
    println!(
        "M x N redistribution: one slow producer per consumer, {} versions",
        VERSIONS
    );
    let mut rows = Vec::new();
    for pat in PATTERNS {
        let seq = run(pat, true);
        let ovl = run(pat, false);
        let speedup = seq.elapsed.as_secs_f64() / ovl.elapsed.as_secs_f64();
        rows.push(row(pat, "sequential", &seq, 1.0));
        rows.push(row(pat, "overlapped", &ovl, speedup));
    }
    if procs {
        println!("distributed redistribution: shm vs loopback (best of {DISTRIB_ROUNDS})");
        let loopback = best_distributed(false);
        let shm = best_distributed(true);
        assert_eq!(loopback.2, 0, "loopback run must not touch shared memory");
        assert!(shm.2 > 0, "shm run must carry frames over shared memory");
        assert!(
            shm.3 > 0,
            "mirror-grid pulls must assemble zero-copy views of the mapping"
        );
        let speedup = loopback.0.as_secs_f64() / shm.0.as_secs_f64();
        rows.push(distrib_row("loopback", &loopback, 1.0));
        rows.push(distrib_row("shm", &shm, speedup));
    }
    emit::emit(
        "redistribution",
        &Json::obj()
            .field("figure", "redistribution")
            .field(
                "title",
                "M x N redistribution: sequential vs overlapped pulls",
            )
            .field("rows", Json::Arr(rows)),
    );
}
