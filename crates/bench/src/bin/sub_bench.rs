//! Standing-query benchmark: push subscriptions vs polling consumers.
//!
//! One producer puts a paced stream of versions of a 128x128 field into
//! a [`CodsSpace`]; N monitors (1, 4 and 8) want every version as it
//! appears. Two delivery planes are measured, written to
//! `BENCH_sub.json` (honours `BENCH_OUT_DIR`):
//!
//! - **push** — each monitor holds a standing query
//!   (`subscribe_local`); the producer's `put` fans the fragment
//!   straight into every sink and the monitor blocks in `sub_take`.
//!   Delivery latency is put-start to take-return.
//! - **poll** — no subscriptions: each monitor probes the space with a
//!   short-deadline `get` (the space's `get_timeout` is the probe
//!   budget) and sleeps `POLL_INTERVAL` between misses, the classic
//!   pull-based discovery loop a consumer runs when the space cannot
//!   notify it. Latency is put-start to the successful `get`'s return,
//!   so it carries both the discovery delay and the retrieve itself.
//!
//! Each (mode, N) pair runs `ROUNDS` independent rounds and keeps the
//! *minimum* p50/p99 — load spikes on a shared runner only ever add
//! latency. With `SUB_BENCH_GATE=1` the exit code is nonzero unless
//! push beats poll on median latency at 4 and 8 subscribers — the CI
//! anchor that the subscription plane actually removes the polling tax
//! it was built to remove.

use insitu_cods::{CodsConfig, CodsSpace, Dht};
use insitu_dart::DartRuntime;
use insitu_domain::{layout, BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_fabric::{MachineSpec, Placement, TransferLedger};
use insitu_sfc::HilbertCurve;
use insitu_sub::TakeResult;
use insitu_telemetry::Json;
use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Versions streamed per round.
const VERSIONS: u64 = 100;
/// Producer pacing: one version per period, a paced simulation step.
const PUT_PERIOD: Duration = Duration::from_micros(1000);
/// Poll-mode discovery sleep between probe misses (one put period: the
/// tightest interval a polling monitor would reasonably run).
const POLL_INTERVAL: Duration = Duration::from_micros(1000);
/// Independent rounds per (mode, N); minimum percentiles kept.
const ROUNDS: usize = 3;
/// Subscriber counts measured.
const SUB_COUNTS: [usize; 3] = [1, 4, 8];
/// Field side: 128x128 f64 = 128 KiB per version.
const SIDE: u64 = 128;

/// Producer client 0 plus up to 8 monitors on one 16-core node.
fn space(get_timeout: Duration) -> Arc<CodsSpace> {
    let placement = Arc::new(Placement::pack_sequential(MachineSpec::new(1, 16), 16));
    let dart = DartRuntime::new(placement, Arc::new(TransferLedger::new()));
    let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0]);
    CodsSpace::new(
        dart,
        dht,
        CodsConfig {
            get_timeout,
            ..Default::default()
        },
    )
}

fn domain() -> BoundingBox {
    BoundingBox::from_sizes(&[SIDE, SIDE])
}

/// Single-rank producer decomposition: one piece per version.
fn producer_dec() -> Decomposition {
    Decomposition::new(domain(), ProcessGrid::new(&[1, 1]), Distribution::Blocked)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One round's result: delivery latencies (us, every subscriber x every
/// version), total producer time inside `put`, and poll probe misses.
struct Round {
    latencies: Vec<u64>,
    put_us: u64,
    probe_misses: u64,
}

/// Run the producer against `consume`, which each monitor thread runs
/// per version; `t0[v]` is the put-start instant monitors measure from.
fn run_round<F>(space: &Arc<CodsSpace>, nsubs: usize, consume: F) -> Round
where
    F: Fn(&CodsSpace, usize, u64, &[Mutex<Option<Instant>>]) -> (u64, u64) + Send + Sync + 'static,
{
    let t0: Arc<Vec<Mutex<Option<Instant>>>> =
        Arc::new((0..VERSIONS).map(|_| Mutex::new(None)).collect());
    let consume = Arc::new(consume);
    let mut monitors = Vec::new();
    for m in 0..nsubs {
        let space = Arc::clone(space);
        let t0 = Arc::clone(&t0);
        let consume = Arc::clone(&consume);
        monitors.push(std::thread::spawn(move || {
            let mut lat = Vec::with_capacity(VERSIONS as usize);
            let mut misses = 0u64;
            for v in 0..VERSIONS {
                let (us, m_misses) = consume(&space, m, v, &t0);
                lat.push(us);
                misses += m_misses;
            }
            (lat, misses)
        }));
    }

    let bbox = domain();
    let mut put_us = 0u64;
    for v in 0..VERSIONS {
        let data = layout::fill_with(&bbox, |p| (v as f64) + (p[0] * SIDE + p[1]) as f64);
        let start = Instant::now();
        *t0[v as usize].lock().unwrap() = Some(start);
        space
            .put_cont(0, 1, "bench", v, 0, &bbox, &data)
            .expect("bench put");
        put_us += start.elapsed().as_micros() as u64;
        std::thread::sleep(PUT_PERIOD);
    }

    let mut latencies = Vec::new();
    let mut probe_misses = 0u64;
    for h in monitors {
        let (lat, misses) = h.join().expect("monitor thread");
        latencies.extend(lat);
        probe_misses += misses;
    }
    latencies.sort_unstable();
    Round {
        latencies,
        put_us,
        probe_misses,
    }
}

/// Push mode: `nsubs` standing queries over the whole domain, stride 1.
fn push_round(nsubs: usize) -> Round {
    let space = space(Duration::from_secs(5));
    let handles: Vec<_> = (0..nsubs)
        .map(|m| space.subscribe_local(1 + m as u32, 2, "bench", &domain(), 1, VERSIONS as usize))
        .collect();
    let handles = Arc::new(handles);
    let take_handles = Arc::clone(&handles);
    let round = run_round(&space, nsubs, move |space, m, v, t0| {
        match space.sub_take(&take_handles[m], v, Duration::from_secs(5)) {
            TakeResult::Data(data) => {
                let start = t0[v as usize].lock().unwrap().expect("put precedes take");
                assert_eq!(data.len() as u64, SIDE * SIDE);
                (start.elapsed().as_micros() as u64, 0)
            }
            other => panic!("push take of v{v} failed: {other:?}"),
        }
    });
    for h in handles.iter() {
        space.unsubscribe(h);
    }
    round
}

/// Poll mode: probe with a short-deadline get, sleep on every miss.
fn poll_round(nsubs: usize) -> Round {
    // The probe budget: long enough to complete a retrieve of staged
    // data, short enough that a missing version returns immediately
    // instead of camping on the space.
    let space = space(Duration::from_micros(50));
    let pdec = producer_dec();
    run_round(&space, nsubs, move |space, m, v, t0| {
        let client = 1 + m as u32;
        let mut misses = 0u64;
        loop {
            match space.get_cont(client, 2, "bench", v, &domain(), &pdec, &[0]) {
                Ok((data, _)) => {
                    let start = t0[v as usize].lock().unwrap().expect("put precedes get");
                    assert_eq!(data.len() as u64, SIDE * SIDE);
                    return (start.elapsed().as_micros() as u64, misses);
                }
                Err(_) => {
                    misses += 1;
                    assert!(misses < 1_000_000, "version {v} never appeared");
                    std::thread::sleep(POLL_INTERVAL);
                }
            }
        }
    })
}

/// Best-of-rounds summary for one (mode, N) pair.
struct Summary {
    p50: u64,
    p99: u64,
    put_us_per_version: u64,
    probe_misses: u64,
}

fn measure(rounds: impl Fn() -> Round) -> Summary {
    let mut best = Summary {
        p50: u64::MAX,
        p99: u64::MAX,
        put_us_per_version: u64::MAX,
        probe_misses: 0,
    };
    for _ in 0..ROUNDS {
        let r = rounds();
        best.p50 = best.p50.min(percentile(&r.latencies, 0.50));
        best.p99 = best.p99.min(percentile(&r.latencies, 0.99));
        best.put_us_per_version = best.put_us_per_version.min(r.put_us / VERSIONS);
        best.probe_misses = best.probe_misses.max(r.probe_misses);
    }
    best
}

fn main() {
    println!(
        "sub_bench: push (standing query) vs poll ({} versions x {} B, best of {ROUNDS} rounds)",
        VERSIONS,
        SIDE * SIDE * 8
    );

    let mut rows = Vec::new();
    let mut gate_ok = true;
    for &n in &SUB_COUNTS {
        let push = measure(|| push_round(n));
        let poll = measure(|| poll_round(n));
        println!(
            "subs={n}:  push p50 {:>5} us p99 {:>5} us (put {:>4} us/ver)   poll p50 {:>5} us p99 {:>5} us (put {:>4} us/ver, {} probe misses)",
            push.p50, push.p99, push.put_us_per_version,
            poll.p50, poll.p99, poll.put_us_per_version, poll.probe_misses
        );
        if n >= 4 && push.p50 >= poll.p50 {
            gate_ok = false;
        }
        rows.push(
            Json::obj()
                .field("subscribers", n as u64)
                .field("push_p50_us", push.p50)
                .field("push_p99_us", push.p99)
                .field("push_put_us_per_version", push.put_us_per_version)
                .field("poll_p50_us", poll.p50)
                .field("poll_p99_us", poll.p99)
                .field("poll_put_us_per_version", poll.put_us_per_version)
                .field("poll_probe_misses", poll.probe_misses),
        );
    }

    let payload = Json::obj()
        .field("figure", "sub")
        .field(
            "title",
            "Standing queries: push delivery vs poll-based discovery",
        )
        .field("versions", VERSIONS)
        .field("payload_bytes", SIDE * SIDE * 8)
        .field("put_period_us", PUT_PERIOD.as_micros() as u64)
        .field("poll_interval_us", POLL_INTERVAL.as_micros() as u64)
        .field("rows", Json::Arr(rows));
    insitu_bench::emit::emit("sub", &payload);

    if std::env::var("SUB_BENCH_GATE").as_deref() == Ok("1") {
        if !gate_ok {
            eprintln!("GATE FAIL: push median does not beat poll median at >= 4 subscribers");
            std::process::exit(1);
        }
        println!("gate:      push beats poll on median latency at 4 and 8 subscribers");
    }
    std::io::stdout().flush().ok();
}
