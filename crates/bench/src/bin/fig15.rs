//! Regenerate the paper's Figure 15 at its evaluation configuration.
//! Prints the table (see `insitu_bench::report`) and writes
//! `BENCH_fig15.json`.

fn main() {
    let rows = insitu_bench::report::print_fig15();
    insitu_bench::emit::emit_fig15(&rows);
}
