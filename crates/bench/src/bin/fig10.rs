//! Regenerate the paper's Figure 10 at its evaluation configuration.
//! Prints the table (see `insitu_bench::report`) and writes
//! `BENCH_fig10.json`.

fn main() {
    let rows = insitu_bench::report::print_fig10();
    insitu_bench::emit::emit_fig10(&rows);
}
