//! Regenerate the paper's Figure 08 at its evaluation configuration.
//! Prints the table (see `insitu_bench::report`) and writes
//! `BENCH_fig08.json`.

fn main() {
    let rows = insitu_bench::report::print_fig08();
    insitu_bench::emit::emit_fig08(&rows);
}
