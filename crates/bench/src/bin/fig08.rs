//! Regenerate the paper's Figure 08 at its evaluation configuration.
//! See `insitu_bench::report` for what is printed.

fn main() {
    insitu_bench::report::print_fig08();
}
