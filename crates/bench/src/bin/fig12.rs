//! Regenerate the paper's Figure 12 at its evaluation configuration.
//! Prints the table (see `insitu_bench::report`) and writes
//! `BENCH_fig12.json`.

fn main() {
    let rows = insitu_bench::report::print_fig12();
    insitu_bench::emit::emit_fig12(&rows);
}
