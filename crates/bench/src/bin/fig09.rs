//! Regenerate the paper's Figure 09 at its evaluation configuration.
//! Prints the table (see `insitu_bench::report`) and writes
//! `BENCH_fig09.json`.

fn main() {
    let rows = insitu_bench::report::print_fig09();
    insitu_bench::emit::emit_fig09(&rows);
}
