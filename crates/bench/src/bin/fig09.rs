//! Regenerate the paper's Figure 09 at its evaluation configuration.
//! See `insitu_bench::report` for what is printed.

fn main() {
    insitu_bench::report::print_fig09();
}
