//! Printing of every figure's rows — shared by the per-figure binaries
//! and the `all_figures` report so they can never disagree. Each
//! `print_figNN` returns the rows it printed so callers can also emit
//! the machine-readable `BENCH_figNN.json` without recomputing.

use crate::experiments::*;
use crate::table;

/// Print Fig. 8 at the paper's configuration.
pub fn print_fig08() -> Vec<CouplingRow> {
    let rows = fig08(Size::paper());
    let mut out = Vec::new();
    for pair in rows.chunks(2) {
        let (rr, dc) = (&pair[0], &pair[1]);
        out.push(vec![
            rr.pattern.clone(),
            table::gib(rr.network_bytes),
            table::gib(dc.network_bytes),
            format!(
                "{:.0}%",
                100.0 * (1.0 - dc.network_bytes as f64 / rr.network_bytes as f64)
            ),
        ]);
    }
    table::print(
        "Fig. 8 — concurrent coupling: coupled data over the network (GiB), CAP1=512/CAP2=64, 8 GiB total",
        &["pattern (producer/consumer)", "round-robin", "data-centric", "reduction"],
        &out,
    );
    println!(
        "paper shape: ~80% less network data for matched patterns; little gain when mismatched"
    );
    rows
}

/// Print Fig. 9 at the paper's configuration.
pub fn print_fig09() -> Vec<CouplingRow> {
    let rows = fig09(Size::paper_sequential());
    let mut out = Vec::new();
    for pair in rows.chunks(2) {
        let (rr, dc) = (&pair[0], &pair[1]);
        out.push(vec![
            rr.pattern.clone(),
            table::gib(rr.network_bytes),
            table::gib(dc.network_bytes),
            format!(
                "{:.0}%",
                100.0 * (1.0 - dc.network_bytes as f64 / rr.network_bytes as f64)
            ),
        ]);
    }
    table::print(
        "Fig. 9 — sequential coupling: coupled data over the network (GiB), SAP1=512 -> SAP2=128 + SAP3=384, 16 GiB total",
        &["pattern (producer/consumer)", "round-robin", "data-centric", "reduction"],
        &out,
    );
    println!(
        "paper shape: ~90% less network data for matched patterns; little gain when mismatched"
    );
    rows
}

/// Print Fig. 10 at the paper's configuration.
pub fn print_fig10() -> Vec<FanoutRow> {
    let rows = fig10(Size::paper());
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.pattern.clone(),
                format!("{:.1}", r.avg_fanout),
                r.max_fanout.to_string(),
                if r.max_fanout <= 12 {
                    "yes".into()
                } else {
                    "no".into()
                },
            ]
        })
        .collect();
    table::print(
        "Fig. 10 — coupling fan-out per consumer task (CAP1=512 / CAP2=64, 12-core nodes)",
        &[
            "pattern (producer/consumer)",
            "avg producers contacted",
            "max",
            "fits one node?",
        ],
        &out,
    );
    println!("paper shape: mismatched distributions create 1-to-N patterns with N >> cores/node");
    rows
}

/// Print Fig. 11 at the paper's configuration.
pub fn print_fig11() -> Vec<RetrieveRow> {
    let rows = fig11(Size::paper(), Size::paper_sequential());
    let out: Vec<Vec<String>> = ["CAP2", "SAP2", "SAP3"]
        .iter()
        .map(|app| {
            let rr = rows
                .iter()
                .find(|r| &r.app == app && r.strategy == "round-robin")
                .unwrap();
            let dc = rows
                .iter()
                .find(|r| &r.app == app && r.strategy == "data-centric")
                .unwrap();
            vec![
                app.to_string(),
                format!("{:.1}", rr.ms),
                format!("{:.1}", dc.ms),
                format!("{:.1}x", rr.ms / dc.ms),
            ]
        })
        .collect();
    table::print(
        "Fig. 11 — coupled-data retrieve time (ms, analytic network model)",
        &["application", "round-robin", "data-centric", "speedup"],
        &out,
    );
    println!("paper shape: large drop under data-centric mapping; SAP2/SAP3 slower than CAP2");
    println!("despite smaller per-task data (2x concurrent retrieve queries contend)");
    rows
}

fn print_intra(rows: &[IntraAppRow], apps: &[&str], title: &str, footer: &str) {
    let out: Vec<Vec<String>> = apps
        .iter()
        .map(|app| {
            let rr = rows
                .iter()
                .find(|r| &r.app == app && r.strategy == "round-robin")
                .unwrap();
            let dc = rows
                .iter()
                .find(|r| &r.app == app && r.strategy == "data-centric")
                .unwrap();
            vec![
                app.to_string(),
                table::mib(rr.network_bytes),
                table::mib(dc.network_bytes),
                format!(
                    "{:+.0}%",
                    100.0 * (dc.network_bytes as f64 / rr.network_bytes.max(1) as f64 - 1.0)
                ),
            ]
        })
        .collect();
    table::print(
        title,
        &["application", "round-robin", "data-centric", "change"],
        &out,
    );
    println!("{footer}");
}

/// Print Fig. 12 at the paper's configuration.
pub fn print_fig12() -> Vec<IntraAppRow> {
    let rows = fig12(Size::paper());
    print_intra(
        &rows,
        &["CAP1", "CAP2"],
        "Fig. 12 — concurrent scenario: intra-app exchange over the network (MiB)",
        "paper shape: CAP2 (the smaller, scattered app) roughly doubles; CAP1 barely moves",
    );
    rows
}

/// Print Fig. 13 at the paper's configuration.
pub fn print_fig13() -> Vec<IntraAppRow> {
    let rows = fig13(Size::paper_sequential());
    print_intra(
        &rows,
        &["SAP1", "SAP2", "SAP3"],
        "Fig. 13 — sequential scenario: intra-app exchange over the network (MiB)",
        "paper shape: SAP2 roughly doubles; SAP1 and SAP3 nearly unchanged",
    );
    rows
}

fn print_breakdown(rows: &[BreakdownRow], title: &str) {
    let out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.strategy.to_string(),
                table::gib(r.inter_app_net),
                table::gib(r.intra_app_net),
                table::gib(r.inter_app_net + r.intra_app_net),
            ]
        })
        .collect();
    table::print(
        title,
        &[
            "strategy",
            "inter-app (coupling)",
            "intra-app (stencil)",
            "total",
        ],
        &out,
    );
    println!("paper shape: coupling dominates under round-robin; data-centric slashes the total");
}

/// Print Fig. 14 at the paper's configuration.
pub fn print_fig14() -> Vec<BreakdownRow> {
    let rows = fig14(Size::paper());
    print_breakdown(
        &rows,
        "Fig. 14 — concurrent scenario: network communication breakdown (GiB)",
    );
    rows
}

/// Print Fig. 15 at the paper's configuration.
pub fn print_fig15() -> Vec<BreakdownRow> {
    let rows = fig15(Size::paper_sequential());
    print_breakdown(
        &rows,
        "Fig. 15 — sequential scenario: network communication breakdown (GiB)",
    );
    rows
}

/// Print Fig. 16 at the paper's configuration.
pub fn print_fig16() -> Vec<RetrieveRow> {
    let rows = fig16(&[1, 2, 4, 8, 16], 128);
    let scales = [512u64, 1024, 2048, 4096, 8192];
    let out: Vec<Vec<String>> = scales
        .iter()
        .map(|&s| {
            let t = |app: &str| {
                rows.iter()
                    .find(|r| r.app == app && r.producer_tasks == s)
                    .map(|r| format!("{:.1}", r.ms))
                    .unwrap_or_default()
            };
            vec![s.to_string(), t("CAP2"), t("SAP2"), t("SAP3")]
        })
        .collect();
    table::print(
        "Fig. 16 — weak scaling: retrieve time (ms) under data-centric mapping",
        &["producer cores", "CAP2", "SAP2", "SAP3"],
        &out,
    );
    let delta = |app: &str| {
        let first = rows
            .iter()
            .find(|r| r.app == app && r.producer_tasks == 512)
            .unwrap()
            .ms;
        let last = rows
            .iter()
            .find(|r| r.app == app && r.producer_tasks == 8192)
            .unwrap()
            .ms;
        last - first
    };
    println!(
        "growth 512 -> 8192 cores: CAP2 {:+.1} ms, SAP2 {:+.1} ms, SAP3 {:+.1} ms",
        delta("CAP2"),
        delta("SAP2"),
        delta("SAP3")
    );
    println!("paper shape: increase under ~150 ms; sequential apps rise faster than CAP2");
    rows
}
