//! Machine-readable experiment output.
//!
//! Every figure binary prints its table *and* writes a
//! `BENCH_figNN.json` file so downstream tooling (plot scripts, CI
//! trend checks) never has to scrape stdout. Files land in the current
//! directory unless `BENCH_OUT_DIR` points elsewhere. The payload is
//! rendered through [`insitu_telemetry::Json`] — same writer as the
//! metrics and trace exports, so the formats can never drift apart.

use crate::experiments::{
    BreakdownRow, CouplingRow, FanoutRow, FileBaselineRow, IntraAppRow, RetrieveRow,
};
use insitu_telemetry::Json;
use std::io::Write as _;
use std::path::{Path, PathBuf};

fn out_dir() -> PathBuf {
    std::env::var_os("BENCH_OUT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Write `payload` to `<dir>/BENCH_<figure>.json`.
pub fn write_to(dir: &Path, figure: &str, payload: &Json) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("BENCH_{figure}.json"));
    let mut file = std::fs::File::create(&path)?;
    file.write_all(payload.render().as_bytes())?;
    file.write_all(b"\n")?;
    Ok(path)
}

/// Write `payload` to `BENCH_<figure>.json` (in `BENCH_OUT_DIR` or the
/// current directory) and report the path; IO failure is reported on
/// stderr but never aborts a figure run.
pub fn emit(figure: &str, payload: &Json) {
    match write_to(&out_dir(), figure, payload) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(err) => eprintln!("could not write BENCH_{figure}.json: {err}"),
    }
}

fn doc(figure: &str, title: &str, rows: Vec<Json>) -> Json {
    Json::obj()
        .field("figure", figure)
        .field("title", title)
        .field("rows", Json::Arr(rows))
}

fn coupling_doc(figure: &str, title: &str, rows: &[CouplingRow]) -> Json {
    doc(
        figure,
        title,
        rows.iter()
            .map(|r| {
                Json::obj()
                    .field("pattern", r.pattern.as_str())
                    .field("strategy", r.strategy)
                    .field("network_bytes", r.network_bytes)
                    .field("shm_bytes", r.shm_bytes)
            })
            .collect(),
    )
}

fn retrieve_doc(figure: &str, title: &str, rows: &[RetrieveRow]) -> Json {
    doc(
        figure,
        title,
        rows.iter()
            .map(|r| {
                Json::obj()
                    .field("app", r.app.as_str())
                    .field("strategy", r.strategy)
                    .field("producer_tasks", r.producer_tasks)
                    .field("ms", r.ms)
            })
            .collect(),
    )
}

fn intra_doc(figure: &str, title: &str, rows: &[IntraAppRow]) -> Json {
    doc(
        figure,
        title,
        rows.iter()
            .map(|r| {
                Json::obj()
                    .field("app", r.app.as_str())
                    .field("strategy", r.strategy)
                    .field("network_bytes", r.network_bytes)
            })
            .collect(),
    )
}

fn breakdown_doc(figure: &str, title: &str, rows: &[BreakdownRow]) -> Json {
    doc(
        figure,
        title,
        rows.iter()
            .map(|r| {
                Json::obj()
                    .field("strategy", r.strategy)
                    .field("inter_app_net_bytes", r.inter_app_net)
                    .field("intra_app_net_bytes", r.intra_app_net)
            })
            .collect(),
    )
}

/// `BENCH_fig08.json` — concurrent coupling network bytes.
pub fn emit_fig08(rows: &[CouplingRow]) {
    emit(
        "fig08",
        &coupling_doc(
            "fig08",
            "concurrent coupling: coupled bytes by locality",
            rows,
        ),
    );
}

/// `BENCH_fig09.json` — sequential coupling network bytes.
pub fn emit_fig09(rows: &[CouplingRow]) {
    emit(
        "fig09",
        &coupling_doc(
            "fig09",
            "sequential coupling: coupled bytes by locality",
            rows,
        ),
    );
}

/// `BENCH_fig10.json` — coupling fan-out per consumer task.
pub fn emit_fig10(rows: &[FanoutRow]) {
    let payload = doc(
        "fig10",
        "coupling fan-out per consumer task",
        rows.iter()
            .map(|r| {
                Json::obj()
                    .field("pattern", r.pattern.as_str())
                    .field("avg_fanout", r.avg_fanout)
                    .field("max_fanout", r.max_fanout)
            })
            .collect(),
    );
    emit("fig10", &payload);
}

/// `BENCH_fig11.json` — retrieve time per application and strategy.
pub fn emit_fig11(rows: &[RetrieveRow]) {
    emit(
        "fig11",
        &retrieve_doc("fig11", "coupled-data retrieve time (ms)", rows),
    );
}

/// `BENCH_fig12.json` — concurrent intra-app network bytes.
pub fn emit_fig12(rows: &[IntraAppRow]) {
    emit(
        "fig12",
        &intra_doc("fig12", "concurrent: intra-app bytes over network", rows),
    );
}

/// `BENCH_fig13.json` — sequential intra-app network bytes.
pub fn emit_fig13(rows: &[IntraAppRow]) {
    emit(
        "fig13",
        &intra_doc("fig13", "sequential: intra-app bytes over network", rows),
    );
}

/// `BENCH_fig14.json` — concurrent network-cost breakdown.
pub fn emit_fig14(rows: &[BreakdownRow]) {
    emit(
        "fig14",
        &breakdown_doc("fig14", "concurrent: network communication breakdown", rows),
    );
}

/// `BENCH_fig15.json` — sequential network-cost breakdown.
pub fn emit_fig15(rows: &[BreakdownRow]) {
    emit(
        "fig15",
        &breakdown_doc("fig15", "sequential: network communication breakdown", rows),
    );
}

/// `BENCH_fig16.json` — weak-scaling retrieve times.
pub fn emit_fig16(rows: &[RetrieveRow]) {
    emit(
        "fig16",
        &retrieve_doc(
            "fig16",
            "weak scaling: retrieve time (ms), data-centric",
            rows,
        ),
    );
}

/// `BENCH_extra_file_baseline.json` — in-memory vs file-based coupling.
pub fn emit_extra_file_baseline(rows: &[FileBaselineRow]) {
    let payload = doc(
        "extra_file_baseline",
        "in-memory (CoDS) vs file-based coupling",
        rows.iter()
            .map(|r| {
                Json::obj()
                    .field("scenario", r.scenario.as_str())
                    .field("coupled_bytes", r.bytes)
                    .field("memory_ms", r.memory_ms)
                    .field("file_ms", r.file_ms)
            })
            .collect(),
    );
    emit("extra_file_baseline", &payload);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coupling_doc_shape() {
        let rows = vec![CouplingRow {
            pattern: "blocked/blocked".into(),
            strategy: "round-robin",
            network_bytes: 100,
            shm_bytes: 28,
        }];
        let j = coupling_doc("fig08", "t", &rows).render();
        assert!(j.starts_with("{\"figure\":\"fig08\""));
        assert!(j.contains("\"network_bytes\":100"));
        assert!(j.contains("\"shm_bytes\":28"));
    }

    #[test]
    fn write_to_produces_parseable_file() {
        let dir = std::env::temp_dir();
        let payload = doc("figtest", "t", vec![Json::obj().field("ms", 1.5)]);
        let path = write_to(&dir, "figtest", &payload).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            body,
            "{\"figure\":\"figtest\",\"title\":\"t\",\"rows\":[{\"ms\":1.5}]}\n"
        );
        std::fs::remove_file(path).unwrap();
    }
}
