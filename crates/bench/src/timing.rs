//! Minimal wall-clock benchmarking harness.
//!
//! The workspace is hermetic (no criterion), so the `benches/` targets
//! use this module: a named group runs each benchmark once to warm up,
//! then times `samples` iterations individually and prints min / median
//! / mean. The point is trend visibility and ablation printouts, not
//! statistical rigor — absolute numbers depend on the host.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A named group of benchmarks sharing a sample count.
pub struct Group {
    name: String,
    samples: u32,
}

impl Group {
    /// New group with the default sample count (20).
    pub fn new(name: &str) -> Group {
        Group {
            name: name.to_string(),
            samples: 20,
        }
    }

    /// Override the number of timed iterations.
    pub fn sample_size(mut self, samples: u32) -> Group {
        self.samples = samples.max(1);
        self
    }

    /// Warm up once, then time `samples` iterations of `f` and print a
    /// one-line summary.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> BenchStats {
        black_box(f());
        let mut times = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        let stats = BenchStats {
            min: times[0],
            median: times[times.len() / 2],
            mean: times.iter().sum::<Duration>() / times.len() as u32,
            samples: self.samples,
        };
        println!(
            "bench {:<44} min {:>10}  median {:>10}  mean {:>10}  ({} samples)",
            format!("{}/{}", self.name, name),
            fmt_duration(stats.min),
            fmt_duration(stats.median),
            fmt_duration(stats.mean),
            stats.samples,
        );
        stats
    }
}

/// Summary statistics for one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct BenchStats {
    /// Fastest timed iteration.
    pub min: Duration,
    /// Median timed iteration.
    pub median: Duration,
    /// Mean over all timed iterations.
    pub mean: Duration,
    /// Number of timed iterations.
    pub samples: u32,
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_warmup_plus_samples() {
        let mut calls = 0u32;
        let stats = Group::new("t").sample_size(5).bench("count", || {
            calls += 1;
            calls
        });
        assert_eq!(calls, 6); // 1 warmup + 5 timed
        assert_eq!(stats.samples, 5);
        assert!(stats.min <= stats.median && stats.median <= stats.mean * 2);
    }

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(50)), "50.0 us");
        assert_eq!(fmt_duration(Duration::from_millis(50)), "50.0 ms");
        assert_eq!(fmt_duration(Duration::from_secs(50)), "50.00 s");
    }
}
