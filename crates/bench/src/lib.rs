//! Experiment harness for the paper's evaluation section.
//!
//! Every figure of the evaluation (Figs. 8–16) has a binary in
//! `src/bin/` that regenerates its rows/series by running the modeled
//! executor on the paper's configurations. This library holds the shared
//! experiment drivers so the binaries, the `all_figures` report generator
//! and the timing benches use identical code paths. Each figure binary
//! also writes a machine-readable `BENCH_figNN.json` via [`emit`].

#![warn(missing_docs)]

pub mod emit;
pub mod experiments;
pub mod report;
pub mod table;
pub mod timing;

pub use experiments::*;
