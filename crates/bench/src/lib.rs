//! Experiment harness for the paper's evaluation section.
//!
//! Every figure of the evaluation (Figs. 8–16) has a binary in
//! `src/bin/` that regenerates its rows/series by running the modeled
//! executor on the paper's configurations. This library holds the shared
//! experiment drivers so the binaries, the `all_figures` report generator
//! and the criterion benches use identical code paths.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod table;

pub use experiments::*;
