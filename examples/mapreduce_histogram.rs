//! MapReduce over the shared space (the paper's §VII future-work
//! extension): map tasks scan a simulated field and emit histogram
//! partials into CoDS; reduce tasks pull their bin ranges directly from
//! where the partials live and assemble the global histogram.
//!
//! ```text
//! cargo run --release --example mapreduce_histogram
//! ```

use insitu::domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu::mapreduce::{run_histogram, serial_histogram, HistogramJob};
use insitu_fabric::TrafficClass;

fn main() {
    let input = Decomposition::new(
        BoundingBox::from_sizes(&[64, 64]),
        ProcessGrid::new(&[4, 4]),
        Distribution::Blocked,
    );
    let job = HistogramJob {
        input,
        bins: 16,
        reduce_tasks: 4,
        cores_per_node: 4,
    };
    println!("== MapReduce histogram: 16 map tasks -> 4 reduce tasks over CoDS ==\n");

    let out = run_histogram(&job, "field");
    let reference = serial_histogram(&input, "field", 16);
    assert_eq!(
        out.histogram, reference,
        "parallel result must match serial"
    );

    println!("bin  count   bar");
    let max = *out.histogram.iter().max().unwrap() as f64;
    for (i, &c) in out.histogram.iter().enumerate() {
        let bar = "#".repeat((c as f64 / max * 40.0) as usize);
        println!("{i:>3}  {c:>6}  {bar}");
    }
    println!(
        "\nshuffle traffic: {} B in-situ, {} B over network",
        out.ledger.shm_bytes(TrafficClass::InterApp),
        out.ledger.network_bytes(TrafficClass::InterApp),
    );
    println!("parallel histogram verified against the serial reference");
}
