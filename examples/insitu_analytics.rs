//! Full in-situ analytics pipeline, hand-wired from the framework's
//! parts: an iterative simulation streams a field through CoDS to a
//! concurrent analysis application, which computes region statistics,
//! reduces them across its ranks with group collectives, and downsamples
//! the field for visualization — all without touching a file system
//! (the paper's §I end-to-end I/O pipeline scenario).
//!
//! ```text
//! cargo run --release --example insitu_analytics
//! ```

use insitu::analysis::{downsample, region_stats, RegionStats};
use insitu::cods::{var_id, CodsConfig, CodsSpace, Dht};
use insitu::comm::{GroupComm, ReduceOp};
use insitu::dart::DartRuntime;
use insitu::domain::{layout, BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu::fabric::{MachineSpec, Placement, TrafficClass, TransferLedger};
use insitu::field_value;
use insitu::sfc::HilbertCurve;
use insitu::workflow::AppGroup;
use std::sync::Arc;

const ITERATIONS: u64 = 3;

fn main() {
    // 16 simulation tasks + 4 analysis tasks on 4-core nodes.
    let sim_dec = Decomposition::new(
        BoundingBox::from_sizes(&[32, 32]),
        ProcessGrid::new(&[4, 4]),
        Distribution::Blocked,
    );
    let ana_dec = Decomposition::new(
        BoundingBox::from_sizes(&[32, 32]),
        ProcessGrid::new(&[4, 1]),
        Distribution::Blocked,
    );
    let machine = MachineSpec::new(5, 4);
    let placement = Arc::new(Placement::pack_sequential(machine, 20));
    let ledger = Arc::new(TransferLedger::new());
    let dart = DartRuntime::new(placement, Arc::clone(&ledger));
    let dht = Dht::new(Box::new(HilbertCurve::new(2, 5)), vec![0, 4, 8, 12, 16]);
    let space = CodsSpace::new(Arc::clone(&dart), dht, CodsConfig::default());
    space.set_expected_gets("field", 4);

    let vid = var_id("field");
    let mut handles = Vec::new();

    // Simulation application: clients 0..16, one region per rank, a new
    // version every iteration; old versions reclaimed once analyzed.
    for rank in 0..16u64 {
        let space = Arc::clone(&space);
        handles.push(std::thread::spawn(move || {
            let piece = sim_dec.blocked_box(rank).unwrap();
            for version in 0..ITERATIONS {
                let data = layout::fill_with(&piece, |p| field_value(vid, version, &p[..2]));
                space
                    .put_cont(rank as u32, 1, "field", version, 0, &piece, &data)
                    .unwrap();
                if rank == 0 && version > 0 {
                    space.wait_version_consumed(
                        "field",
                        version - 1,
                        std::time::Duration::from_secs(10),
                    );
                    space.evict_version("field", version - 1);
                }
            }
        }));
    }

    // Analysis application: clients 16..20, forming a process group with
    // collectives for the cross-rank reduction.
    let group = Arc::new(AppGroup {
        app_id: 2,
        members: (16..20).collect(),
    });
    let sim_clients: Vec<u32> = (0..16).collect();
    let mut analysis = Vec::new();
    for rank in 0..4u32 {
        let space = Arc::clone(&space);
        let dart = Arc::clone(&dart);
        let group = Arc::clone(&group);
        let sim_clients = sim_clients.clone();
        analysis.push(std::thread::spawn(move || {
            let client = group.client_of(rank);
            let mailbox = dart.take_mailbox(client);
            let comm = GroupComm::new(&dart, &group, rank, &mailbox);
            let region = ana_dec.blocked_box(rank as u64).unwrap();
            let mut per_version = Vec::new();
            for version in 0..ITERATIONS {
                let (data, _) = space
                    .get_cont(client, 2, "field", version, &region, &sim_dec, &sim_clients)
                    .unwrap();
                let local = region_stats(&region, &data);
                // Reduce across the analysis group.
                let global = RegionStats {
                    min: comm.allreduce_f64(local.min, ReduceOp::Min),
                    max: comm.allreduce_f64(local.max, ReduceOp::Max),
                    mean: comm.allreduce_f64(local.mean * local.cells as f64, ReduceOp::Sum)
                        / comm.allreduce_f64(local.cells as f64, ReduceOp::Sum),
                    cells: 32 * 32,
                };
                // Decimate for the (notional) visualization stage.
                let (coarse, coarse_data) = downsample(&region, &data, 4);
                per_version.push((version, global, coarse, coarse_data.len()));
            }
            dart.return_mailbox(client, mailbox);
            (rank, per_version)
        }));
    }

    for h in handles {
        h.join().unwrap();
    }
    println!(
        "== In-situ analytics: 16 sim tasks -> 4 analysis tasks, {ITERATIONS} iterations ==\n"
    );
    for h in analysis {
        let (rank, versions) = h.join().unwrap();
        if rank == 0 {
            for (version, stats, coarse, n) in versions {
                println!(
                    "iteration {version}: field min {:.4} max {:.4} mean {:.4} | downsampled to {coarse:?} ({n} cells/rank)",
                    stats.min, stats.max, stats.mean
                );
            }
        }
    }
    let snap = ledger.snapshot();
    println!(
        "\ncoupling: {} B in-situ, {} B over network across {ITERATIONS} iterations",
        snap.shm_bytes(TrafficClass::InterApp),
        snap.network_bytes(TrafficClass::InterApp)
    );
    println!(
        "staging peak: {} B per node (old versions reclaimed as consumed)",
        space.staging_peak()
    );
}
