//! The paper's second motivating scenario: coupled climate modeling. The
//! atmosphere model runs first and stages its boundary fields in CoDS;
//! the land and sea-ice models then launch *on the same compute nodes*
//! and consume the data in-situ. The workflow is driven by the paper's
//! Listing-1 DAG description file.
//!
//! ```text
//! cargo run --release --example climate_modeling
//! ```

use insitu::{run_threaded, CouplingSpec, MappingStrategy, Scenario};
use insitu_domain::{BoundingBox, Decomposition, Distribution, ProcessGrid};
use insitu_fabric::{NetworkModel, TrafficClass};
use insitu_workflow::{parse_dag, CLIMATE_MODELING_DAG};

fn blocked(domain: &[u64], grid: &[u64]) -> Decomposition {
    Decomposition::new(
        BoundingBox::from_sizes(domain),
        ProcessGrid::new(grid),
        Distribution::Blocked,
    )
}

fn main() {
    println!("== Coupled climate modeling: atmosphere -> land + sea-ice ==\n");
    println!("DAG description (paper Listing 1):\n{CLIMATE_MODELING_DAG}");

    let mut workflow = parse_dag(CLIMATE_MODELING_DAG).expect("valid DAG file");
    for app in &mut workflow.apps {
        match app.id {
            1 => {
                app.name = "atmosphere".into();
                app.ntasks = 24;
                app.decomposition = Some(blocked(&[24, 24, 24], &[4, 3, 2]));
            }
            2 => {
                app.name = "land".into();
                app.ntasks = 12;
                app.decomposition = Some(blocked(&[24, 24, 24], &[3, 2, 2]));
            }
            3 => {
                app.name = "sea-ice".into();
                app.ntasks = 12;
                app.decomposition = Some(blocked(&[24, 24, 24], &[2, 3, 2]));
            }
            _ => unreachable!(),
        }
    }
    let scenario = Scenario {
        name: "climate modeling".into(),
        cores_per_node: 6,
        workflow,
        couplings: vec![CouplingSpec {
            var: "atmosphere_boundary".into(),
            producer_app: 1,
            consumer_apps: vec![2, 3],
            concurrent: false,
            region: None,
        }],
        subscriptions: vec![],
        halo: 1,
        elem_bytes: 8,
        model: NetworkModel::jaguar(),
        iterations: 1,
    };

    let waves = scenario.workflow.bundle_waves().unwrap();
    println!("execution waves: {waves:?}\n");

    for strategy in [MappingStrategy::RoundRobin, MappingStrategy::DataCentric] {
        let o = run_threaded(&scenario, strategy);
        assert_eq!(o.verify_failures, 0);
        println!("[{}]", strategy.label());
        for (app, name) in [(2u32, "land"), (3u32, "sea-ice")] {
            let gets: Vec<_> = o.reports.iter().filter(|(a, _, _)| *a == app).collect();
            let local: u64 = gets.iter().map(|(_, _, r)| r.shm_bytes).sum();
            let remote: u64 = gets.iter().map(|(_, _, r)| r.net_bytes).sum();
            println!(
                "  {name:<8} retrieved {:>8} B, {:>5.1}% in-situ from local memory",
                local + remote,
                100.0 * local as f64 / (local + remote) as f64
            );
        }
        println!(
            "  DHT query traffic: {} B, coupling over network: {} B\n",
            o.ledger.total_bytes(TrafficClass::Dht),
            o.ledger.network_bytes(TrafficClass::InterApp)
        );
    }
    println!("(cf. paper Fig. 9: client-side data-centric mapping retrieves ~90% in-situ)");
}
