//! A look inside CoDS: reproduce the paper's Fig. 6 — an 8x8 domain
//! linearized by a Hilbert space-filling curve, divided into intervals
//! across 4 DHT cores, with location tables tracking who stores what.
//!
//! ```text
//! cargo run --release --example dht_inspect
//! ```

use insitu::cods::{var_id, Dht, LocationEntry};
use insitu::domain::BoundingBox;
use insitu::sfc::{spans_of_box, HilbertCurve, SpaceFillingCurve};

fn main() {
    println!("== Fig. 6: SFC linearization of an 8x8 domain over 4 DHT cores ==\n");
    let curve = HilbertCurve::new(2, 3);

    // Show the curve ordering as a grid of indices.
    println!("Hilbert indices over the 8x8 domain:");
    for x in 0..8u64 {
        let row: Vec<String> = (0..8u64)
            .map(|y| format!("{:>3}", curve.index_of(&[x, y])))
            .collect();
        println!("  {}", row.join(" "));
    }

    // One DHT core per (virtual) node; 64 indices / 4 cores = 16 each.
    let dht = Dht::new(Box::new(HilbertCurve::new(2, 3)), vec![0, 1, 2, 3]);
    println!("\ninterval assignment: 16 indices per DHT core");
    for core in 0..4usize {
        println!(
            "  core {core}: indices [{}, {}] = region {:?}",
            core * 16,
            core * 16 + 15,
            dht.region_of_core(core)
        );
    }

    // Four producers store the quadrants of variable "temperature".
    println!("\nproducers insert quadrants of var 'temperature':");
    for (owner, lb) in [[0u64, 0], [0, 4], [4, 0], [4, 4]].iter().enumerate() {
        let bbox = BoundingBox::new(lb, &[lb[0] + 3, lb[1] + 3]);
        let cores = dht.insert(
            var_id("temperature"),
            0,
            LocationEntry {
                bbox,
                owner: owner as u32,
                piece: 0,
            },
        );
        println!("  client {owner} stores {bbox:?} -> recorded on DHT core(s) {cores:?}");
    }

    // A consumer asks for a region crossing all quadrants.
    let query = BoundingBox::new(&[2, 2], &[5, 5]);
    println!("\nconsumer get({query:?}):");
    let spans = spans_of_box(&curve, &query);
    println!("  index spans: {spans:?}");
    let (entries, cores) = dht.query(var_id("temperature"), 0, &query);
    println!("  routed to DHT cores {cores:?}");
    for e in &entries {
        let piece = e.bbox.intersect(&query).unwrap();
        println!("  pull {piece:?} from client {}", e.owner);
    }
    println!("\nThe communication schedule above is cached and replayed on later iterations.");
}
