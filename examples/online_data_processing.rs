//! The paper's first motivating scenario: an end-to-end online data
//! processing workflow. A simulation (CAP1) streams its field to a
//! concurrently running analysis code (CAP2) every iteration; in-situ
//! placement lets most of the stream move through shared memory.
//!
//! ```text
//! cargo run --release --example online_data_processing
//! ```

use insitu::{concurrent_scenario, pattern_pairs, run_modeled, run_threaded, MappingStrategy};
use insitu_fabric::{Locality, TrafficClass};

fn gib(b: u64) -> f64 {
    b as f64 / (1u64 << 30) as f64
}

fn main() {
    println!("== Online data processing: simulation (CAP1) -> analysis (CAP2) ==\n");

    // Threaded demo at laptop scale: 48 simulation tasks, 24 analysis
    // tasks on 12-core nodes — real threads, real data, verified.
    let mut demo = concurrent_scenario(48, 24, 8, pattern_pairs(&[4, 4, 4])[0]);
    demo.cores_per_node = 12;
    println!(
        "threaded demo: {} tasks total on {}-core nodes",
        72, demo.cores_per_node
    );
    for strategy in [MappingStrategy::RoundRobin, MappingStrategy::DataCentric] {
        let o = run_threaded(&demo, strategy);
        assert_eq!(o.verify_failures, 0);
        println!(
            "  {:<13} network coupling: {:>10} B   in-situ: {:>10} B   analysis halo over net: {:>8} B",
            strategy.label(),
            o.ledger.network_bytes(TrafficClass::InterApp),
            o.ledger.shm_bytes(TrafficClass::InterApp),
            o.ledger.app_bytes(2, TrafficClass::IntraApp, Locality::Network),
        );
    }

    // Paper-scale (modeled): CAP1=512 / CAP2=64, 128^3 regions, 8 GB of
    // coupled data per iteration — the configuration of Figs. 8 and 11.
    println!("\npaper scale (modeled): CAP1=512, CAP2=64, 8 GB coupled data");
    let paper = concurrent_scenario(512, 64, 128, pattern_pairs(&[32, 32, 32])[0]);
    for strategy in [MappingStrategy::RoundRobin, MappingStrategy::DataCentric] {
        let o = run_modeled(&paper, strategy);
        println!(
            "  {:<13} network: {:>6.2} GiB   in-situ: {:>6.2} GiB   CAP2 retrieve: {:>8.1} ms",
            strategy.label(),
            gib(o.ledger.network_bytes(TrafficClass::InterApp)),
            gib(o.ledger.shm_bytes(TrafficClass::InterApp)),
            o.retrieve_ms.get(&2).copied().unwrap_or(0.0),
        );
    }
    println!("\n(cf. paper Fig. 8: data-centric moves ~80% less coupled data over the network)");
}
