//! Quickstart: share a 3-D field between two coupled applications.
//!
//! A producer application (8 tasks) simulates a field over a 16^3 domain;
//! a consumer application (4 tasks) retrieves the regions it needs, all
//! in-situ. Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use insitu::{concurrent_scenario, pattern_pairs, run_threaded, MappingStrategy};
use insitu_fabric::TrafficClass;

fn main() {
    // The paper's concurrent-coupling scenario in miniature: CAP1 with 8
    // tasks produces a field; CAP2 with 4 tasks consumes it. Each CAP1
    // task owns an 8^3 block of the shared 16^3 x 8 x 8 ... domain derived
    // from its process grid.
    let mut scenario = concurrent_scenario(8, 4, 8, pattern_pairs(&[4, 4, 4])[0]);
    scenario.cores_per_node = 4; // four-core "nodes" for the demo

    println!("scenario: {}", scenario.name);
    println!(
        "domain:   {:?} ({} MB of f64)",
        scenario.decomposition(1).domain(),
        scenario.decomposition(1).domain().num_cells() * 8 / (1 << 20)
    );

    for strategy in [MappingStrategy::RoundRobin, MappingStrategy::DataCentric] {
        let outcome = run_threaded(&scenario, strategy);
        assert_eq!(outcome.verify_failures, 0, "data corruption detected");
        let net = outcome.ledger.network_bytes(TrafficClass::InterApp);
        let shm = outcome.ledger.shm_bytes(TrafficClass::InterApp);
        println!(
            "\n[{}] coupled data: {:>8} B over network, {:>8} B via shared memory ({:.0}% in-situ)",
            strategy.label(),
            net,
            shm,
            100.0 * shm as f64 / (net + shm) as f64
        );
        for (app, rank, report) in outcome.reports.iter().take(2) {
            println!(
                "  app {app} rank {rank}: {} transfers, {} B local, {} B remote",
                report.ops, report.shm_bytes, report.net_bytes
            );
        }
    }
    println!("\nBoth mappings move identical data; data-centric mapping keeps most of it on-node.");
}
