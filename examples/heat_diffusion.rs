//! A real coupled simulation on the framework: distributed 2-D Jacobi
//! heat diffusion with per-sweep halo exchange over HybridDART, residual
//! all-reduce via group collectives, and in-situ publication of the
//! temperature field through CoDS — verified bit-for-bit against a serial
//! reference.
//!
//! ```text
//! cargo run --release --example heat_diffusion
//! ```

use insitu::miniapp::{jacobi_serial, run_jacobi, JacobiConfig};
use insitu_fabric::TrafficClass;

fn main() {
    let cfg = JacobiConfig {
        size: 48,
        grid: [4, 4],
        sweeps: 200,
        cores_per_node: 4,
    };
    println!(
        "== 2-D heat diffusion: {}x{} grid on {} ranks, {} sweeps ==\n",
        cfg.size,
        cfg.size,
        cfg.grid[0] * cfg.grid[1],
        cfg.sweeps
    );
    let out = run_jacobi(&cfg);
    let (reference, _) = jacobi_serial(cfg.size, cfg.sweeps);
    assert_eq!(
        out.field, reference,
        "parallel result must match serial bit-for-bit"
    );

    // Render the temperature field as ASCII shading (hot left wall).
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    println!("temperature (@ = hot, blank = cold), every 2nd row/col:");
    let n = cfg.size as usize;
    for r in (0..n).step_by(2) {
        let row: String = (0..n)
            .step_by(2)
            .map(|c| {
                let v = out.field[r * n + c];
                shades[((v * 9.0) as usize).min(9)]
            })
            .collect();
        println!("  {row}");
    }
    println!("\nfinal residual: {:.3e}", out.residual);
    println!(
        "halo exchange:  {} B in-situ, {} B over network",
        out.ledger.shm_bytes(TrafficClass::IntraApp),
        out.ledger.network_bytes(TrafficClass::IntraApp),
    );
    println!("field verified bit-for-bit against the serial reference");
}
