#!/usr/bin/env bash
# Offline CI gate for the insitu workspace.
#
# The workspace has zero external dependencies, so every step runs with
# --offline: a network-less builder (or a hermetic CI runner) must pass.
# Usage: scripts/ci.sh [--quick]
#   --quick  skip the release build (debug build + tests only)

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
if [[ $quick -eq 0 ]]; then
    run cargo build --release --workspace --offline
fi
run cargo test -q --workspace --offline

# Chaos smoke: a bounded fuzz run under the standard fault mix, with a
# pinned seed. Executed twice and diffed — the report must be bit-for-bit
# replayable — and `insitu chaos` itself exits nonzero on any invariant
# violation.
chaos_profile=--release
[[ $quick -eq 1 ]] && chaos_profile=
chaos() {
    cargo run -q $chaos_profile -p insitu-cli --offline -- \
        chaos --seed 42 --cases 25 --faults standard
}
echo "==> chaos smoke (seed 42, 25 cases, run twice, diff)"
chaos > target/chaos-run-1.txt
chaos > target/chaos-run-2.txt
diff -u target/chaos-run-1.txt target/chaos-run-2.txt
tail -n 1 target/chaos-run-1.txt

echo "==> CI gate passed"
