#!/usr/bin/env bash
# Offline CI gate for the insitu workspace.
#
# The workspace has zero external dependencies, so every step runs with
# --offline: a network-less builder (or a hermetic CI runner) must pass.
# Usage: scripts/ci.sh [--quick]
#   --quick  skip the release build (debug build + tests only)

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
if [[ $quick -eq 0 ]]; then
    run cargo build --release --workspace --offline
fi
run cargo test -q --workspace --offline

echo "==> CI gate passed"
