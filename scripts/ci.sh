#!/usr/bin/env bash
# Offline CI gate for the insitu workspace.
#
# The workspace has zero external dependencies, so every step runs with
# --offline: a network-less builder (or a hermetic CI runner) must pass.
# Usage: scripts/ci.sh [--quick]
#   --quick  skip the release build (debug build + tests only)

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check
run cargo clippy --workspace --all-targets --offline -- -D warnings
if [[ $quick -eq 0 ]]; then
    run cargo build --release --workspace --offline
fi
run cargo test -q --workspace --offline

# Chaos smoke: a bounded fuzz run under the standard fault mix, with a
# pinned seed. Executed twice and diffed — the report must be bit-for-bit
# replayable — and `insitu chaos` itself exits nonzero on any invariant
# violation.
chaos_profile=--release
[[ $quick -eq 1 ]] && chaos_profile=
insitu() {
    cargo run -q $chaos_profile -p insitu-cli --offline -- "$@"
}
echo "==> chaos smoke (seed 42, 25 cases, run twice, diff)"
insitu chaos --seed 42 --cases 25 --faults standard > target/chaos-run-1.txt
insitu chaos --seed 42 --cases 25 --faults standard > target/chaos-run-2.txt
diff -u target/chaos-run-1.txt target/chaos-run-2.txt
tail -n 1 target/chaos-run-1.txt

# Subscription-plane chaos replay: the same pinned seed with the
# sub-push drop fault forced high, so the generated standing-query
# cases lose most pushes and must heal through resync gets. Run twice
# and diffed — push/drop counters are part of the replay-stable set.
echo "==> chaos push-drop replay (seed 42, sub-push:0.5, run twice, diff)"
insitu chaos --seed 42 --cases 10 --faults sub-push:0.5 > target/chaos-sub-run-1.txt
insitu chaos --seed 42 --cases 10 --faults sub-push:0.5 > target/chaos-sub-run-2.txt
diff -u target/chaos-sub-run-1.txt target/chaos-sub-run-2.txt
grep -q "sub-push=" target/chaos-sub-run-1.txt
tail -n 1 target/chaos-sub-run-1.txt

# Critical-path profile of the two-app *_cont example on the threaded
# executor. The chrome trace (spans + put->pull flow arrows) is left in
# target/ for the CI workflow to upload as an artifact.
echo "==> critical-path profile (workflows/online, threaded)"
insitu profile workflows/online.dag --config workflows/online.cfg \
    --trace-out target/profile-trace.json
test -s target/profile-trace.json

# Performance regression gate: the deterministic modeled gate document
# (per-app retrieve times + profiler category totals) must not regress
# past 10% against the checked-in baseline. Refresh the baseline after
# an intentional model change with:
#   insitu compare workflows/online.dag --config workflows/online.cfg \
#       --write-baseline workflows/baseline_online.json
echo "==> performance gate (vs workflows/baseline_online.json)"
insitu compare workflows/online.dag --config workflows/online.cfg \
    --gate workflows/baseline_online.json

# Distributed loopback smoke: 1 in-process server + 2 real joiner
# processes over 127.0.0.1 running the mixed *_cont + *_seq workflow.
# `insitu launch` itself re-runs the workflow single-process and exits
# nonzero unless the merged transfer ledger is byte-identical; the
# merged ledger JSON lands in target/ for the CI workflow to upload.
echo "==> distributed loopback smoke (1 server + 2 joiners over 127.0.0.1)"
insitu launch workflows/distrib.dag --config workflows/distrib.cfg \
    --procs 3 --ledger-out target/launch-ledger.json \
    | tee target/launch-report.txt
grep -q "byte-identical to the single-process run" target/launch-report.txt
test -s target/launch-ledger.json

# Same-host shared-memory data plane: round-robin placement forces
# cross-node coupling pulls, and every launch process shares this host,
# so with shm on (the default) each one must ride a /dev/shm segment —
# nonzero shm frame events, zero PullData through the hub, zero TCP
# fallbacks — while the merged ledger stays byte-identical (the ledger
# accounts simulated placement, not physical transport). `--no-shm` is
# the escape hatch and must produce the identical ledger on the socket.
echo "==> distributed loopback smoke, shared-memory data plane"
insitu launch workflows/distrib.dag --config workflows/distrib.cfg \
    --procs 3 --strategy round-robin | tee target/launch-shm-report.txt
grep -q "byte-identical to the single-process run" target/launch-shm-report.txt
grep -Eq "^shm: +[1-9][0-9]* shared-memory frame event\(s\), 0 PullData through the hub, 0 fallback\(s\)" \
    target/launch-shm-report.txt
echo "==> distributed loopback smoke, shared memory disabled (--no-shm)"
insitu launch workflows/distrib.dag --config workflows/distrib.cfg \
    --procs 3 --strategy round-robin --no-shm | tee target/launch-no-shm-report.txt
grep -q "byte-identical to the single-process run" target/launch-no-shm-report.txt
grep -q "shm:       disabled (--no-shm)" target/launch-no-shm-report.txt

# The same smoke in reactor (p2p) mode: PullData flows over direct
# node<->node links and launch itself asserts — via the
# net.pull_frames_hub counter — that the hub carried control traffic
# only. The merged ledger must still be byte-identical.
echo "==> distributed loopback smoke, p2p data plane (--p2p)"
insitu launch workflows/distrib.dag --config workflows/distrib.cfg \
    --procs 3 --p2p | tee target/launch-p2p-report.txt
grep -q "byte-identical to the single-process run" target/launch-p2p-report.txt
grep -q "p2p:       0 PullData / 0 SubPush frames through the hub" target/launch-p2p-report.txt

# Standing-query smoke: the monitor workflow couples a producer and a
# consumer, plus a one-task monitor app holding a whole-domain
# subscription pushed every other version. The subscriber role
# byte-compares every pushed payload against a fresh per-version get
# and fails the run on the first mismatch, and `launch` still asserts
# ledger byte-identity vs the single-process rerun — so a passing run
# certifies push == pull byte-for-byte. The census must show real
# pushes and zero lagged queues.
echo "==> standing-query smoke (workflows/monitor.toml, 1 server + 1 joiner)"
insitu launch workflows/monitor.toml --procs 2 | tee target/launch-sub-report.txt
grep -q "byte-identical to the single-process run" target/launch-sub-report.txt
grep -Eq "^sub: +[1-9][0-9]* subscription\(s\), [1-9][0-9]* push\(es\), [1-9][0-9]* delivery\(ies\), 0 lagged" \
    target/launch-sub-report.txt

# Merged distributed telemetry: the round-robin placement forces
# cross-node pulls, every joiner ships its flight recording to the hub,
# and the hub stitches one cross-process trace. The trace's structural
# fields (process lanes, stitched wire edges, unmatched send/recv
# counts) are deterministic and diffed against a checked-in baseline;
# the merged trace + profile land in target/ for the CI workflow to
# upload as artifacts. Refresh the baseline after an intentional
# topology change by re-running this step and committing the grep line.
echo "==> merged distributed telemetry (vs workflows/baseline_distrib.json)"
insitu launch workflows/distrib.dag --config workflows/distrib.cfg \
    --procs 3 --p2p --strategy round-robin \
    --trace-out target/launch-trace.json \
    --profile-out target/launch-profile.json \
    | tee target/launch-telemetry-report.txt
grep -q "cross-process edge(s) stitched" target/launch-telemetry-report.txt
if grep -q "^warning:" target/launch-telemetry-report.txt; then
    echo "merged telemetry degraded on a healthy run"; exit 1
fi
grep -o '"processes":[0-9]*,"stitched":[0-9]*,"unmatchedSends":[0-9]*,"unmatchedRecvs":[0-9]*' \
    target/launch-trace.json | diff - workflows/baseline_distrib.json
test -s target/launch-profile.json

# Wire-transport bench: star (thread-per-peer) vs reactor over
# loopback — frames/s, pull RTT p50/p99, threads for 32 connections.
# NET_BENCH_GATE=1 fails the run if the reactor's pull p99 regresses
# past 1.5x the star baseline; the JSON lands in target/ for upload.
echo "==> wire transport bench (star vs reactor, gated on pull p99)"
BENCH_OUT_DIR=target NET_BENCH_GATE=1 cargo run -q $chaos_profile \
    -p insitu-bench --bin net_bench --offline
test -s target/BENCH_net.json

# Standing-query bench: push delivery vs poll-based discovery at 1, 4
# and 8 subscribers over a paced 100-version stream. SUB_BENCH_GATE=1
# fails the run unless push beats poll on median delivery latency at
# >= 4 subscribers — the acceptance anchor that the subscription plane
# removes the polling tax. The JSON lands in target/ for upload.
echo "==> standing-query bench (push vs poll, gated at >= 4 subscribers)"
BENCH_OUT_DIR=target SUB_BENCH_GATE=1 cargo run -q $chaos_profile \
    -p insitu-bench --bin sub_bench --offline
test -s target/BENCH_sub.json

# M x N redistribution micro-bench: sequential vs overlapped pulls on
# the threaded data plane (4x1, 8x8->1, 64->16), plus — via --procs —
# the distributed mirror-grid workflow run shm-vs-loopback (the bench
# itself asserts the shm run carried frames over shared memory and
# assembled zero-copy FieldData::View results). Wall-clock numbers are
# informational (shared CI runners are noisy); the JSON lands in target/
# for the CI workflow to upload as an artifact.
echo "==> redistribution micro-bench (sequential vs overlapped, shm vs loopback)"
BENCH_OUT_DIR=target cargo run -q $chaos_profile -p insitu-bench \
    --bin redistribution --offline -- --procs
test -s target/BENCH_redistribution.json
grep -q '"pattern":"distrib","mode":"shm"' target/BENCH_redistribution.json
grep -q '"pattern":"distrib","mode":"loopback"' target/BENCH_redistribution.json

# Multi-tenant service smoke: one `insitu serve` service process, three
# concurrent submissions (raw dag/cfg, workflow.toml, and a victim that
# is cancelled mid-flight), polled to completion over the status RPC.
# Every completed run's artifact ledger must be byte-identical to the
# standalone `insitu launch` ledger produced above; the per-run
# artifacts stay in target/ for the CI workflow to upload.
echo "==> multi-tenant service smoke (3 concurrent runs, 1 cancelled)"
bin=target/release/insitu
[[ $quick -eq 1 ]] && bin=target/debug/insitu
rm -rf target/svc-artifacts
mkdir -p target/svc-artifacts
"$bin" serve --listen 127.0.0.1:0 --max-runs 4 --pool-nodes 8 \
    --artifacts target/svc-artifacts > target/svc-server.log &
svc_pid=$!
trap 'kill $svc_pid 2>/dev/null || true' EXIT
svc_addr=
for _ in $(seq 1 100); do
    svc_addr=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' target/svc-server.log | head -n 1)
    [[ -n "$svc_addr" ]] && break
    sleep 0.2
done
[[ -n "$svc_addr" ]]
"$bin" submit --connect "$svc_addr" --name plain \
    --dag workflows/distrib.dag --config workflows/distrib.cfg
"$bin" submit --connect "$svc_addr" --name authored workflows/distrib.toml
"$bin" submit --connect "$svc_addr" --name victim \
    --dag workflows/distrib.dag --config workflows/distrib.cfg
"$bin" cancel --connect "$svc_addr" --run 3
for _ in $(seq 1 300); do
    "$bin" status --connect "$svc_addr" > target/svc-status.txt
    grep -Eq ' (queued|running) ' target/svc-status.txt || break
    sleep 1
done
cat target/svc-status.txt
grep -Eq '^run +1 +done' target/svc-status.txt
grep -Eq '^run +2 +done' target/svc-status.txt
grep -Eq '^run +3 +(done|cancelled)' target/svc-status.txt
"$bin" status --connect "$svc_addr" --run 1 --json > target/svc-run-1.json
grep -q '"state":"done"' target/svc-run-1.json
grep -q '"link_stalls"' target/svc-run-1.json
# Live streaming: `watch --once` must deliver exactly one Progress
# frame (the CI-friendly mode; a TTY gets the in-place refreshing
# table instead).
"$bin" watch --connect "$svc_addr" --run 1 --once | tee target/svc-watch.txt
grep -q "1 progress frame(s), final state done" target/svc-watch.txt
# Byte-diff each completed run's ledger artifact against the standalone
# launch ledger ($(...) strips the launch file's trailing newline).
for run in 1 2; do
    diff "target/svc-artifacts/run-$run.ledger.json" \
        <(printf '%s' "$(cat target/launch-ledger.json)")
done
if grep -Eq '^run +3 +done' target/svc-status.txt; then
    diff target/svc-artifacts/run-3.ledger.json \
        <(printf '%s' "$(cat target/launch-ledger.json)")
fi
kill $svc_pid
wait $svc_pid 2>/dev/null || true
trap - EXIT

# Link-health watchdog: a second service instance armed with the
# link-slow chaos fault (every PullData send held 15-50 ms on the
# wire) and a 10 ms stall threshold. The watchdog must count at least
# one stall episode and surface a health event in `status --json` —
# and the run must still complete and verify: the watchdog observes,
# it never cancels. Pinned to --no-shm: the probe measures socket
# link health, and the default shared-memory plane would carry the
# PullData payloads past the slowed wire.
echo "==> link-health watchdog (chaos link-slow:1.0, 10 ms stall threshold)"
"$bin" serve --listen 127.0.0.1:0 --max-runs 1 --pool-nodes 8 --no-shm \
    --faults link-slow:1.0 --seed 42 --stall-ms 10 \
    > target/svc-chaos-server.log &
svc_pid=$!
trap 'kill $svc_pid 2>/dev/null || true' EXIT
svc_addr=
for _ in $(seq 1 100); do
    svc_addr=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' target/svc-chaos-server.log | head -n 1)
    [[ -n "$svc_addr" ]] && break
    sleep 0.2
done
[[ -n "$svc_addr" ]]
"$bin" submit --connect "$svc_addr" --name slow-links \
    --dag workflows/distrib.dag --config workflows/distrib.cfg
for _ in $(seq 1 300); do
    "$bin" status --connect "$svc_addr" > target/svc-chaos-status.txt
    grep -Eq ' (queued|running) ' target/svc-chaos-status.txt || break
    sleep 1
done
grep -Eq '^run +1 +done' target/svc-chaos-status.txt
"$bin" status --connect "$svc_addr" --run 1 --json > target/svc-chaos-run-1.json
grep -q '"state":"done"' target/svc-chaos-run-1.json
if grep -q '"link_stalls":0' target/svc-chaos-run-1.json; then
    echo "watchdog never tripped under link-slow:1.0"; exit 1
fi
grep -q 'link-stall' target/svc-chaos-run-1.json
kill $svc_pid
wait $svc_pid 2>/dev/null || true
trap - EXIT

echo "==> CI gate passed"
